//! Property-based tests (proptest) for Logarithmic Gecko: for *any*
//! sequence of invalidations and erases, under *any* tuning, the structure
//! answers GC queries exactly like a plain RAM bitmap (DESIGN.md
//! invariant 1), and its structural invariants hold.

use geckoftl::flash_sim::{BlockId, FlashDevice, Geometry, Ppn};
use geckoftl::geckoftl_core::gecko::{GeckoConfig, LogGecko};
use geckoftl::geckoftl_core::validity::FlatMetaSink;
use proptest::prelude::*;

/// Abstract operations over the user blocks 0..32 of the tiny geometry.
#[derive(Clone, Copy, Debug)]
enum Op {
    Invalidate(u32), // page in 0..512 (32 blocks × 16 pages)
    Erase(u32),      // block in 0..32
    Query(u32),      // block in 0..32
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u32..512).prop_map(Op::Invalidate),
        1 => (0u32..32).prop_map(Op::Erase),
        1 => (0u32..32).prop_map(Op::Query),
    ]
}

/// Reference model: exact per-block invalid flags.
#[derive(Default)]
struct Model {
    invalid: std::collections::HashMap<u32, Vec<bool>>,
}

fn check_all_blocks(gecko: &mut LogGecko, dev: &mut FlashDevice, model: &Model, geo: &Geometry) {
    for b in 0..32u32 {
        let got = gecko.gc_query(dev, BlockId(b));
        let want = model.invalid.get(&b);
        for i in 0..geo.pages_per_block {
            let w = want.is_some_and(|v| v[i as usize]);
            assert_eq!(got.get(i), w, "block {b} bit {i}");
        }
    }
}

/// `pump_budget`: `None` runs the synchronous A/B mode (merges complete
/// inside the update path, so every op observes a settled structure);
/// `Some(n)` runs the incremental scheduler, pumping `n` page-IOs per op —
/// mid-flight a level may legally hold both (still queryable) participants
/// of a pending merge, so the one-run-per-level invariant is checked only
/// once the scheduler drains.
fn run_case(
    ops: &[Op],
    size_ratio: u32,
    partitions: u32,
    multiway: bool,
    header: u32,
    pump_budget: Option<u64>,
) {
    let geo = Geometry::tiny();
    let mut dev = FlashDevice::new(geo);
    let mut sink = FlatMetaSink::new((32..64).map(BlockId).collect());
    let cfg = GeckoConfig {
        size_ratio,
        partitions,
        multiway_merge: multiway,
        key_bytes: 4,
        page_header_bytes: header,
        sync_merge: pump_budget.is_none(),
        ..GeckoConfig::default()
    };
    let mut gecko = LogGecko::new(geo, cfg);
    let mut model = Model::default();
    let b = geo.pages_per_block as usize;

    for op in ops {
        match *op {
            Op::Invalidate(p) => {
                gecko.mark_invalid(&mut dev, &mut sink, Ppn(p));
                model
                    .invalid
                    .entry(p / 16)
                    .or_insert_with(|| vec![false; b])[(p % 16) as usize] = true;
            }
            Op::Erase(blk) => {
                gecko.note_erase(&mut dev, &mut sink, BlockId(blk));
                model.invalid.insert(blk, vec![false; b]);
            }
            Op::Query(blk) => {
                let got = gecko.gc_query(&mut dev, BlockId(blk));
                let want = model.invalid.get(&blk);
                for i in 0..geo.pages_per_block {
                    let w = want.is_some_and(|v| v[i as usize]);
                    assert_eq!(got.get(i), w, "mid-run query: block {blk} bit {i}");
                }
            }
        }
        if let Some(budget) = pump_budget {
            gecko.pump_merges(&mut dev, &mut sink, budget);
        }
        // Structural invariant: each level holds at most one settled run
        // (plus, mid-merge, the ≤ 2 participants of the pending job).
        let cap = if pump_budget.is_some() { 2 } else { 1 };
        for (lvl, count) in
            gecko
                .runs_newest_first()
                .fold(std::collections::HashMap::new(), |mut m, r| {
                    *m.entry(r.meta.level).or_insert(0u32) += 1;
                    m
                })
        {
            assert!(count <= cap, "level {lvl} holds {count} runs");
        }
    }
    gecko.drain_merges(&mut dev, &mut sink);
    for (lvl, count) in
        gecko
            .runs_newest_first()
            .fold(std::collections::HashMap::new(), |mut m, r| {
                *m.entry(r.meta.level).or_insert(0u32) += 1;
                m
            })
    {
        assert!(count <= 1, "settled level {lvl} holds {count} runs");
    }
    check_all_blocks(&mut gecko, &mut dev, &model, &geo);

    // Space bound: live entries never exceed ~2× the key universe + slack.
    let max_live = 32 * partitions as u64;
    assert!(
        gecko.total_run_entries() <= 3 * max_live + 64,
        "space amplification blown: {} entries for {} keys",
        gecko.total_run_entries(),
        max_live
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn gecko_matches_bitmap_model_default_tuning(ops in prop::collection::vec(op_strategy(), 1..600)) {
        // Small pages (large header) so flushes and merges actually happen.
        run_case(&ops, 2, 1, true, 4096 - 64, None);
    }

    #[test]
    fn gecko_matches_bitmap_model_any_tuning(
        ops in prop::collection::vec(op_strategy(), 1..400),
        t in 2u32..6,
        s_pow in 0u32..5,      // S ∈ {1,2,4,8,16}, all divide B=16
        multiway in any::<bool>(),
    ) {
        let s = 1 << s_pow;
        run_case(&ops, t, s.min(16), multiway, 4096 - 96, None);
    }

    #[test]
    fn gecko_incremental_scheduler_matches_bitmap_model(
        ops in prop::collection::vec(op_strategy(), 1..400),
        t in 2u32..4,
        multiway in any::<bool>(),
        budget in 1u64..8,     // merge step budget, incl. the minimal 1
    ) {
        run_case(&ops, t, 1, multiway, 4096 - 64, Some(budget));
    }

    #[test]
    fn recovered_runs_answer_like_the_original(
        ops in prop::collection::vec(op_strategy(), 50..400),
    ) {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        let mut sink = FlatMetaSink::new((32..64).map(BlockId).collect());
        let cfg = GeckoConfig {
            size_ratio: 2,
            partitions: 1,
            multiway_merge: true,
            key_bytes: 4,
            page_header_bytes: 4096 - 64,
            ..GeckoConfig::default()
        };
        let mut gecko = LogGecko::new(geo, cfg);
        let mut model = Model::default();
        let b = geo.pages_per_block as usize;
        for op in &ops {
            match *op {
                Op::Invalidate(p) => {
                    gecko.mark_invalid(&mut dev, &mut sink, Ppn(p));
                    model.invalid.entry(p / 16).or_insert_with(|| vec![false; b])[(p % 16) as usize] = true;
                }
                Op::Erase(blk) => {
                    gecko.note_erase(&mut dev, &mut sink, BlockId(blk));
                    model.invalid.insert(blk, vec![false; b]);
                }
                Op::Query(_) => {}
            }
        }
        // Persist the buffer, rebuild from the recovered run set, compare.
        gecko.flush(&mut dev, &mut sink);
        let runs: Vec<_> = gecko.runs_newest_first().cloned().collect();
        let mut rebuilt = LogGecko::from_recovered(geo, cfg, runs);
        check_all_blocks(&mut rebuilt, &mut dev, &model, &geo);
    }

    /// The Bloom-filter + fence-pointer fast path must return byte-identical
    /// bitmaps to (a) the probe-every-run naive oracle, (b) the
    /// pre-optimization linear-scan path running the same op sequence on a
    /// twin instance, and (c) the batched query API — across randomized
    /// update/erase/merge histories and tunings.
    #[test]
    fn fast_path_matches_naive_oracle(
        ops in prop::collection::vec(op_strategy(), 1..500),
        s_pow in 0u32..5,          // S ∈ {1,2,4,8,16}, all divide B=16
        bloom_bits in 0u32..13,    // includes 0 = filters disabled
        header_slack in 0u32..3,   // vary entries-per-page => merge shapes
    ) {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        let mut sink = FlatMetaSink::new((32..64).map(BlockId).collect());
        let fast_cfg = GeckoConfig {
            partitions: 1 << s_pow,
            page_header_bytes: 4096 - 64 - 32 * header_slack,
            bloom_bits_per_key: bloom_bits,
            fast_path: true,
            ..GeckoConfig::default()
        };
        let legacy_cfg = GeckoConfig { fast_path: false, bloom_bits_per_key: 0, ..fast_cfg };
        let mut fast = LogGecko::new(geo, fast_cfg);
        // The legacy twin shares the device but writes its runs through a
        // separate sink pool so the two structures stay independent.
        let mut legacy_dev = FlashDevice::new(geo);
        let mut legacy_sink = FlatMetaSink::new((32..64).map(BlockId).collect());
        let mut legacy = LogGecko::new(geo, legacy_cfg);

        for op in &ops {
            match *op {
                Op::Invalidate(p) => {
                    fast.mark_invalid(&mut dev, &mut sink, Ppn(p));
                    legacy.mark_invalid(&mut legacy_dev, &mut legacy_sink, Ppn(p));
                }
                Op::Erase(blk) => {
                    fast.note_erase(&mut dev, &mut sink, BlockId(blk));
                    legacy.note_erase(&mut legacy_dev, &mut legacy_sink, BlockId(blk));
                }
                Op::Query(blk) => {
                    let via_fast = fast.gc_query(&mut dev, BlockId(blk));
                    let via_naive = fast.gc_query_naive(&mut dev, BlockId(blk));
                    prop_assert_eq!(&via_fast, &via_naive, "fast vs naive mid-run, block {}", blk);
                }
            }
        }

        // Every block: fast == naive == legacy twin, and batch == singles.
        let all_blocks: Vec<BlockId> = (0..32).map(BlockId).collect();
        let batch = fast.gc_query_batch(&mut dev, &all_blocks);
        for (i, &blk) in all_blocks.iter().enumerate() {
            let via_fast = fast.gc_query(&mut dev, blk);
            let via_naive = fast.gc_query_naive(&mut dev, blk);
            let via_legacy = legacy.gc_query(&mut legacy_dev, blk);
            prop_assert_eq!(&via_fast, &via_naive, "fast vs naive, block {:?}", blk);
            prop_assert_eq!(&via_fast, &via_legacy, "fast vs legacy twin, block {:?}", blk);
            prop_assert_eq!(&batch[i], &via_fast, "batch vs single, block {:?}", blk);
        }

        // Duplicate + unsorted request orders answer consistently too.
        let shuffled = [BlockId(9), BlockId(3), BlockId(9), BlockId(31), BlockId(0), BlockId(3)];
        let dup = fast.gc_query_batch(&mut dev, &shuffled);
        for (i, &blk) in shuffled.iter().enumerate() {
            prop_assert_eq!(&dup[i], &fast.gc_query(&mut dev, blk), "dup batch, slot {}", i);
        }
    }
}
