//! One module per table/figure of the paper's evaluation, plus ablations
//! and an empirical recovery experiment. Each experiment returns [`Table`]s
//! ready for printing or CSV export; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

pub mod ablations;
pub mod endurance;
pub mod fig01_scaling;
pub mod fig09_pvb_vs_gecko;
pub mod fig10_partitioning;
pub mod fig11_capacity;
pub mod fig12_overprovisioning;
pub mod fig13_comparison;
pub mod fig14_ram_utilization;
pub mod gecko_query;
pub mod merge_latency;
pub mod mixed_workload;
pub mod multi_tenant;
pub mod recovery_exp;
pub mod table1_costs;

use crate::report::Table;

/// An experiment: a slug (CLI name / CSV prefix) and a runner.
pub struct Experiment {
    /// CLI name, e.g. `fig9`.
    pub slug: &'static str,
    /// One-line description.
    pub what: &'static str,
    /// Runner producing the experiment's tables.
    pub run: fn() -> Vec<Table>,
}

/// All experiments in paper order.
pub const ALL: &[Experiment] = &[
    Experiment {
        slug: "fig1",
        what: "RAM & recovery vs capacity (LazyFTL model)",
        run: fig01_scaling::run,
    },
    Experiment {
        slug: "table1",
        what: "per-op IO cost & RAM of validity stores",
        run: table1_costs::run,
    },
    Experiment {
        slug: "fig9",
        what: "Logarithmic Gecko (T sweep) vs flash PVB",
        run: fig09_pvb_vs_gecko::run,
    },
    Experiment {
        slug: "fig10",
        what: "entry-partitioning vs block size",
        run: fig10_partitioning::run,
    },
    Experiment {
        slug: "fig11",
        what: "write-amplification vs device capacity",
        run: fig11_capacity::run,
    },
    Experiment {
        slug: "fig12",
        what: "write-amplification vs over-provisioning",
        run: fig12_overprovisioning::run,
    },
    Experiment {
        slug: "fig13",
        what: "five-FTL comparison: RAM, recovery, WA",
        run: fig13_comparison::run,
    },
    Experiment {
        slug: "fig14",
        what: "RAM-plentiful scenario (70 MB budget)",
        run: fig14_ram_utilization::run,
    },
    Experiment {
        slug: "mixed",
        what: "mixed read/write generalization (§5 slowdown formula)",
        run: mixed_workload::run,
    },
    Experiment {
        slug: "gecko_query",
        what: "GC-query fast path (bloom/fence/batch) vs linear scan; emits BENCH_gecko_query.json",
        run: gecko_query::run,
    },
    Experiment {
        slug: "merge_latency",
        what: "write-latency tail: sync vs incremental merges; emits BENCH_merge_latency.json",
        run: merge_latency::run,
    },
    Experiment {
        slug: "multi_tenant",
        what: "per-tenant QoS isolation under a noisy neighbour; emits BENCH_multi_tenant.json",
        run: multi_tenant::run,
    },
    Experiment {
        slug: "fuzz",
        what: "feedback-driven fault/crash fuzzing campaign; writes minimized failures to fuzz/corpus/",
        run: crate::fuzz::run,
    },
    Experiment {
        slug: "recovery",
        what: "empirical GeckoRec cost vs model",
        run: recovery_exp::run,
    },
    Experiment {
        slug: "ablations",
        what: "multi-way merge, GC policy, checkpoints",
        run: ablations::run,
    },
    Experiment {
        slug: "endurance",
        what: "erase pressure / device lifetime per FTL",
        run: endurance::run,
    },
];

/// Find an experiment by slug.
pub fn find(slug: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.slug == slug)
}
