//! Chrome Trace Event Format exporter.
//!
//! Produces the JSON object format understood by `chrome://tracing` and
//! Perfetto: `{"traceEvents": [...]}` with `ph:"X"` complete events whose
//! `ts`/`dur` are in microseconds — conveniently, exactly the simulated
//! clock's unit.
//!
//! Timeline layout:
//!
//! * `pid 0` — **flash channels**: one `tid` per channel, one `X` event
//!   per device IO (named by its purpose, `args.op` = operation kind).
//!   Summing `dur` per purpose over these lanes reproduces
//!   `IoStats::busy_us` exactly.
//! * `pid 1` — **FTL spans**: one `tid` per [`SpanKind`] lane, one `X`
//!   event per closed span.

use crate::sink::{SpanKind, TraceEvent};
use crate::Telemetry;

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_meta(out: &mut String, pid: u32, tid: Option<u32>, what: &str, name: &str) {
    out.push_str("  {\"ph\":\"M\",\"pid\":");
    out.push_str(&pid.to_string());
    if let Some(tid) = tid {
        out.push_str(",\"tid\":");
        out.push_str(&tid.to_string());
    }
    out.push_str(",\"name\":\"");
    escape_into(out, what);
    out.push_str("\",\"args\":{\"name\":\"");
    escape_into(out, name);
    out.push_str("\"}},\n");
}

/// Render the telemetry's recorded events as a Chrome Trace Event Format
/// JSON document. `purpose_labels` maps IO purpose indices (as passed to
/// [`Telemetry::record_io`]) to display names; out-of-range indices fall
/// back to `purpose_<n>`.
pub fn chrome_trace_json(t: &Telemetry, purpose_labels: &[&str]) -> String {
    let mut out = String::with_capacity(256 + t.events().count() * 96);
    out.push_str("{\"traceEvents\":[\n");

    // Metadata: name the two processes and every lane that has events.
    push_meta(&mut out, 0, None, "process_name", "flash channels");
    push_meta(&mut out, 1, None, "process_name", "ftl spans");
    let mut channels_seen: Vec<u16> = Vec::new();
    let mut lanes_seen: Vec<SpanKind> = Vec::new();
    for ev in t.events() {
        match *ev {
            TraceEvent::Io { channel, .. } => {
                if !channels_seen.contains(&channel) {
                    channels_seen.push(channel);
                }
            }
            TraceEvent::Span { kind, .. } => {
                if !lanes_seen.contains(&kind) {
                    lanes_seen.push(kind);
                }
            }
        }
    }
    channels_seen.sort_unstable();
    for &ch in &channels_seen {
        push_meta(
            &mut out,
            0,
            Some(ch as u32),
            "thread_name",
            &format!("channel {ch}"),
        );
    }
    lanes_seen.sort_by_key(|k| k.index());
    for &kind in &lanes_seen {
        push_meta(
            &mut out,
            1,
            Some(kind.index() as u32),
            "thread_name",
            kind.label(),
        );
    }

    let mut first = true;
    for ev in t.events() {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        match *ev {
            TraceEvent::Io {
                purpose,
                op,
                channel,
                start_us,
                dur_us,
            } => {
                let label = purpose_labels
                    .get(purpose as usize)
                    .copied()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("purpose_{purpose}"));
                out.push_str("  {\"name\":\"");
                escape_into(&mut out, &label);
                out.push_str(&format!(
                    "\",\"cat\":\"io\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"op\":\"{}\"}}}}",
                    start_us,
                    dur_us as f64,
                    channel,
                    op.label()
                ));
            }
            TraceEvent::Span {
                kind,
                arg,
                start_us,
                dur_us,
            } => {
                out.push_str("  {\"name\":\"");
                escape_into(&mut out, kind.label());
                out.push_str(&format!(
                    "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"arg\":{}}}}}",
                    start_us,
                    dur_us as f64,
                    kind.index(),
                    arg
                ));
            }
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":");
    out.push_str(&t.dropped_events().to_string());
    out.push_str(",\"total_events\":");
    out.push_str(&t.total_events().to_string());
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_chrome_trace;
    use crate::sink::IoOp;

    #[test]
    fn exported_trace_passes_own_validator() {
        let mut t = Telemetry::default();
        t.enable(64);
        t.record_io(0, IoOp::PageWrite, 2, 0.0, 1000.0);
        t.record_io(3, IoOp::PageRead, 1, 1000.0, 100.0);
        t.record_span(SpanKind::HostWrite, 0, 0.0, 1100.0);
        let json = chrome_trace_json(&t, &["user_write", "user_read", "gc", "translation_sync"]);
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.complete_events, 3);
        assert_eq!(summary.channel_lanes, 2);
        assert_eq!(summary.span_lanes, 1);
        assert_eq!(summary.dropped_events, 0);
    }

    #[test]
    fn empty_trace_fails_validation() {
        let t = Telemetry::default();
        let json = chrome_trace_json(&t, &[]);
        assert!(validate_chrome_trace(&json).is_err());
    }
}
