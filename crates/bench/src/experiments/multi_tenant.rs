//! Multi-tenant QoS A/B: per-tenant latency isolation with and without the
//! GC-debt budget.
//!
//! Two tenants share one device: tenant 1 is light (mixed reads/writes over
//! a private range), tenant 2 is an overwrite storm that generates nearly
//! all the GC debt. Without QoS, GC triggered by the storm runs inside
//! whichever host write happens to trip the free-block threshold — so the
//! light tenant's p99 write latency absorbs the heavy tenant's cleaning
//! debt. With `qos_headroom_blocks > 0`, a tenant whose accumulated GC debt
//! is above its fair share prepays collection work inside its *own* writes
//! while the pool is inside the headroom band, which keeps the threshold
//! from tripping under the light tenant's ops.
//!
//! The headline metric is the light tenant's p99 (and max) write latency,
//! QoS off vs on, read from the engine's per-tenant accounting
//! ([`geckoftl_core::TenantStats`]). Results are emitted as
//! `BENCH_multi_tenant.json` so the repo carries a machine-readable
//! baseline of the isolation claim.

use crate::report::{f3, Table};
use flash_sim::{Geometry, Lpn};
use ftl_workloads::{Mixed, OverwriteStorm, TenantMix, Trace, Uniform, WorkloadOp};
use geckoftl_core::ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend};
use geckoftl_core::gecko::GeckoConfig;

/// Per-tenant measured outcome of one engine variant.
#[derive(Clone, Copy, Debug, Default)]
struct TenantRow {
    writes: u64,
    gc_operations: u64,
    gc_debt_us: f64,
    write_p99_us: f64,
    write_max_us: f64,
}

struct VariantResult {
    name: &'static str,
    headroom: usize,
    light: TenantRow,
    heavy: TenantRow,
    total_gc: u64,
    wa_total: f64,
}

fn geometry() -> Geometry {
    // 32 MB simulated device at the paper's R = 0.7: small enough that the
    // storm forces sustained GC, big enough for distinct tenant ranges.
    Geometry::new(128, 64, 4096, 0.7)
}

/// The shared two-tenant workload, recorded once so both variants replay
/// the identical op sequence (the A/B differs only in `qos_headroom_blocks`).
fn workload(ops: usize) -> Trace {
    let logical = geometry().logical_pages();
    // Tenant 1 (light): half reads over the upper quarter of the space.
    let light_base = (logical * 3 / 4) as u32;
    let light = Mixed::new(11, Uniform::new(13, logical / 4), 0.5, logical / 4).map(move |op| {
        // Shift the light tenant into its private range.
        match op {
            WorkloadOp::Write(l) => WorkloadOp::Write(Lpn(light_base + l.0)),
            WorkloadOp::Read(l) => WorkloadOp::Read(Lpn(light_base + l.0)),
            other => other,
        }
    });
    // Tenant 2 (heavy): overwrite storm over the lower half.
    let heavy = OverwriteStorm::new(17, logical / 2, 24, 400);
    let mix = TenantMix::new(
        19,
        vec![
            (
                1,
                1,
                Box::new(light) as Box<dyn Iterator<Item = WorkloadOp> + Send>,
            ),
            (2, 4, Box::new(heavy)),
        ],
    );
    Trace::record_mix(mix, ops)
}

fn run_variant(name: &'static str, headroom: usize, trace: &Trace) -> VariantResult {
    let geo = geometry();
    let cfg = FtlConfig {
        cache_entries: 64,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: headroom,
    };
    let gecko_cfg = GeckoConfig {
        page_header_bytes: geo.page_bytes - 64,
        ..GeckoConfig::paper_default(&geo)
    };
    let mut engine = FtlEngine::format(geo, cfg, ValidityBackend::gecko_for(geo, gecko_cfg));
    crate::harness::fill_sequential(&mut engine);
    let before = engine.metrics();
    let mut version = 1u64 << 40;
    crate::harness::replay_trace(&mut engine, trace, &mut version);
    let delta = engine.metrics().since(&before);

    let row = |id: u8| -> TenantRow {
        engine
            .tenant_stats()
            .get(&id)
            .map(|s| TenantRow {
                writes: s.writes,
                gc_operations: s.gc_operations,
                gc_debt_us: s.gc_debt_us,
                write_p99_us: s.write_lat.quantile(0.99),
                write_max_us: s.write_lat.max(),
            })
            .unwrap_or_default()
    };
    VariantResult {
        name,
        headroom,
        light: row(1),
        heavy: row(2),
        total_gc: delta.counter("engine.gc_operations"),
        wa_total: geckoftl_core::ftl::metrics::wa_total(&delta, 10.0),
    }
}

fn tenant_json(t: &TenantRow) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"writes\": {},\n",
            "      \"gc_operations\": {},\n",
            "      \"gc_debt_us\": {:.3},\n",
            "      \"write_p99_us\": {:.3},\n",
            "      \"write_max_us\": {:.3}\n",
            "    }}"
        ),
        t.writes, t.gc_operations, t.gc_debt_us, t.write_p99_us, t.write_max_us,
    )
}

fn emit_json(off: &VariantResult, on: &VariantResult, ops: usize) {
    let isolation = off.light.write_p99_us / on.light.write_p99_us.max(1e-9);
    let body = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"multi_tenant\",\n",
            "  \"workload\": \"tenant1 light mixed 50% reads vs tenant2 overwrite storm, {} ops\",\n",
            "  \"geometry\": \"K=128 B=64 P=4096 R=0.7\",\n",
            "  \"metric\": \"light tenant write p99 (us), QoS off vs on\",\n",
            "  \"qos_off\": {{\n",
            "    \"light\": {},\n",
            "    \"heavy\": {},\n",
            "    \"total_gc\": {},\n",
            "    \"wa_total\": {:.4}\n",
            "  }},\n",
            "  \"qos_on\": {{\n",
            "    \"headroom_blocks\": {},\n",
            "    \"light\": {},\n",
            "    \"heavy\": {},\n",
            "    \"total_gc\": {},\n",
            "    \"wa_total\": {:.4}\n",
            "  }},\n",
            "  \"light_p99_isolation_factor\": {:.3}\n",
            "}}\n"
        ),
        ops,
        tenant_json(&off.light),
        tenant_json(&off.heavy),
        off.total_gc,
        off.wa_total,
        on.headroom,
        tenant_json(&on.light),
        tenant_json(&on.heavy),
        on.total_gc,
        on.wa_total,
        isolation,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multi_tenant.json");
    match std::fs::write(path, body) {
        Ok(()) => eprintln!("   wrote {path}"),
        Err(e) => eprintln!("   could not write {path}: {e}"),
    }
}

/// Run the per-tenant QoS A/B and emit `BENCH_multi_tenant.json`.
pub fn run() -> Vec<Table> {
    let ops = if crate::smoke::on() { 12_000 } else { 60_000 };
    let trace = workload(ops);
    let off = run_variant("qos off (headroom 0)", 0, &trace);
    let on = run_variant("qos on (headroom 4)", 4, &trace);

    let mut t = Table::new(
        "multi-tenant QoS — per-tenant write-latency isolation under a noisy neighbour",
        &[
            "variant",
            "tenant",
            "writes",
            "gc ops",
            "gc debt (ms)",
            "p99 (us)",
            "max (us)",
            "WA",
        ],
    );
    for v in [&off, &on] {
        for (tenant, r) in [("light (1)", &v.light), ("heavy (2)", &v.heavy)] {
            t.row(vec![
                v.name.into(),
                tenant.into(),
                r.writes.to_string(),
                r.gc_operations.to_string(),
                f3(r.gc_debt_us / 1e3),
                f3(r.write_p99_us),
                f3(r.write_max_us),
                f3(v.wa_total),
            ]);
        }
    }
    if !crate::smoke::on() {
        emit_json(&off, &on, ops);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn qos_improves_light_tenant_tail() {
        let trace = super::workload(40_000);
        let off = super::run_variant("off", 0, &trace);
        let on = super::run_variant("on", 4, &trace);
        assert!(
            off.heavy.gc_debt_us > off.light.gc_debt_us,
            "the storm tenant must carry most GC debt even without QoS"
        );
        assert!(
            on.light.write_p99_us <= off.light.write_p99_us,
            "QoS must not worsen the light tenant's p99: {} (on) vs {} (off)",
            on.light.write_p99_us,
            off.light.write_p99_us
        );
    }
}
