//! Mixed read/write workloads (paper §5, Metrics): the evaluation measures
//! pure-update workloads and notes the results "are easily generalizable to
//! a mixed workload" through
//!
//! ```text
//! slowdown factor = 1 / (RA·RW + WA·δ)
//! ```
//!
//! where `RA` is the read-amplification of fetching mapping entries from
//! flash-resident translation pages and `RW` the application read/write
//! ratio. This experiment measures RA and WA per FTL across read ratios and
//! evaluates the formula — the generalization the paper asserts.

use crate::harness::{drive, fill_sequential, sim_geometry};
use crate::report::{f3, Table};
use flash_sim::IoPurpose;
use ftl_baselines::{build, BaselineKind};
use ftl_workloads::{Mixed, Uniform};

/// Run the mixed-workload generalization experiment.
pub fn run() -> Vec<Table> {
    let geo = sim_geometry();
    let mut t = Table::new(
        "Mixed workloads — read-amplification, write-amplification and the §5 slowdown factor",
        &[
            "FTL",
            "read ratio",
            "RA (tpage reads/read)",
            "WA",
            "slowdown 1/(RA·RW + WA·δ)",
        ],
    );
    for kind in [
        BaselineKind::Dftl,
        BaselineKind::MuFtl,
        BaselineKind::GeckoFtl,
    ] {
        for read_pct in [25u32, 50, 75] {
            let mut engine = build(kind, geo);
            fill_sequential(&mut engine);
            let logical = geo.logical_pages();
            let gen = Mixed::new(
                read_pct as u64,
                Uniform::new(61, logical),
                read_pct as f64 / 100.0,
                logical,
            );
            // Warm-up then measure.
            let mut gen = gen;
            drive(&mut engine, &mut gen, logical / 2);
            let snap = engine.device().stats().snapshot();
            drive(&mut engine, &mut gen, 60_000);
            let d = engine.device().stats().since(&snap);
            let ra = d.counts(IoPurpose::TranslationFetch).page_reads as f64
                / d.logical_reads.max(1) as f64;
            let wa = d.wa_breakdown(10.0).total();
            let rw = d.logical_reads as f64 / d.logical_writes.max(1) as f64;
            let slowdown = 1.0 / (ra * rw + wa * 10.0);
            t.row(vec![
                kind.name().into(),
                format!("{read_pct}%"),
                f3(ra),
                f3(wa),
                format!("{slowdown:.4}"),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn geckoftl_generalizes_to_mixed_workloads() {
        let tables = super::run();
        let rows = &tables[0].rows;
        // At every read ratio, GeckoFTL's WA stays below µ-FTL's, so its
        // slowdown factor is at least as good.
        for pct in ["25%", "50%", "75%"] {
            let of = |ftl: &str, col: usize| -> f64 {
                rows.iter().find(|r| r[0] == ftl && r[1] == pct).unwrap()[col]
                    .parse()
                    .unwrap()
            };
            assert!(of("GeckoFTL", 3) < of("u-FTL", 3), "WA at {pct}");
            assert!(of("GeckoFTL", 4) >= of("u-FTL", 4), "slowdown at {pct}");
            // Read amplification is a cache-hit-rate property, roughly equal
            // across FTLs with equal caches.
            let ra_span = (of("GeckoFTL", 2) - of("DFTL", 2)).abs();
            assert!(
                ra_span < 0.4,
                "RA should be comparable, span {ra_span} at {pct}"
            );
        }
    }
}
