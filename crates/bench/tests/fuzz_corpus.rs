//! Corpus regression: every committed fuzz scenario must replay clean —
//! under the single-tree validity store and under the channel-sharded one.
//! The corpus doubles as the crash-equivalence suite for sharding: each
//! scenario carries a workload trace, a device fault plan and a crash
//! point, and the sharded engine must survive all of them exactly as the
//! single tree does (acknowledged writes read back, audits pass).

use gecko_bench::fuzz::replay::replay_corpus_with_shards;

#[test]
fn corpus_replays_clean_single_tree() {
    let outcomes = replay_corpus_with_shards(1);
    assert!(!outcomes.is_empty(), "committed corpus must not be empty");
    for (name, out) in outcomes {
        assert!(
            out.ok,
            "corpus entry {name} failed (shards=1): {}",
            out.failure.unwrap_or_default()
        );
    }
}

#[test]
fn corpus_replays_clean_sharded() {
    for shards in [2u32, 4] {
        for (name, out) in replay_corpus_with_shards(shards) {
            assert!(
                out.ok,
                "corpus entry {name} failed (shards={shards}): {}",
                out.failure.unwrap_or_default()
            );
        }
    }
}
