//! Figure 9: Logarithmic Gecko vs flash-resident PVB under uniformly random
//! updates, for size ratios T ∈ {2, 4, 8, 16}. The paper's headline §5.1
//! result: Gecko wins under every tuning and T = 2 is optimal.
//!
//! Top panel: internal reads/writes caused by validity-metadata maintenance
//! per interval of 10 000 application writes. Bottom panel: the same as
//! write-amplification (`w + r/δ`).

use crate::harness::{sim_geometry, Driver};
use crate::report::{f3, Table};
use flash_sim::IoPurpose;
use ftl_baselines::ftls::{build_geckoftl_tuned, build_with};
use ftl_baselines::BaselineKind;
use geckoftl_core::ftl::{FtlConfig, GcPolicy, RecoveryPolicy};
use geckoftl_core::gecko::GeckoConfig;

fn validity_io(delta: &flash_sim::StatsSnapshot) -> (u64, u64) {
    let mut reads = 0;
    let mut writes = 0;
    for p in [
        IoPurpose::ValidityUpdate,
        IoPurpose::ValidityQuery,
        IoPurpose::ValidityMerge,
        IoPurpose::ValidityGc,
    ] {
        reads += delta.counts(p).page_reads;
        writes += delta.counts(p).page_writes;
    }
    (reads, writes)
}

/// Run the Figure-9 comparison.
pub fn run() -> Vec<Table> {
    let geo = sim_geometry();
    let base_cfg = FtlConfig {
        cache_entries: FtlConfig::scaled_cache_entries(&geo),
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };

    let mut per_interval = Table::new(
        "Figure 9 (top) — validity-metadata reads/writes per 10k-write interval",
        &["technique", "interval", "writes", "reads"],
    );
    let mut summary = Table::new(
        "Figure 9 (bottom) — validity write-amplification (w + r/δ, δ=10)",
        &["technique", "writes/10k", "reads/10k", "WA"],
    );

    let mut techniques: Vec<(String, Vec<crate::harness::MeasuredInterval>)> = Vec::new();
    for t in [2u32, 4, 8, 16] {
        let gecko_cfg = GeckoConfig {
            size_ratio: t,
            ..GeckoConfig::paper_default(&geo)
        };
        let mut engine = build_geckoftl_tuned(geo, base_cfg, gecko_cfg);
        let intervals = Driver::default().measure(&mut engine);
        techniques.push((format!("Gecko T={t}"), intervals));
    }
    {
        // µ-FTL's flash PVB with the same GC scheme (apples-to-apples).
        let cfg = FtlConfig {
            recovery: RecoveryPolicy::Battery,
            ..base_cfg
        };
        let mut engine = build_with(BaselineKind::MuFtl, geo, cfg);
        let intervals = Driver::default().measure(&mut engine);
        techniques.push(("Flash PVB".into(), intervals));
    }

    for (name, intervals) in &techniques {
        let mut total_r = 0u64;
        let mut total_w = 0u64;
        let mut total_writes = 0u64;
        for iv in intervals {
            let (r, w) = validity_io(&iv.delta);
            per_interval.row(vec![
                name.clone(),
                iv.index.to_string(),
                w.to_string(),
                r.to_string(),
            ]);
            total_r += r;
            total_w += w;
            total_writes += iv.delta.logical_writes;
        }
        let n = total_writes.max(1) as f64;
        let wa = total_w as f64 / n + total_r as f64 / n / 10.0;
        summary.row(vec![
            name.clone(),
            f3(total_w as f64 / total_writes as f64 * 10_000.0),
            f3(total_r as f64 / total_writes as f64 * 10_000.0),
            f3(wa),
        ]);
    }

    vec![summary, per_interval]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn t2_is_optimal_and_all_geckos_beat_pvb() {
        let tables = super::run();
        let summary = &tables[0];
        let wa: Vec<f64> = summary.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        // rows: T=2, T=4, T=8, T=16, PVB
        let pvb = wa[4];
        for (i, w) in wa[..4].iter().enumerate() {
            assert!(w < &pvb, "gecko row {i} ({w}) must beat PVB ({pvb})");
        }
        assert!(
            wa[0] <= wa[1] && wa[0] <= wa[2] && wa[0] <= wa[3],
            "T=2 must be optimal: {wa:?}"
        );
        // PVB ≈ 1 + 1/δ.
        assert!((0.9..1.4).contains(&pvb), "PVB WA = {pvb}");
    }
}
