//! # ftl-baselines
//!
//! The four state-of-the-art FTLs GeckoFTL is evaluated against (paper §5.3),
//! assembled from the shared engine in `geckoftl-core` plus the
//! page-validity stores that differentiate them:
//!
//! | FTL      | Page validity metadata          | Dirty-entry recovery      |
//! |----------|---------------------------------|---------------------------|
//! | DFTL     | RAM-resident PVB ([`RamPvb`])   | battery                   |
//! | LazyFTL  | RAM-resident PVB                | restricted dirty fraction |
//! | µ-FTL    | flash-resident PVB ([`FlashPvb`]) | battery                 |
//! | IB-FTL   | page validity log ([`PvlStore`])  | restricted dirty fraction |
//! | GeckoFTL | Logarithmic Gecko               | checkpoints + deferral    |
//!
//! All five run the same translation scheme and (unless configured
//! otherwise) the same greedy garbage-collector, so measured differences are
//! attributable to the validity store and recovery policy — the paper's
//! comparison axes.

pub mod ftls;
pub mod pvb;
pub mod pvl;
pub mod restart;

pub use ftls::{build, build_with, BaselineKind};
pub use pvb::{FlashPvb, RamPvb};
pub use pvl::PvlStore;
pub use restart::restart_clean;
