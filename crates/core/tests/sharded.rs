//! Property tests of the channel-sharded validity store: `shards = 1`
//! must be byte-identical to a plain single-tree [`LogGecko`] (same code
//! path, same operation order, same device), and `shards = N` must be
//! *logically* identical to `shards = 1` — every GC query answers the same
//! bits, mid-stream and settled — across plain runs and mixed crash
//! workloads with per-shard recovery. Physical layout legitimately differs
//! across shard counts (each shard flushes and merges on its own cadence),
//! which is the same reason the merge-scheduler suite compares cadences
//! logically rather than byte-wise.

use flash_sim::{BlockId, FlashDevice, Geometry, Lpn, Ppn};
use geckoftl_core::ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend};
use geckoftl_core::gecko::{GeckoConfig, LogGecko, ShardedGecko};
use geckoftl_core::recovery::gecko_recover;
use geckoftl_core::validity::FlatMetaSink;
use std::collections::HashMap;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Small pages so flushes and multi-level merges happen at test scale.
fn small_page_cfg(shards: u32) -> GeckoConfig {
    GeckoConfig {
        page_header_bytes: 4096 - 40, // ≈6 entries per page
        shards,
        ..GeckoConfig::default()
    }
}

fn harness(channels: u32) -> (FlashDevice, FlatMetaSink) {
    let geo = Geometry::tiny().with_channels(channels);
    let dev = FlashDevice::new(geo);
    let sink = FlatMetaSink::new((32..64).map(BlockId).collect());
    (dev, sink)
}

/// One pseudo-random update/erase operation against any Gecko-family tree,
/// expressed through closures so the same stream drives both layouts.
fn op_stream(seed: u64, ops: u64, mut apply: impl FnMut(OpKind)) {
    let mut rng = Lcg(seed);
    for _ in 0..ops {
        let x = rng.next();
        if x.is_multiple_of(23) {
            apply(OpKind::Erase(BlockId((x >> 8) as u32 % 32)));
        } else {
            let page = (x >> 8) % (32 * 16);
            apply(OpKind::Invalidate(Ppn(page as u32)));
        }
    }
}

enum OpKind {
    Erase(BlockId),
    Invalidate(Ppn),
}

/// `shards = 1` routes every operation to shard 0 in identical order on an
/// identical device, so the layouts must agree *byte for byte*: same runs
/// (identity, level, span, lineage, page directory), same buffer, same
/// watermark — not merely the same query answers.
#[test]
fn one_shard_is_byte_identical_to_single_tree() {
    let cfg = small_page_cfg(1);
    let (mut adev, mut asink) = harness(1);
    let mut single = LogGecko::new(adev.geometry(), cfg);
    let (mut bdev, mut bsink) = harness(1);
    let mut sharded = ShardedGecko::new(bdev.geometry(), cfg);

    op_stream(0xA11CE, 2500, |op| match op {
        OpKind::Erase(b) => {
            single.note_erase(&mut adev, &mut asink, b);
            sharded.note_erase(&mut bdev, &mut bsink, b);
        }
        OpKind::Invalidate(p) => {
            single.mark_invalid(&mut adev, &mut asink, p);
            sharded.mark_invalid(&mut bdev, &mut bsink, p);
        }
    });
    // Interleave pumping exactly as the op stream does not: pump both once
    // per 100 ops worth at the end, then quiesce both.
    single.flush(&mut adev, &mut asink);
    single.drain_merges(&mut adev, &mut asink);
    sharded.flush(&mut bdev, &mut bsink);
    sharded.drain_merges(&mut bdev, &mut bsink);

    let snap_single: Vec<_> = single
        .runs_newest_first()
        .map(|r| (r.meta.clone(), r.pages.clone()))
        .collect();
    let snap_sharded: Vec<_> = sharded
        .all_runs()
        .map(|r| (r.meta.clone(), r.pages.clone()))
        .collect();
    assert_eq!(
        snap_single, snap_sharded,
        "shards=1 must replicate the single tree exactly"
    );
    assert_eq!(single.buffer_len(), sharded.buffer_len());
    assert_eq!(single.last_flush_seq(), sharded.last_flush_seq());
    assert_eq!(single.stats, sharded.stats());
}

/// The tentpole property: a 4-way sharded store answers every GC query
/// with exactly the bits the single tree answers, mid-stream (shard merges
/// in flight) and settled, and each shard independently satisfies the
/// settled-shape invariants.
#[test]
fn sharded_store_matches_single_tree_logically() {
    for shards in [2u32, 4] {
        let (mut adev, mut asink) = harness(1);
        let mut single = LogGecko::new(adev.geometry(), small_page_cfg(1));
        let (mut bdev, mut bsink) = harness(shards);
        let mut sharded = ShardedGecko::new(bdev.geometry(), small_page_cfg(shards));

        let mut since_check = 0u32;
        op_stream(0xBEEF ^ u64::from(shards), 3000, |op| {
            match op {
                OpKind::Erase(b) => {
                    single.note_erase(&mut adev, &mut asink, b);
                    sharded.note_erase(&mut bdev, &mut bsink, b);
                }
                OpKind::Invalidate(p) => {
                    single.mark_invalid(&mut adev, &mut asink, p);
                    sharded.mark_invalid(&mut bdev, &mut bsink, p);
                }
            }
            single.pump_merges(&mut adev, &mut asink, 2);
            sharded.pump_merges(&mut bdev, &mut bsink, 2);
            // Periodic mid-stream agreement (merges in flight on both).
            since_check += 1;
            if since_check == 500 {
                since_check = 0;
                for blk in 0..32 {
                    let want = single.gc_query(&mut adev, BlockId(blk));
                    let got = sharded.gc_query(&mut bdev, BlockId(blk));
                    for i in 0..16 {
                        assert_eq!(
                            want.get(i),
                            got.get(i),
                            "shards={shards}: mid-stream bit {blk}:{i}"
                        );
                    }
                }
            }
        });

        single.flush(&mut adev, &mut asink);
        single.drain_merges(&mut adev, &mut asink);
        sharded.flush(&mut bdev, &mut bsink);
        sharded.drain_merges(&mut bdev, &mut bsink);
        assert_eq!(sharded.merge_jobs_pending(), 0);
        assert_eq!(sharded.merge_backlog_pages(), 0);
        for blk in 0..32 {
            let want = single.gc_query(&mut adev, BlockId(blk));
            let got = sharded.gc_query(&mut bdev, BlockId(blk));
            for i in 0..16 {
                assert_eq!(
                    want.get(i),
                    got.get(i),
                    "shards={shards}: settled bit {blk}:{i}"
                );
            }
        }
        // Batched queries must agree with their per-block counterparts
        // (the engine's GC prefetch path routes through the batch).
        let blocks: Vec<BlockId> = (0..32).map(BlockId).collect();
        let batch = sharded.gc_query_batch(&mut bdev, &blocks);
        for (b, bm) in blocks.iter().zip(&batch) {
            let direct = sharded.gc_query(&mut bdev, *b);
            for i in 0..16 {
                assert_eq!(bm.get(i), direct.get(i), "batch bit {b:?}:{i}");
            }
        }
        // Per-shard settled shape: every shard tree is drained and holds at
        // most one run per level.
        for (s, tree) in sharded.shard_trees().iter().enumerate() {
            assert_eq!(tree.merge_jobs_pending(), 0, "shard {s} drained");
            for (lvl, count) in tree.runs_per_level().iter().enumerate() {
                assert!(*count <= 1, "shard {s} level {lvl} holds {count} runs");
            }
        }
    }
}

fn engine_with_shards(shards: u32) -> FtlEngine {
    let geo = Geometry::tiny().with_channels(shards.max(1));
    let cfg = FtlConfig {
        cache_entries: 64,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko_cfg = GeckoConfig {
        page_header_bytes: geo.page_bytes - 64,
        sync_merge: false,
        merge_step_pages: 2,
        shards,
        ..GeckoConfig::paper_default(&geo)
    };
    FtlEngine::format(geo, cfg, ValidityBackend::gecko_for(geo, gecko_cfg))
}

fn run_workload(engine: &mut FtlEngine, oracle: &mut HashMap<u32, u64>, rng: &mut Lcg, n: u64) {
    let logical = engine.geometry().logical_pages() as u32;
    for i in 0..n {
        let lpn = (rng.next() % logical as u64) as u32;
        let version = oracle.len() as u64 * 1_000_000 + i;
        engine.write(Lpn(lpn), version);
        oracle.insert(lpn, version);
    }
}

fn verify_all(engine: &mut FtlEngine, oracle: &HashMap<u32, u64>) {
    let logical = engine.geometry().logical_pages() as u32;
    for lpn in 0..logical {
        assert_eq!(
            engine.read(Lpn(lpn)),
            oracle.get(&lpn).copied(),
            "post-check for L{lpn}"
        );
    }
}

/// Mixed crash workload at the engine level: a sharded engine and a
/// single-tree engine run the same host trace, both crash at the same op
/// counts, recover (the sharded one through per-shard candidate assembly),
/// and must both serve every acknowledged write — after each recovery and
/// at the end.
#[test]
fn sharded_engine_survives_mixed_crash_workload_like_single() {
    for shards in [1u32, 4] {
        let mut rng = Lcg(0x5EED ^ u64::from(shards));
        let mut engine = engine_with_shards(shards);
        let cfg = engine.config();
        let gecko_cfg = engine.backend().gecko_config().expect("gecko backend");
        let mut oracle = HashMap::new();
        for round in 0..4u64 {
            run_workload(&mut engine, &mut oracle, &mut rng, 900 + 217 * round);
            let dev = engine.crash();
            let (recovered, _report) = gecko_recover(dev, cfg, gecko_cfg);
            engine = recovered;
            if shards > 1 {
                assert!(
                    engine.backend().sharded().is_some(),
                    "recovery must reassemble the sharded layout"
                );
            }
            verify_all(&mut engine, &oracle);
        }
        run_workload(&mut engine, &mut oracle, &mut rng, 800);
        engine.shutdown_clean();
        verify_all(&mut engine, &oracle);
        assert_eq!(engine.backend().merge_jobs_pending(), 0);
    }
}

/// Per-shard recovery reassembles the same installed state the whole
/// device held at the crash: every run installed in any shard survives
/// into the same shard's recovered tree, and — as in the single-tree
/// crash suite — any extra runs are level-0 flushes of recovery's
/// re-derived buffer, newer than that shard's crash-time watermark.
#[test]
fn per_shard_recovery_preserves_every_installed_run() {
    let shards = 4u32;
    let mut rng = Lcg(0xD15C);
    let mut engine = engine_with_shards(shards);
    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko_config().expect("gecko backend");
    let mut oracle = HashMap::new();
    run_workload(&mut engine, &mut oracle, &mut rng, 2500);
    // Stop at a settled moment (no merge in flight in any shard) so the
    // installed run set is the whole story — recovery legitimately
    // reshapes in-flight merge state (discarding unsealed outputs).
    for _ in 0..40_000 {
        if engine.backend().merge_jobs_pending() == 0 {
            break;
        }
        run_workload(&mut engine, &mut oracle, &mut rng, 1);
    }
    assert_eq!(engine.backend().merge_jobs_pending(), 0, "failed to settle");

    let snapshot = |s: &ShardedGecko| -> Vec<Vec<_>> {
        s.shard_trees()
            .iter()
            .map(|t| {
                let mut runs: Vec<_> = t
                    .runs_newest_first()
                    .map(|r| (r.meta.id, r.meta.level, r.meta.span(), r.pages.clone()))
                    .collect();
                runs.sort_by_key(|(id, ..)| *id);
                runs
            })
            .collect()
    };
    let store = engine.backend().sharded().expect("sharded backend");
    let before = snapshot(store);
    let watermarks = store.shard_flush_seqs();
    assert!(
        before.iter().filter(|runs| !runs.is_empty()).count() >= 2,
        "workload must populate several shards for the test to bite"
    );

    let dev = engine.crash();
    let (mut recovered, _report) = gecko_recover(dev, cfg, gecko_cfg);
    let after = snapshot(recovered.backend().sharded().expect("sharded recovered"));
    for (s, runs_before) in before.iter().enumerate() {
        for run in runs_before {
            assert!(
                after[s].contains(run),
                "shard {s}: installed run {:?} lost by recovery",
                run.0
            );
        }
        for extra in after[s].iter().filter(|r| !runs_before.contains(r)) {
            let (id, level, (since, _), _) = extra;
            assert_eq!(
                *level, 0,
                "shard {s}: unexpected non-flush run {id:?} materialized"
            );
            assert!(
                *since > watermarks[s],
                "shard {s}: extra run {id:?} must stem from re-derived buffer state"
            );
        }
    }
    verify_all(&mut recovered, &oracle);
    run_workload(&mut recovered, &mut oracle, &mut rng, 1000);
    verify_all(&mut recovered, &oracle);
}
