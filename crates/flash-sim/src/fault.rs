//! Deterministic fault injection: program/erase failures, torn pages and
//! power cuts inside device operations.
//!
//! Real very-large flash devices exhibit *hardware* faults that a correct
//! FTL must survive: a program operation can fail (the page — and usually
//! the whole block — has gone bad), an erase can fail the same way, and a
//! power cut in the middle of a program can leave a *torn* page whose data
//! area never finished while its spare area did, or vice versa. These are
//! distinct from the *firmware bugs* the original [`crate::FlashError`]
//! variants model: the recoverable variants ([`FlashError::ProgramFailed`],
//! [`FlashError::EraseFailed`]) are returned to the FTL, which is expected
//! to retry on a fresh block and retire the bad one.
//!
//! A [`FaultPlan`] is a pure data object mapping *operation attempt
//! indices* (the device counts every program and erase attempt since
//! construction) to faults, so a plan replays bit-identically: the same
//! plan against the same workload produces the same device history. This is
//! what the fuzzing harness serializes into its corpus.
//!
//! ## The crash-image mechanism
//!
//! A torn write cannot be modelled by mutating the live device: the FTL is
//! oblivious to the power cut and would keep writing, producing a flash
//! state no real crash can produce (pages younger than the torn page). And
//! it cannot be modelled as an error either: the firmware is *dead* at that
//! point, there is nobody to observe an error. Instead the device snapshots
//! itself at the fault — with the in-flight page torn — and stashes the
//! snapshot as a **crash image** while live execution continues unharmed.
//! The harness polls [`crate::FlashDevice::take_crash_image`] after each
//! operation, abandons the live engine, and runs recovery against the
//! image: a physically faithful power-cut-mid-program, delivered at a
//! precise, replayable write index. [`EraseFault::Crash`] captures an image
//! the same way, with the erase just applied — a power cut inside an erase
//! operation, after the pulse completed but before firmware resumed.
//!
//! Crash images carry an empty fault plan (recovery and post-crash
//! execution run fault-free), so a plan's faults target the pre-crash
//! history only.

use std::collections::BTreeMap;

/// A fault injected into one `write_page` attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WriteFault {
    /// The program operation fails: nothing is persisted, the write pointer
    /// does not advance, the block is marked bad, and the caller gets
    /// [`crate::FlashError::ProgramFailed`] — the recoverable fault an FTL
    /// handles by retrying on a fresh block.
    ProgramFail,
    /// Power cut mid-program, data area lost: the page is consumed (the
    /// write pointer advances in the crash image) and its spare area
    /// survives, but the data never finished. Live execution continues; the
    /// torn state is delivered via the crash image.
    TornData,
    /// Power cut mid-program, spare area lost: the data area survives but
    /// the spare — written last, carrying the page's identity — never made
    /// it. Delivered via the crash image, like [`WriteFault::TornData`].
    TornSpare,
}

/// A fault injected into one `erase_block` attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EraseFault {
    /// The erase fails: block contents stay intact, the block is marked bad,
    /// and the caller gets [`crate::FlashError::EraseFailed`] — the FTL
    /// retires the block instead of returning it to the free pool.
    Fail,
    /// Power cut inside the erase operation: a crash image is captured with
    /// the erase applied (the pulse completed; firmware never resumed), and
    /// live execution continues. The erase itself succeeds.
    Crash,
}

/// A deterministic, serializable schedule of device faults, keyed by
/// operation attempt index (0-based, counted separately for writes and
/// erases over the device's lifetime).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    write_faults: BTreeMap<u64, WriteFault>,
    erase_faults: BTreeMap<u64, EraseFault>,
}

impl FaultPlan {
    /// An empty plan: no faults.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedule a fault on the `nth` write attempt (builder style).
    pub fn on_write(mut self, nth: u64, fault: WriteFault) -> Self {
        self.write_faults.insert(nth, fault);
        self
    }

    /// Schedule a fault on the `nth` erase attempt (builder style).
    pub fn on_erase(mut self, nth: u64, fault: EraseFault) -> Self {
        self.erase_faults.insert(nth, fault);
        self
    }

    /// Whether the plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.write_faults.is_empty() && self.erase_faults.is_empty()
    }

    /// Iterate the scheduled write faults in attempt order.
    pub fn write_faults(&self) -> impl Iterator<Item = (u64, WriteFault)> + '_ {
        self.write_faults.iter().map(|(&n, &f)| (n, f))
    }

    /// Iterate the scheduled erase faults in attempt order.
    pub fn erase_faults(&self) -> impl Iterator<Item = (u64, EraseFault)> + '_ {
        self.erase_faults.iter().map(|(&n, &f)| (n, f))
    }

    pub(crate) fn write_fault(&self, nth: u64) -> Option<WriteFault> {
        self.write_faults.get(&nth).copied()
    }

    pub(crate) fn erase_fault(&self, nth: u64) -> Option<EraseFault> {
        self.erase_faults.get(&nth).copied()
    }
}

/// Counters of faults the device actually delivered (a scheduled fault is
/// only delivered if execution reaches its attempt index).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Program attempts failed ([`WriteFault::ProgramFail`] plus writes
    /// aimed at an already-bad block).
    pub program_failures: u64,
    /// Erase attempts failed ([`EraseFault::Fail`] plus erases of
    /// already-bad blocks).
    pub erase_failures: u64,
    /// Torn pages delivered into crash images.
    pub torn_writes: u64,
    /// Crash images captured inside erase operations.
    pub erase_crashes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_lookup_and_iteration() {
        let plan = FaultPlan::new()
            .on_write(3, WriteFault::TornData)
            .on_write(7, WriteFault::ProgramFail)
            .on_erase(1, EraseFault::Crash);
        assert!(!plan.is_empty());
        assert_eq!(plan.write_fault(3), Some(WriteFault::TornData));
        assert_eq!(plan.write_fault(4), None);
        assert_eq!(plan.erase_fault(1), Some(EraseFault::Crash));
        assert_eq!(
            plan.write_faults().collect::<Vec<_>>(),
            vec![(3, WriteFault::TornData), (7, WriteFault::ProgramFail)]
        );
        assert!(FaultPlan::new().is_empty());
    }
}
