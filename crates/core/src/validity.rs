//! The page-validity store abstraction.
//!
//! All FTLs in the paper's evaluation differ in *where and how* they keep
//! track of invalid flash pages: a RAM-resident PVB (DFTL, LazyFTL), a
//! flash-resident PVB (µ-FTL), a page validity log (IB-FTL) or Logarithmic
//! Gecko (GeckoFTL). [`ValidityStore`] is the common interface: the FTL
//! engine reports invalidations and erases, and asks at garbage-collection
//! time which pages of a victim block are invalid.
//!
//! Flash-resident stores need somewhere to put their pages; [`MetaSink`]
//! abstracts the block manager so the stores stay independently testable.

use crate::gecko::entry::Bitmap;
use flash_sim::{BlockId, FlashDevice, IoPurpose, MetaKind, PageData, Ppn};

/// Where flash-resident metadata pages get written, and who to tell when an
/// old metadata page becomes obsolete.
///
/// Implemented by the FTL's block manager; simple test sinks exist for
/// exercising stores in isolation.
pub trait MetaSink {
    /// Append a metadata page to the active block of the `kind` group and
    /// return its physical address.
    fn append_meta(
        &mut self,
        dev: &mut FlashDevice,
        kind: MetaKind,
        tag: u64,
        data: PageData,
        purpose: IoPurpose,
    ) -> Ppn;

    /// Report that a previously written metadata page is now obsolete
    /// (superseded or part of a discarded run).
    fn meta_page_obsolete(&mut self, dev: &mut FlashDevice, ppn: Ppn);
}

/// A page-validity store: the component every FTL uses to track invalid
/// pages of **user blocks**.
///
/// `Send` is a supertrait so an engine holding a boxed store can move into
/// the [`crate::ftl::ConcurrentFtl`] front-end's lock; stores are plain
/// data, so this costs implementors nothing.
pub trait ValidityStore: Send {
    /// Report that physical page `ppn` no longer holds live data
    /// (Algorithm 1 for Logarithmic Gecko; a bitmap update for PVB).
    fn mark_invalid(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppn: Ppn);

    /// Report a batch of invalidations *atomically with respect to flush
    /// generations*: either all land in the same flush or all stay buffered.
    /// A synchronization operation's before-images must use this — if a
    /// flush fired mid-batch, the tail of the batch would be lost by a crash
    /// while recovery's version-diff (App. C.2.2) skips the sync because its
    /// translation page predates the flush.
    fn mark_invalid_batch(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppns: &[Ppn]) {
        for &p in ppns {
            self.mark_invalid(dev, sink, p);
        }
    }

    /// Report that `block` has been erased: all validity information
    /// recorded for it before this call is obsolete (Algorithm 2).
    fn note_erase(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, block: BlockId);

    /// GC query: return the invalid-page bitmap for `block` (bit set ⇒ page
    /// invalid), as of all reports made so far.
    fn gc_query(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        block: BlockId,
    ) -> Bitmap;

    /// Batched GC query: the invalid bitmaps of several blocks, in input
    /// order, all as of the same point in time. The engine uses this to
    /// prefetch bitmaps for a whole GC burst's victim candidates in one
    /// pass. Stores with a flash-resident structure should override it to
    /// coalesce probes that land on the same flash page (Logarithmic Gecko
    /// does); the default just loops.
    fn gc_query_batch(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        blocks: &[BlockId],
    ) -> Vec<Bitmap> {
        blocks
            .iter()
            .map(|b| self.gc_query(dev, sink, *b))
            .collect()
    }

    /// Integrated-RAM footprint of the store's RAM-resident state, in bytes,
    /// using the paper's accounting (Appendix B).
    fn ram_bytes(&self) -> u64;

    /// Human-readable store name for reports.
    fn name(&self) -> &'static str;

    /// The metadata block kind this store can garbage-collect by migrating
    /// live pages (`None` if its blocks must never be picked as greedy GC
    /// victims — e.g. Gecko runs, which are only erased when fully invalid,
    /// and the PVL, which bounds itself through cleaning).
    fn collectable_meta(&self) -> Option<flash_sim::MetaKind> {
        None
    }

    /// Migrate the live pages of one of this store's metadata blocks so the
    /// engine can erase it (greedy GC of flash-resident PVB pages, µ-FTL).
    /// Only called for blocks of the [`ValidityStore::collectable_meta`]
    /// kind.
    fn collect_meta_block(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        block: BlockId,
    ) {
        let _ = (dev, sink, block);
        unreachable!("store declared no collectable metadata");
    }

    /// Persist any RAM-buffered state to flash (clean shutdown, or bounding
    /// work before measurements).
    fn flush(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        let _ = (dev, sink);
    }
}

/// A trivial [`MetaSink`] for store unit tests: writes metadata pages into a
/// fixed pool of blocks round-robin, erasing and reusing a block once every
/// page in it has been reported obsolete (a miniature erase-when-empty
/// block manager).
///
/// Panics when no block is reusable — tests should provision enough blocks.
#[derive(Debug)]
pub struct FlatMetaSink {
    blocks: Vec<BlockId>,
    current: usize,
    /// Per provisioned block: obsolete-page count since last erase.
    obsolete_count: Vec<u32>,
    /// Total obsolete reports, for assertions.
    pub obsoleted: u64,
}

impl FlatMetaSink {
    /// A sink writing into the given blocks in order.
    pub fn new(blocks: Vec<BlockId>) -> Self {
        let n = blocks.len();
        FlatMetaSink {
            blocks,
            current: 0,
            obsolete_count: vec![0; n],
            obsoleted: 0,
        }
    }
}

impl MetaSink for FlatMetaSink {
    fn append_meta(
        &mut self,
        dev: &mut FlashDevice,
        kind: MetaKind,
        tag: u64,
        data: PageData,
        purpose: IoPurpose,
    ) -> Ppn {
        let n = self.blocks.len();
        for _ in 0..=n {
            let block = self.blocks[self.current];
            if dev.block_is_full(block) {
                // Fully obsolete? Erase and reuse.
                if self.obsolete_count[self.current] == dev.geometry().pages_per_block {
                    dev.erase_block(block, purpose).expect("erase meta block");
                    self.obsolete_count[self.current] = 0;
                } else {
                    self.current = (self.current + 1) % n;
                    continue;
                }
            }
            return dev
                .write_page(
                    block,
                    data,
                    flash_sim::SpareInfo::Meta { kind, tag },
                    purpose,
                )
                .expect("append to non-full block succeeds");
        }
        panic!("FlatMetaSink: no reusable block among {n} provisioned");
    }

    fn meta_page_obsolete(&mut self, dev: &mut FlashDevice, ppn: Ppn) {
        self.obsoleted += 1;
        let block = dev.geometry().block_of(ppn);
        if let Some(i) = self.blocks.iter().position(|b| *b == block) {
            self.obsolete_count[i] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::Geometry;

    #[test]
    fn flat_sink_fills_blocks_in_order() {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        let mut sink = FlatMetaSink::new(vec![BlockId(0), BlockId(1)]);
        let mut last = None;
        for i in 0..(geo.pages_per_block + 2) {
            let ppn = sink.append_meta(
                &mut dev,
                MetaKind::GeckoRun,
                i as u64,
                PageData::blob_of(i),
                IoPurpose::ValidityUpdate,
            );
            if let Some(prev) = last {
                assert!(ppn > prev, "appends must advance");
            }
            last = Some(ppn);
        }
        assert_eq!(dev.geometry().block_of(last.unwrap()), BlockId(1));
    }
}
