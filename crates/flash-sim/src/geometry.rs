//! Device geometry and physical/logical address types.
//!
//! The terminology follows Figure 2 of the paper:
//!
//! | Term | Meaning                                     |
//! |------|---------------------------------------------|
//! | `K`  | number of blocks in the device              |
//! | `B`  | pages per block                             |
//! | `P`  | page size in bytes                          |
//! | `R`  | ratio of logical to physical capacity       |

use std::fmt;

/// A logical page number — the address space the application sees.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lpn(pub u32);

/// A physical page number: `block * pages_per_block + page_offset`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ppn(pub u32);

/// A physical flash block identifier in `0..K`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Offset of a page within its block, in `0..B`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageOffset(pub u32);

impl fmt::Debug for Lpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}
impl fmt::Debug for Ppn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}
impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Physical geometry of a simulated flash device.
///
/// All capacity-dependent formulas in the paper (translation-table size, PVB
/// size, number of Gecko levels, ...) are functions of these five values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Geometry {
    /// `K`: number of flash blocks.
    pub blocks: u32,
    /// `B`: pages per block.
    pub pages_per_block: u32,
    /// `P`: page size in bytes.
    pub page_bytes: u32,
    /// Spare-area size in bytes (typically `P / 32`, per Micron TN-29-07).
    pub spare_bytes: u32,
    /// `R`: ratio between the logical and the physical address space.
    pub logical_ratio: f64,
    /// Number of independent logical units (channels/dies) the controller
    /// can drive in parallel. Affects only *time* estimates for bulk scans
    /// (the paper notes recovery's init-scan bottleneck "may be alleviated
    /// ... through parallelism, as a flash device typically consists of
    /// multiple logical units"); per-operation IO accounting is unchanged.
    pub channels: u32,
}

impl Geometry {
    /// Create a geometry, deriving the spare-area size as `P / 32`.
    pub fn new(blocks: u32, pages_per_block: u32, page_bytes: u32, logical_ratio: f64) -> Self {
        assert!(blocks > 0 && pages_per_block > 0 && page_bytes > 0);
        assert!(
            logical_ratio > 0.0 && logical_ratio < 1.0,
            "logical ratio must leave over-provisioned space"
        );
        Geometry {
            blocks,
            pages_per_block,
            page_bytes,
            spare_bytes: page_bytes / 32,
            logical_ratio,
            channels: 1,
        }
    }

    /// The same geometry with `channels` parallel logical units.
    pub fn with_channels(mut self, channels: u32) -> Self {
        assert!(channels >= 1);
        self.channels = channels;
        self
    }

    /// The paper's default configuration (Figure 2): a 2 TB device with
    /// K=2²² blocks, B=2⁷ pages per block, P=2¹² bytes per page, R=0.7.
    ///
    /// This geometry is used for the *analytical* models; it is too large to
    /// simulate page-by-page on a laptop (2²⁹ pages).
    pub fn paper_2tb() -> Self {
        Geometry::new(1 << 22, 1 << 7, 1 << 12, 0.7)
    }

    /// A scaled-down geometry for simulation experiments: 2¹² blocks of 128
    /// pages (2 GB device), keeping the paper's B, P and R.
    pub fn small() -> Self {
        Geometry::new(1 << 12, 1 << 7, 1 << 12, 0.7)
    }

    /// A minimal geometry for unit tests: 64 blocks of 16 pages.
    pub fn tiny() -> Self {
        Geometry::new(64, 16, 1 << 12, 0.7)
    }

    /// Same shape as [`Geometry::paper_2tb`] but scaled by `shift` powers of
    /// two in the number of blocks (capacity sweeps for Figure 1 / 11).
    pub fn paper_scaled(blocks: u32) -> Self {
        Geometry::new(blocks, 1 << 7, 1 << 12, 0.7)
    }

    /// `K · B`: total number of physical pages.
    pub fn total_pages(&self) -> u64 {
        self.blocks as u64 * self.pages_per_block as u64
    }

    /// Number of logical pages exposed to the application: `⌊R · K · B⌋`.
    pub fn logical_pages(&self) -> u64 {
        (self.total_pages() as f64 * self.logical_ratio).floor() as u64
    }

    /// Physical capacity in bytes: `K · B · P`.
    pub fn physical_bytes(&self) -> u64 {
        self.total_pages() * self.page_bytes as u64
    }

    /// Logical capacity in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.logical_pages() * self.page_bytes as u64
    }

    /// `D` in Appendix E: number of pages of over-provisioned space, an upper
    /// bound on the number of invalid pages in the device at any time.
    pub fn overprovisioned_pages(&self) -> u64 {
        self.total_pages() - self.logical_pages()
    }

    /// Split a physical page number into its block.
    pub fn block_of(&self, ppn: Ppn) -> BlockId {
        BlockId(ppn.0 / self.pages_per_block)
    }

    /// Split a physical page number into its offset within the block.
    pub fn offset_of(&self, ppn: Ppn) -> PageOffset {
        PageOffset(ppn.0 % self.pages_per_block)
    }

    /// Compose a physical page number from block and in-block offset.
    pub fn ppn(&self, block: BlockId, offset: PageOffset) -> Ppn {
        debug_assert!(block.0 < self.blocks);
        debug_assert!(offset.0 < self.pages_per_block);
        Ppn(block.0 * self.pages_per_block + offset.0)
    }

    /// First physical page of a block.
    pub fn first_page(&self, block: BlockId) -> Ppn {
        self.ppn(block, PageOffset(0))
    }

    /// The logical unit (channel/die) a block is wired to. Blocks stripe
    /// round-robin across channels, the standard interleaved layout; IO on
    /// blocks of distinct channels can proceed in parallel (see
    /// [`crate::FlashDevice::begin_overlap`]).
    pub fn channel_of(&self, block: BlockId) -> u32 {
        block.0 % self.channels
    }

    /// Whether `ppn` addresses a page that exists on this device.
    pub fn contains(&self, ppn: Ppn) -> bool {
        (ppn.0 as u64) < self.total_pages()
    }

    /// Whether `lpn` is within the exposed logical address space.
    pub fn contains_lpn(&self, lpn: Lpn) -> bool {
        (lpn.0 as u64) < self.logical_pages()
    }

    /// Iterate over all block ids of the device.
    pub fn iter_blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks).map(BlockId)
    }

    /// Number of 4-byte mapping entries that fit into one translation page.
    pub fn entries_per_translation_page(&self) -> u32 {
        self.page_bytes / 4
    }

    /// Number of translation pages needed to map the whole logical space.
    pub fn translation_pages(&self) -> u32 {
        let per = self.entries_per_translation_page() as u64;
        self.logical_pages().div_ceil(per) as u32
    }

    /// Size of the flash-resident translation table in bytes: `4 · K · B · R`
    /// (denoted `TT` in the paper, §2).
    pub fn translation_table_bytes(&self) -> u64 {
        4 * self.logical_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_hold() {
        let g = Geometry::paper_2tb();
        assert_eq!(g.total_pages(), 1 << 29);
        assert_eq!(g.physical_bytes(), 1 << 41); // 2 TB
                                                 // TT = 4·K·B·R ≈ 1.5 GB ("1.4 GB" in the paper's loose phrasing).
        let tt = g.translation_table_bytes();
        assert!((1_490_000_000..1_510_000_000).contains(&tt), "TT = {tt}");
        // PVB = K·B/8 = 64 MB.
        assert_eq!(g.total_pages() / 8, 64 << 20);
    }

    #[test]
    fn address_round_trips() {
        let g = Geometry::tiny();
        for raw in [0u32, 1, 15, 16, 17, 63 * 16 + 15] {
            let ppn = Ppn(raw);
            let b = g.block_of(ppn);
            let o = g.offset_of(ppn);
            assert_eq!(g.ppn(b, o), ppn);
        }
        assert!(g.contains(Ppn(64 * 16 - 1)));
        assert!(!g.contains(Ppn(64 * 16)));
    }

    #[test]
    fn logical_space_is_fraction_of_physical() {
        let g = Geometry::tiny();
        assert_eq!(g.total_pages(), 1024);
        assert_eq!(g.logical_pages(), 716); // ⌊0.7 · 1024⌋
        assert_eq!(g.overprovisioned_pages(), 308);
        assert!(g.contains_lpn(Lpn(715)));
        assert!(!g.contains_lpn(Lpn(716)));
    }

    #[test]
    fn translation_page_math() {
        let g = Geometry::small();
        assert_eq!(g.entries_per_translation_page(), 1024);
        let expected = g.logical_pages().div_ceil(1024) as u32;
        assert_eq!(g.translation_pages(), expected);
    }

    #[test]
    #[should_panic(expected = "over-provisioned")]
    fn rejects_full_logical_ratio() {
        let _ = Geometry::new(4, 4, 4096, 1.0);
    }
}
