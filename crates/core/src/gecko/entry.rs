//! Gecko entries: the key-value pairs stored in Logarithmic Gecko's buffer
//! and runs (paper §3, Figure 3), including entry-partitioning (§3.3).
//!
//! A Gecko entry maps a *key* to a *page-validity bitmap*:
//!
//! * without partitioning (S=1) the key is a block ID and the bitmap has one
//!   bit per page in the block (B bits);
//! * with partitioning factor S, each block's bitmap is split into S
//!   sub-entries of B/S bits, keyed by `(block, part)` so that an update only
//!   buffers the sub-entry covering the invalidated page (Figure 6).
//!
//! Every entry additionally carries an *erase flag* (§3): an entry with the
//! flag set marks the point in time at which the block was erased, and all
//! entries for the same key in older runs are obsolete.

use flash_sim::BlockId;
use std::fmt;

/// A fixed-width bitmap of page-validity bits (bit set ⇒ page invalid).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    words: Box<[u64]>,
    len: u32,
}

impl Bitmap {
    /// An all-zero bitmap of `len` bits.
    pub fn new(len: u32) -> Self {
        Bitmap {
            words: vec![0u64; len.div_ceil(64) as usize].into_boxed_slice(),
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Set bit `i`.
    pub fn set(&mut self, i: u32) {
        assert!(i < self.len, "bit {i} out of range ({})", self.len);
        self.words[(i / 64) as usize] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    pub fn clear(&mut self, i: u32) {
        assert!(i < self.len, "bit {i} out of range ({})", self.len);
        self.words[(i / 64) as usize] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`.
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.len, "bit {i} out of range ({})", self.len);
        self.words[(i / 64) as usize] >> (i % 64) & 1 == 1
    }

    /// Bitwise-OR another bitmap of the same width into this one (the merge
    /// operator of Algorithm 3 and of GC queries).
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap width mismatch");
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= o;
        }
    }

    /// Number of set bits (hamming weight; used by BVC recovery, App. C
    /// step 5).
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterate over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).filter(move |i| self.get(*i))
    }
}

impl fmt::Debug for Bitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitmap[")?;
        for i in 0..self.len {
            write!(f, "{}", self.get(i) as u8)?;
        }
        write!(f, "]")
    }
}

/// Key of a (possibly partitioned) Gecko entry: the block ID plus the
/// sub-entry index within the block's bitmap (0 when S=1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GeckoKey {
    /// The flash block this entry describes.
    pub block: BlockId,
    /// Which S-th slice of the block's bitmap this sub-entry covers.
    pub part: u16,
}

impl GeckoKey {
    /// Key of the first sub-entry of a block.
    pub fn first_of(block: BlockId) -> Self {
        GeckoKey { block, part: 0 }
    }

    /// Key of the last sub-entry of a block under partitioning factor `s`.
    pub fn last_of(block: BlockId, s: u32) -> Self {
        GeckoKey {
            block,
            part: (s - 1) as u16,
        }
    }
}

/// A Gecko entry (Figure 3): key, page-validity bitmap slice, erase flag.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GeckoEntry {
    /// Block ID + sub-entry index.
    pub key: GeckoKey,
    /// Validity bits for the B/S pages this sub-entry covers.
    pub bitmap: Bitmap,
    /// True if this entry records a block erase: all entries for the same
    /// key created earlier are obsolete.
    pub erase_flag: bool,
}

impl GeckoEntry {
    /// A blank entry for `key` with `bits`-wide bitmap.
    pub fn blank(key: GeckoKey, bits: u32) -> Self {
        GeckoEntry {
            key,
            bitmap: Bitmap::new(bits),
            erase_flag: false,
        }
    }

    /// An erase marker for `key` (Algorithm 2: blank bitmap, flag set).
    pub fn erase_marker(key: GeckoKey, bits: u32) -> Self {
        GeckoEntry {
            key,
            bitmap: Bitmap::new(bits),
            erase_flag: true,
        }
    }

    /// Resolve a collision between two entries with the same key during a
    /// merge (Algorithm 3). `newer` comes from the more recently created run.
    ///
    /// * If the newer entry has its erase flag set, the older entry was
    ///   created before the block's last erase and is discarded.
    /// * Otherwise the bitmaps are OR-merged, and the result inherits the
    ///   *older* entry's erase flag so that queries reaching it still stop
    ///   (everything in yet-older runs predates that erase).
    pub fn merge_collision(newer: &GeckoEntry, older: &GeckoEntry) -> GeckoEntry {
        if newer.erase_flag {
            newer.clone()
        } else {
            let mut bitmap = newer.bitmap.clone();
            bitmap.or_assign(&older.bitmap);
            GeckoEntry {
                key: newer.key,
                bitmap,
                erase_flag: older.erase_flag,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_clear() {
        let mut b = Bitmap::new(130);
        assert!(b.is_empty());
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.clear(64);
        assert!(!b.get(64));
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitmap_bounds_checked() {
        let b = Bitmap::new(8);
        let _ = b.get(8);
    }

    #[test]
    fn bitmap_or() {
        let mut a = Bitmap::new(8);
        let mut b = Bitmap::new(8);
        a.set(1);
        b.set(2);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(2));
        assert_eq!(a.count_ones(), 2);
    }

    #[test]
    fn keys_order_by_block_then_part() {
        let a = GeckoKey {
            block: BlockId(1),
            part: 3,
        };
        let b = GeckoKey {
            block: BlockId(2),
            part: 0,
        };
        let c = GeckoKey {
            block: BlockId(2),
            part: 1,
        };
        assert!(a < b && b < c);
        assert_eq!(
            GeckoKey::first_of(BlockId(2)),
            GeckoKey {
                block: BlockId(2),
                part: 0
            }
        );
        assert_eq!(
            GeckoKey::last_of(BlockId(2), 4),
            GeckoKey {
                block: BlockId(2),
                part: 3
            }
        );
    }

    #[test]
    fn collision_erase_flag_discards_older() {
        let key = GeckoKey::first_of(BlockId(5));
        let newer = GeckoEntry::erase_marker(key, 8);
        let mut older = GeckoEntry::blank(key, 8);
        older.bitmap.set(3);
        let merged = GeckoEntry::merge_collision(&newer, &older);
        assert!(merged.erase_flag);
        assert!(
            merged.bitmap.is_empty(),
            "older bits must be dropped after erase"
        );
    }

    #[test]
    fn collision_or_merges_and_keeps_older_erase_flag() {
        let key = GeckoKey::first_of(BlockId(5));
        let mut newer = GeckoEntry::blank(key, 8);
        newer.bitmap.set(1);
        let mut older = GeckoEntry::erase_marker(key, 8);
        older.bitmap.set(2);
        let merged = GeckoEntry::merge_collision(&newer, &older);
        assert!(merged.bitmap.get(1) && merged.bitmap.get(2));
        assert!(merged.erase_flag, "older erase flag must survive the merge");
    }
}
