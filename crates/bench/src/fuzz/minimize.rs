//! Failing-scenario minimization: shrink a counterexample before it is
//! committed to `fuzz/corpus/`, so regression entries stay readable.
//!
//! Classic ddmin-style reduction, specialised to scenarios: repeatedly try
//! to (a) drop contiguous chunks of trace ops at coarse-to-fine
//! granularity, (b) drop individual faults, and (c) clear the crash point —
//! keeping an edit only if the scenario *still fails*. Deterministic: the
//! candidate order is fixed, and replay itself is deterministic.

use super::scenario::Scenario;
use ftl_workloads::Trace;

/// Minimize `sc` under `still_fails` (true ⇔ the scenario reproduces the
/// failure). Returns the smallest failing scenario found within the step
/// budget; `sc` itself must fail on entry.
pub fn minimize(sc: &Scenario, mut still_fails: impl FnMut(&Scenario) -> bool) -> Scenario {
    let mut best = sc.clone();
    let mut budget = 400usize; // replay invocations, not wall-clock
                               // Drop trace chunks, halving the chunk size each pass.
    let mut chunk = (best.op_count() / 2).max(1);
    while chunk >= 1 && budget > 0 {
        let mut start = 0;
        let mut shrunk = false;
        while start < best.op_count() && budget > 0 {
            let end = (start + chunk).min(best.op_count());
            let mut cand = best.clone();
            let mut ops = cand.trace.ops().to_vec();
            ops.drain(start..end);
            cand.trace = Trace::from_ops(ops);
            // Crash points index ops: clamp into the shorter trace.
            if let Some(at) = cand.crash_after {
                if at >= cand.op_count() {
                    cand.crash_after = cand.op_count().checked_sub(1);
                }
            }
            budget -= 1;
            if still_fails(&cand) {
                best = cand;
                shrunk = true; // retry same offset at same granularity
            } else {
                start = end;
            }
        }
        if !shrunk {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
    }
    // Drop faults one at a time.
    let mut i = 0;
    while i < best.write_faults.len() && budget > 0 {
        let mut cand = best.clone();
        cand.write_faults.remove(i);
        budget -= 1;
        if still_fails(&cand) {
            best = cand;
        } else {
            i += 1;
        }
    }
    let mut i = 0;
    while i < best.erase_faults.len() && budget > 0 {
        let mut cand = best.clone();
        cand.erase_faults.remove(i);
        budget -= 1;
        if still_fails(&cand) {
            best = cand;
        } else {
            i += 1;
        }
    }
    // Clear the crash point if the failure does not need it.
    if best.crash_after.is_some() && budget > 0 {
        let mut cand = best.clone();
        cand.crash_after = None;
        if still_fails(&cand) {
            best = cand;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::Lpn;
    use ftl_workloads::WorkloadOp;

    #[test]
    fn minimizes_to_the_single_culprit_op() {
        // Synthetic failure: any scenario containing a write to L7 "fails".
        let mut ops = vec![WorkloadOp::Write(Lpn(1)); 200];
        ops[137] = WorkloadOp::Write(Lpn(7));
        let mut sc = Scenario::from_trace(Trace::from_ops(ops));
        sc.crash_after = Some(190);
        sc.write_faults.push((5, flash_sim::WriteFault::TornData));
        let small = minimize(&sc, |c| {
            c.trace.iter().any(|o| o == WorkloadOp::Write(Lpn(7)))
        });
        assert_eq!(small.op_count(), 1);
        assert_eq!(small.trace.ops()[0], WorkloadOp::Write(Lpn(7)));
        assert!(small.write_faults.is_empty());
        assert!(small.crash_after.is_none());
    }
}
