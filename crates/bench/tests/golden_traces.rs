//! Golden-trace corpus regression: every committed trace in
//! `traces/golden/` replays to **byte-identical** pinned statistics under
//! both the single-tree and 4-way-sharded validity store.
//!
//! A failure prints the per-metric delta (expected vs got, line by line),
//! so a behaviour change reads as "WA moved from 1.31 to 1.45 on
//! overwrite_storm under shard4", not as an opaque diff. Deliberate
//! changes re-bless the corpus:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p gecko-bench --test golden_traces
//! ```
//!
//! which regenerates the `.trace` files from their fixed-seed shapes (a
//! no-op unless a generator changed) and rewrites every `.expect` file.

use ftl_workloads::Trace;
use gecko_bench::golden::{golden_dir, replay_stats, write_corpus};

const SHARD_COUNTS: [u32; 2] = [1, 4];

fn blessing() -> bool {
    std::env::var_os("GOLDEN_BLESS").is_some_and(|v| v == "1")
}

/// Line-by-line comparison with a readable delta report.
fn diff_report(name: &str, shards: u32, expect: &str, got: &str) -> String {
    let mut out = format!("golden trace `{name}` diverged under shard{shards}:\n");
    let got_map: std::collections::BTreeMap<&str, &str> =
        got.lines().filter_map(|l| l.split_once(" = ")).collect();
    let expect_map: std::collections::BTreeMap<&str, &str> =
        expect.lines().filter_map(|l| l.split_once(" = ")).collect();
    for (k, want) in &expect_map {
        match got_map.get(k) {
            Some(g) if g == want => {}
            Some(g) => out.push_str(&format!("  {k}: expected {want}, got {g}\n")),
            None => out.push_str(&format!("  {k}: expected {want}, missing from replay\n")),
        }
    }
    for (k, g) in &got_map {
        if !expect_map.contains_key(k) {
            out.push_str(&format!("  {k}: unexpected new metric (= {g})\n"));
        }
    }
    out.push_str("re-bless with GOLDEN_BLESS=1 if this change is intended\n");
    out
}

#[test]
fn golden_corpus_replays_byte_identically() {
    let dir = golden_dir();
    if blessing() {
        write_corpus().expect("regenerate corpus traces");
    }
    let mut traces: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("read {dir:?}: {e} (corpus missing?)"))
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "trace"))
        .collect();
    traces.sort();
    assert!(
        traces.len() >= 6,
        "corpus floor is six scenarios, found {}",
        traces.len()
    );

    let mut failures = Vec::new();
    for path in &traces {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let trace = Trace::load(path).unwrap_or_else(|e| panic!("load {path:?}: {e}"));
        for shards in SHARD_COUNTS {
            let got = replay_stats(&trace, shards);
            let expect_path = dir.join(format!("{name}.shard{shards}.expect"));
            if blessing() {
                std::fs::write(&expect_path, &got)
                    .unwrap_or_else(|e| panic!("write {expect_path:?}: {e}"));
                continue;
            }
            let expect = std::fs::read_to_string(&expect_path).unwrap_or_else(|e| {
                panic!("read {expect_path:?}: {e} (bless with GOLDEN_BLESS=1)")
            });
            if got != expect {
                failures.push(diff_report(&name, shards, &expect, &got));
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

/// The corpus must keep covering the shapes the ISSUE pins: at least one
/// TRIM-exercising trace and one multi-tenant trace.
#[test]
fn golden_corpus_covers_trim_and_tenants() {
    let dir = golden_dir();
    if blessing() {
        write_corpus().expect("regenerate corpus traces");
    }
    let mut any_trim = false;
    let mut any_tenant = false;
    for e in std::fs::read_dir(&dir).expect("corpus dir") {
        let p = e.expect("entry").path();
        if p.extension().is_some_and(|x| x == "trace") {
            let t = Trace::load(&p).expect("parse");
            any_trim |= t.trims() > 0;
            any_tenant |= !t.tenant_ids().is_empty();
        }
    }
    assert!(any_trim, "corpus must include a TRIM scenario");
    assert!(any_tenant, "corpus must include a multi-tenant scenario");
}
