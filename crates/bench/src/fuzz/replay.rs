//! Deterministic scenario execution with an acknowledged-write oracle.
//!
//! Replay drives a [`Scenario`] against a real GeckoFTL engine on the tiny
//! simulation geometry, delivering the scenario's device faults and crash
//! points, and checks the robustness contract after every recovery and at
//! the end of the run:
//!
//! - every **acknowledged** write (the `write()` call returned before any
//!   crash) must read back its exact version;
//! - the one operation in flight at a mid-op power cut is *unacknowledged*:
//!   its logical page may read back either the old or the new value, and
//!   the interrupted write is re-issued after recovery (what a storage
//!   stack's request retry does);
//! - after the engine quiesces, the byte-level translation/validity state
//!   must pass [`crate::fuzz::oracle::audit_state`].
//!
//! The returned [`Fitness`] carries the worst-case signals the fuzzer
//! maximizes: max write latency, write amplification, recovery cost and
//! retired (permanently lost) blocks. All four are read from the unified
//! telemetry layer — the `HostWrite` span histogram, the `recovery.last_us`
//! registry gauge and registry counter deltas — instead of bespoke clock
//! arithmetic around each call. Telemetry is observational by construction
//! (it never touches the simulated clock or IO stats), so replays remain
//! bit-identical to the pre-telemetry harness; the corpus regression test
//! pins that.

use super::oracle::audit_state;
use super::scenario::Scenario;
use crate::fuzz::corpus_dir;
use flash_sim::{FaultPlan, FaultStats, FlashDevice, Geometry, Lpn, SpanKind};
use ftl_workloads::WorkloadOp;
use geckoftl_core::ftl::metrics::wa_total;
use geckoftl_core::ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend};
use geckoftl_core::gecko::GeckoConfig;
use geckoftl_core::recovery::gecko_recover;
use std::collections::{BTreeMap, BTreeSet};

/// Ring capacity for replay telemetry. Spans/IO events beyond this are
/// dropped oldest-first, which never affects fitness: the signals below come
/// from the histograms and the registry, not the ring.
const REPLAY_RING: usize = 1 << 12;

/// Worst-case signals of one replay, used as fuzzing feedback.
#[derive(Clone, Copy, Debug, Default)]
pub struct Fitness {
    /// Slowest single application write, in simulated µs.
    pub max_write_us: f64,
    /// Total write amplification over the run (δ = 10 read weighting).
    pub wa: f64,
    /// Simulated recovery time, in µs (0 when the run never crashed).
    pub recovery_us: f64,
    /// Blocks permanently retired by erase failures.
    pub retired_blocks: usize,
}

/// Result of replaying one scenario.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Whether every oracle check passed.
    pub ok: bool,
    /// First violated invariant, if any.
    pub failure: Option<String>,
    /// Worst-case feedback signals.
    pub fitness: Fitness,
    /// Whether a crash (boundary or mid-op) was exercised.
    pub crashed: bool,
    /// Faults the device actually delivered.
    pub faults: FaultStats,
}

impl Outcome {
    fn fail(msg: String, fitness: Fitness, crashed: bool, faults: FaultStats) -> Self {
        Outcome {
            ok: false,
            failure: Some(msg),
            fitness,
            crashed,
            faults,
        }
    }
}

fn engine_for(sc: &Scenario, shards: u32) -> FtlEngine {
    let geo = Geometry::tiny();
    let cfg = FtlConfig {
        // Clamp into what the tiny geometry's over-provisioning allows
        // (cache_entries must stay below half the spare pages).
        cache_entries: sc.cache_entries.clamp(16, 128),
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko_cfg = GeckoConfig {
        page_header_bytes: geo.page_bytes - 64, // force real flush/merge activity
        shards,
        ..GeckoConfig::paper_default(&geo)
    };
    let mut engine = FtlEngine::format(geo, cfg, ValidityBackend::gecko_for(geo, gecko_cfg));
    engine.telemetry_mut().enable(REPLAY_RING);
    engine
}

/// Worst `HostWrite` span seen by an engine's telemetry, in µs. The span
/// duration is the same clock subtraction the harness used to perform
/// around each `write()` call, so the histogram max is it, bit for bit.
fn host_write_max(engine: &FtlEngine) -> f64 {
    engine
        .telemetry()
        .span_hist(SpanKind::HostWrite)
        .map_or(0.0, |h| h.max())
}

fn recover_engine(
    mut dev: FlashDevice,
    cfg: FtlConfig,
    gecko_cfg: GeckoConfig,
) -> (FtlEngine, f64) {
    // Recovery and post-crash execution run fault-free: the plan's faults
    // target the pre-crash history only (crash images already carry an
    // empty plan; boundary crashes clear it here).
    dev.set_fault_plan(FaultPlan::default());
    let (engine, _report) = gecko_recover(dev, cfg, gecko_cfg);
    // The registry gauge mirrors `RecoveryReport::total_secs() * 1e6`
    // exactly: each step span's duration is the step's `sim_us` subtraction,
    // accumulated in report order.
    let recovery_us = engine.metrics().gauge("recovery.last_us");
    (engine, recovery_us)
}

/// Verify every acknowledged write against the recovered engine, treating
/// `inflight` (the op interrupted mid-flight, if any) as allowed to hold
/// either its old value or its new one — `Some(v)` for a write, `None` for
/// a TRIM. Acknowledged trims (`trimmed`, minus pages rewritten since) must
/// stay unmapped: a durable TRIM that resurrects after a crash is a bug.
fn verify_recovered(
    engine: &mut FtlEngine,
    oracle: &BTreeMap<u32, u64>,
    trimmed: &BTreeSet<u32>,
    inflight: Option<(Lpn, Option<u64>)>,
) -> Result<(), String> {
    for (&l, &want) in oracle {
        if inflight.is_some_and(|(il, _)| il.0 == l) {
            continue;
        }
        let got = engine.read(Lpn(l));
        if got != Some(want) {
            return Err(format!(
                "post-recovery read of L{l}: got {got:?}, want Some({want})"
            ));
        }
    }
    for &l in trimmed {
        if inflight.is_some_and(|(il, _)| il.0 == l) {
            continue;
        }
        let got = engine.read(Lpn(l));
        if got.is_some() {
            return Err(format!(
                "post-recovery read of trimmed L{l}: got {got:?}, want None (resurrection)"
            ));
        }
    }
    if let Some((lpn, new_version)) = inflight {
        let old = oracle.get(&lpn.0).copied();
        let got = engine.read(lpn);
        if got != old && got != new_version {
            return Err(format!(
                "in-flight L{} must read old ({old:?}) or new ({new_version:?}), got {got:?}",
                lpn.0
            ));
        }
    }
    Ok(())
}

/// Replay one scenario end-to-end. Deterministic: same scenario, same
/// outcome, bit for bit.
pub fn replay(sc: &Scenario) -> Outcome {
    replay_with_shards(sc, 1)
}

/// [`replay`] against a validity store sharded `shards` ways (1 = the
/// single-tree layout). The oracle contract is shard-count-independent, so
/// the corpus doubles as a crash-equivalence suite for the sharded store.
pub fn replay_with_shards(sc: &Scenario, shards: u32) -> Outcome {
    let mut engine = engine_for(sc, shards);
    let logical = engine.geometry().logical_pages() as u32;
    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko_config().expect("gecko backend");
    engine.with_raw_parts(|dev, _| dev.set_fault_plan(sc.fault_plan()));
    let start_metrics = engine.metrics();

    let mut oracle: BTreeMap<u32, u64> = BTreeMap::new();
    let mut trimmed: BTreeSet<u32> = BTreeSet::new();
    let mut version = 0u64;
    let mut fitness = Fitness::default();
    let mut crashed = false;
    let mut faults = FaultStats::default();

    for (i, op) in sc.trace.iter().enumerate() {
        // Scheduled power cut at this op boundary.
        if !crashed && sc.crash_after == Some(i) {
            crashed = true;
            faults = engine.device().fault_stats();
            let dev = engine.crash();
            let (rec, rec_us) = recover_engine(dev, cfg, gecko_cfg);
            engine = rec;
            fitness.recovery_us = rec_us;
            if let Err(e) = verify_recovered(&mut engine, &oracle, &trimmed, None) {
                return Outcome::fail(
                    format!("boundary crash before op {i}: {e}"),
                    fitness,
                    crashed,
                    faults,
                );
            }
        }
        // Execute the op on the live engine.
        let mut this_op: Option<(Lpn, Option<u64>)> = None;
        match op {
            WorkloadOp::Write(l) => {
                let lpn = Lpn(l.0 % logical);
                version += 1;
                // Latency is captured by the engine's HostWrite span; the
                // histogram max is folded into the fitness at engine
                // hand-offs and at the end of the run.
                engine.write(lpn, version);
                this_op = Some((lpn, Some(version)));
            }
            WorkloadOp::Trim(l) => {
                let lpn = Lpn(l.0 % logical);
                engine.trim(lpn);
                this_op = Some((lpn, None));
            }
            WorkloadOp::Read(l) => {
                let lpn = Lpn(l.0 % logical);
                let got = engine.read(lpn);
                let want = oracle.get(&lpn.0).copied();
                if got != want {
                    return Outcome::fail(
                        format!("op {i}: read L{} got {got:?}, want {want:?}", lpn.0),
                        fitness,
                        crashed,
                        engine.device().fault_stats(),
                    );
                }
            }
            WorkloadOp::Idle(ticks) => {
                for _ in 0..ticks {
                    engine.idle_tick();
                }
            }
        }
        // A torn-write or mid-erase fault fired during this op: the live
        // engine's history past the fault never happened. Abandon it and
        // recover from the crash image. This op is unacknowledged.
        let image = engine.with_raw_parts(|dev, _| dev.take_crash_image());
        if let Some(image) = image {
            crashed = true;
            faults = engine.device().fault_stats();
            // The image's telemetry is the pre-crash prefix: it misses the
            // doomed op's own span (recorded on the live engine after the
            // image was captured), so fold the live maximum in first.
            fitness.max_write_us = fitness.max_write_us.max(host_write_max(&engine));
            drop(engine);
            let (rec, rec_us) = recover_engine(image, cfg, gecko_cfg);
            engine = rec;
            fitness.recovery_us = fitness.recovery_us.max(rec_us);
            if let Err(e) = verify_recovered(&mut engine, &oracle, &trimmed, this_op) {
                return Outcome::fail(
                    format!("crash image at op {i}: {e}"),
                    fitness,
                    crashed,
                    faults,
                );
            }
            // Re-issue the interrupted op, as a retrying host would. The
            // retry is not a measured host op (it never was), so its span
            // is suppressed.
            if let Some((lpn, v)) = this_op {
                engine.telemetry_mut().set_enabled(false);
                match v {
                    Some(v) => engine.write(lpn, v),
                    None => {
                        engine.trim(lpn);
                    }
                }
                engine.telemetry_mut().set_enabled(true);
            }
        }
        // Acknowledged (or re-issued) now.
        match this_op {
            Some((lpn, Some(v))) => {
                oracle.insert(lpn.0, v);
                trimmed.remove(&lpn.0);
            }
            Some((lpn, None)) => {
                oracle.remove(&lpn.0);
                trimmed.insert(lpn.0);
            }
            None => {}
        }
    }

    // Quiesce, then run the byte-level state audit and the final read-back.
    engine.shutdown_clean();
    if !crashed {
        faults = engine.device().fault_stats();
    }
    let end_metrics = engine.metrics();
    fitness.max_write_us = fitness.max_write_us.max(host_write_max(&engine));
    fitness.wa = wa_total(&end_metrics.since(&start_metrics), 10.0);
    fitness.retired_blocks = end_metrics.counter("bm.retired_blocks") as usize;
    for (&l, &want) in &oracle {
        let got = engine.read(Lpn(l));
        if got != Some(want) {
            return Outcome::fail(
                format!("final read of L{l}: got {got:?}, want Some({want})"),
                fitness,
                crashed,
                faults,
            );
        }
    }
    for &l in &trimmed {
        let got = engine.read(Lpn(l));
        if got.is_some() {
            return Outcome::fail(
                format!("final read of trimmed L{l}: got {got:?}, want None"),
                fitness,
                crashed,
                faults,
            );
        }
    }
    if !audit_state(&mut engine) {
        return Outcome::fail(
            "translation/validity state audit failed".into(),
            fitness,
            crashed,
            faults,
        );
    }
    Outcome {
        ok: true,
        failure: None,
        fitness,
        crashed,
        faults,
    }
}

/// Replay every committed corpus scenario; returns `(file name, outcome)`
/// pairs. Used by the corpus regression test and the `fuzz` experiment.
pub fn replay_corpus() -> Vec<(String, Outcome)> {
    replay_corpus_with_shards(1)
}

/// [`replay_corpus`] with a sharded validity store.
pub fn replay_corpus_with_shards(shards: u32) -> Vec<(String, Outcome)> {
    let dir = corpus_dir();
    let mut entries: Vec<_> = match std::fs::read_dir(&dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "scenario"))
            .collect(),
        Err(_) => Vec::new(),
    };
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read corpus entry {path:?}: {e}"));
            let sc = Scenario::from_text(&text)
                .unwrap_or_else(|e| panic!("parse corpus entry {path:?}: {e}"));
            (name, replay_with_shards(&sc, shards))
        })
        .collect()
}
