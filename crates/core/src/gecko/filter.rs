//! Per-run blocked Bloom filters for the GC-query fast path.
//!
//! Table 1 (§3) bounds a GC query at one flash read *per run*; the seed
//! implementation paid that worst case on every query. A run, however, holds
//! a sorted snapshot of whichever keys happened to be dirty when it was
//! written — most runs do not contain most keys, so most of those reads
//! return nothing. A small RAM-resident filter per run lets a query skip
//! runs that *cannot* contain the queried `(block, part)` key, turning the
//! paper's worst-case bound into the common-case cost only when the run
//! really holds information about the victim block.
//!
//! The filter is *blocked* (one cache line of 512 bits per probe, as in
//! Putze, Sanders & Singler's cache-efficient variant): a first hash picks
//! the 64-byte block, and all `k` probe bits land inside it, so a negative
//! lookup costs a single cache miss. Filters are built while a run is being
//! written (the keys are streaming through anyway), live only in RAM, and
//! are deliberately **not** persisted: recovery recreates runs with no
//! filter (`None` at the call sites), which degrades queries back to the
//! paper's one-probe-per-run bound — still correct — until merges rebuild
//! them.

use crate::gecko::entry::GeckoKey;

/// Bits per cache-line block (8 × u64 = one 64-byte cache line).
const BLOCK_BITS: usize = 512;
const WORDS_PER_BLOCK: usize = BLOCK_BITS / 64;

/// A blocked Bloom filter over [`GeckoKey`]s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunFilter {
    words: Box<[u64]>,
    /// Number of cache-line blocks (power of two).
    num_blocks: u32,
    /// Probe bits per key.
    k: u32,
}

/// SplitMix64 — cheap, well-mixed; the key space is tiny (block id + part)
/// so avalanche quality matters more than speed here.
#[inline]
fn mix(key: GeckoKey) -> u64 {
    let raw = ((key.block.0 as u64) << 16) | key.part as u64;
    let mut z = raw.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl RunFilter {
    /// A filter sized for `expected_keys` at `bits_per_key` bits each.
    /// `bits_per_key` must be non-zero (0 means "no filter" and is handled
    /// by the caller keeping `Option<RunFilter>` as `None`).
    pub fn new(expected_keys: usize, bits_per_key: u32) -> Self {
        assert!(bits_per_key > 0, "a 0-bit filter cannot exist; use None");
        let want_bits = (expected_keys.max(1) as u64) * bits_per_key as u64;
        let num_blocks = want_bits.div_ceil(BLOCK_BITS as u64).next_power_of_two() as u32;
        // k ≈ ln2 · bits-per-key, the classic optimum, clamped to [1, 8]:
        // beyond 8 probes the blocked layout saturates single cache lines.
        let k = ((bits_per_key as f64 * core::f64::consts::LN_2).round() as u32).clamp(1, 8);
        RunFilter {
            words: vec![0u64; num_blocks as usize * WORDS_PER_BLOCK].into_boxed_slice(),
            num_blocks,
            k,
        }
    }

    #[inline]
    fn probes(&self, key: GeckoKey) -> (usize, u64, u64) {
        let h = mix(key);
        // High bits pick the block; two derived halves drive double hashing
        // within the block's 512 bits.
        let block = (h >> 40) as u32 & (self.num_blocks - 1);
        let h1 = h & 0x1FF;
        let h2 = (h >> 9) & 0x1FF;
        (block as usize * WORDS_PER_BLOCK, h1, h2 | 1)
    }

    /// Add a key.
    pub fn insert(&mut self, key: GeckoKey) {
        let (base, h1, h2) = self.probes(key);
        for i in 0..self.k as u64 {
            let bit = (h1 + i * h2) % BLOCK_BITS as u64;
            self.words[base + (bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// Whether the key *may* be present (false ⇒ definitely absent).
    #[inline]
    pub fn may_contain(&self, key: GeckoKey) -> bool {
        let (base, h1, h2) = self.probes(key);
        for i in 0..self.k as u64 {
            let bit = (h1 + i * h2) % BLOCK_BITS as u64;
            if self.words[base + (bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// RAM footprint in bytes (Appendix-B style accounting).
    pub fn ram_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::BlockId;

    fn key(b: u32, p: u16) -> GeckoKey {
        GeckoKey {
            block: BlockId(b),
            part: p,
        }
    }

    #[test]
    fn no_false_negatives() {
        let mut f = RunFilter::new(1000, 8);
        for b in 0..250u32 {
            for p in 0..4u16 {
                f.insert(key(b, p));
            }
        }
        for b in 0..250u32 {
            for p in 0..4u16 {
                assert!(f.may_contain(key(b, p)), "false negative at ({b},{p})");
            }
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable() {
        let mut f = RunFilter::new(1000, 8);
        for b in 0..1000u32 {
            f.insert(key(b, 0));
        }
        let fps = (1000..21_000u32)
            .filter(|b| f.may_contain(key(*b, 0)))
            .count();
        // 8 bits/key targets ≈2–3 % for a blocked filter; allow slack.
        let rate = fps as f64 / 20_000.0;
        assert!(rate < 0.08, "false positive rate {rate}");
    }

    #[test]
    fn sparse_filters_reject_most_keys() {
        let mut f = RunFilter::new(8, 8);
        f.insert(key(3, 1));
        assert!(f.may_contain(key(3, 1)));
        let hits = (0..256u32).filter(|b| f.may_contain(key(*b, 0))).count();
        assert!(
            hits < 32,
            "sparse filter should reject almost everything, hit {hits}"
        );
    }

    #[test]
    fn sizing_rounds_to_power_of_two_blocks() {
        for keys in [1usize, 7, 64, 500, 4096] {
            for bpk in [1u32, 4, 8, 16] {
                let f = RunFilter::new(keys, bpk);
                assert!(f.num_blocks.is_power_of_two());
                assert!(f.ram_bytes() as usize >= keys * bpk as usize / 8 / 2);
            }
        }
    }
}
