//! Flash-resident runs and their RAM-resident run directories (paper §3).
//!
//! A *run* is a sorted, immutable sequence of Gecko entries spanning one or
//! more flash pages. The RAM-resident *run directory* records, for every page
//! of the run, its physical location and the key range it covers, so a GC
//! query reads at most one page per run (Figure 5).
//!
//! For recovery (Appendix C.1), each run is self-describing in flash:
//!
//! * the **first** page carries a preamble (run ID, level, creation
//!   timestamp, and the IDs of the runs it was merged from);
//! * **every** page carries a header with the run ID and page index;
//! * the **last** page carries a postamble: a copy of the run directory.
//!
//! These are modelled as in-page metadata (a few dozen bytes accounted via
//! [`crate::gecko::GeckoConfig::page_header_bytes`]), so a buffer flush still
//! costs exactly one flash write.

use crate::gecko::entry::{GeckoEntry, GeckoKey};
use crate::gecko::filter::RunFilter;
use flash_sim::Ppn;

/// Unique identifier of a run, assigned at creation and never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RunId(pub u64);

/// Run-level metadata, persisted in the preamble of the run's first page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunMeta {
    /// Unique run identifier.
    pub id: RunId,
    /// Level the run was placed at when created.
    pub level: u32,
    /// Device sequence number at creation; recovery uses it to order runs.
    pub created_seq: u64,
    /// The buffer-flush watermark this run certifies: recovery may assume
    /// that every validity report buffered before this sequence number is
    /// durable in some recoverable run. Recovery derives the last
    /// buffer-flush time (Appendix C.2) as the max watermark over live
    /// runs, and replays only reports newer than it (steps 4a/4b).
    ///
    /// The stamp must therefore be conservative about *in-flight* state:
    ///
    /// * A buffer flush emits its chunks as separate single-page runs, and
    ///   only the **final** chunk — the one that empties the buffer — may
    ///   carry its own `created_seq`. Earlier chunks carry the watermark
    ///   from *before* the flush began: when one of them is on flash but
    ///   the buffer tail is not yet written, a crash must roll the
    ///   threshold back far enough for recovery to re-derive the tail.
    /// * A merge output carries the owning tree's `last_flush_seq` at fold
    ///   time. With incremental merging the output is sealed long after
    ///   the flush that scheduled it — possibly after further erases and
    ///   invalidations entered the RAM buffer — so its own `created_seq`
    ///   would overclaim.
    pub flush_seq: u64,
    /// IDs of the runs this run replaced (empty for buffer flushes).
    /// Recovery treats every run named here as dead: its entries live on
    /// in this (sealed, hence durable) output.
    pub merged_from: Vec<RunId>,
    /// Lower bound of this run's *data-age span*: the oldest
    /// `supersedes_since` over its transitive merge inputs (its own
    /// `created_seq` for buffer flushes). Together with
    /// [`RunMeta::supersedes_upto`] it describes exactly which slice of
    /// validity history this run carries, so recovery can identify
    /// merged-away leftovers even when intermediate superseders have
    /// already been erased from flash (a `merged_from` chain alone breaks
    /// in that case), and queries can order runs by data age.
    pub supersedes_since: u64,
    /// Upper bound of this run's *data-age span*: the newest
    /// `supersedes_upto` over its transitive merge inputs (its own
    /// `created_seq` for buffer flushes) — i.e. the sequence number of the
    /// newest validity data folded into this run.
    ///
    /// Two load-bearing properties, both enforced by the merge planner's
    /// span-contiguity rule ([`crate::gecko::scheduler`] invariant 4):
    ///
    /// * **Query order.** Runs are traversed newest-span-first. With
    ///   several merge jobs in flight per tree, levels alone no longer
    ///   order data age (a late-planned job over fresh flushes can install
    ///   deeper than an early-planned job over old runs), and
    ///   `created_seq` alone never did.
    /// * **Recovery liveness.** Live runs' spans are pairwise disjoint and
    ///   merging is laminar (an output's span is the union of its inputs'),
    ///   so after a crash a candidate run is superseded **iff** its span is
    ///   strictly contained in a live candidate's span. A run created after
    ///   `supersedes_upto` was reserved cannot have been folded into this
    ///   one, which keeps flushes that land while a merge is in flight
    ///   alive across a crash.
    pub supersedes_upto: u64,
}

impl RunMeta {
    /// The run's closed data-age span `[supersedes_since, supersedes_upto]`.
    pub fn span(&self) -> (u64, u64) {
        (self.supersedes_since, self.supersedes_upto)
    }

    /// Sort key for newest-data-first traversals: spans of live runs are
    /// pairwise disjoint, so descending `supersedes_upto` is a total data-age
    /// order; `created_seq` breaks ties for robustness only.
    pub fn data_age(&self) -> (u64, u64) {
        (self.supersedes_upto, self.created_seq)
    }
}

/// One run-directory entry: a page of the run and the key range it holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunDirEntry {
    /// Physical location of the page.
    pub ppn: Ppn,
    /// Smallest key stored on the page.
    pub first: GeckoKey,
    /// Largest key stored on the page.
    pub last: GeckoKey,
}

/// A live run: metadata plus its RAM-resident directory.
#[derive(Clone, Debug)]
pub struct Run {
    /// Preamble metadata.
    pub meta: RunMeta,
    /// The run directory: one entry per flash page, in key order.
    pub pages: Vec<RunDirEntry>,
    /// Total number of Gecko entries stored in the run.
    pub entry_count: u64,
    /// RAM-resident blocked Bloom filter over the run's keys, built at
    /// flush/merge time. `None` for recovered runs (the filter is not
    /// persisted — see [`crate::gecko::filter`]) and when
    /// [`crate::gecko::GeckoConfig::bloom_bits_per_key`] is 0; queries then
    /// fall back to the paper's probe-every-run bound.
    pub filter: Option<RunFilter>,
}

impl Run {
    /// Number of flash pages the run occupies.
    pub fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Whether the run may contain `key` (false ⇒ definitely absent).
    /// Runs without a filter conservatively answer `true`.
    #[inline]
    pub fn may_contain(&self, key: GeckoKey) -> bool {
        self.filter.as_ref().is_none_or(|f| f.may_contain(key))
    }

    /// RAM used by the run's Bloom filter, in bytes.
    pub fn filter_bytes(&self) -> u64 {
        self.filter.as_ref().map_or(0, RunFilter::ram_bytes)
    }

    /// Directory entries for pages whose key range intersects `[lo, hi]`,
    /// found by binary search over the fence pointers (pages are in key
    /// order, so the overlap set is one contiguous slice).
    pub fn pages_overlapping(
        &self,
        lo: GeckoKey,
        hi: GeckoKey,
    ) -> impl Iterator<Item = &RunDirEntry> {
        let start = self.pages.partition_point(|p| p.last < lo);
        let end = self.pages.partition_point(|p| p.first <= hi);
        self.pages[start..end.max(start)].iter()
    }

    /// The unique page that can hold `key`, via binary search over the
    /// fence pointers (keys are unique within a run, so at most one page
    /// qualifies). `None` if the key falls outside every page's range.
    #[inline]
    pub fn page_for(&self, key: GeckoKey) -> Option<&RunDirEntry> {
        let i = self.pages.partition_point(|p| p.last < key);
        self.pages.get(i).filter(|p| p.first <= key)
    }
}

/// The payload stored in each flash page of a run (behind
/// [`flash_sim::PageData::Blob`]).
#[derive(Clone, Debug)]
pub struct GeckoPagePayload {
    /// Run this page belongs to (in-page header).
    pub run_id: RunId,
    /// Position of this page within the run (in-page header).
    pub page_index: u32,
    /// The sorted Gecko entries stored on this page.
    pub entries: Vec<GeckoEntry>,
    /// Present on the first page only: the run preamble.
    pub preamble: Option<RunMeta>,
    /// Present on the last page only: the run postamble.
    pub postamble: Option<Postamble>,
}

/// Postamble: a persistent copy of the run directory (Appendix C.1).
///
/// The last page cannot know its own physical address before being written,
/// so its slot in `ppns` is a placeholder that recovery fills in with the
/// address it found the postamble at.
#[derive(Clone, Debug)]
pub struct Postamble {
    /// Total pages in the run; recovery discards runs found with fewer
    /// pages (partially-written merge output).
    pub total_pages: u32,
    /// Key range of every page, in page order.
    pub ranges: Vec<(GeckoKey, GeckoKey)>,
    /// Physical addresses of pages `0 .. total_pages-1` (the final slot is
    /// meaningless; see type-level docs).
    pub ppns: Vec<Ppn>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::BlockId;

    fn key(b: u32, p: u16) -> GeckoKey {
        GeckoKey {
            block: BlockId(b),
            part: p,
        }
    }

    fn run_with_pages(ranges: &[(GeckoKey, GeckoKey)]) -> Run {
        Run {
            meta: RunMeta {
                id: RunId(1),
                level: 0,
                created_seq: 1,
                flush_seq: 1,
                merged_from: vec![],
                supersedes_since: 1,
                supersedes_upto: 1,
            },
            pages: ranges
                .iter()
                .enumerate()
                .map(|(i, (f, l))| RunDirEntry {
                    ppn: Ppn(i as u32),
                    first: *f,
                    last: *l,
                })
                .collect(),
            entry_count: 0,
            filter: None,
        }
    }

    #[test]
    fn overlap_selects_only_covering_pages() {
        let run = run_with_pages(&[
            (key(0, 0), key(9, 3)),
            (key(10, 0), key(19, 3)),
            (key(20, 0), key(29, 3)),
        ]);
        let hits: Vec<_> = run.pages_overlapping(key(12, 0), key(12, 3)).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].ppn, Ppn(1));
        // Query range straddling two pages.
        let hits: Vec<_> = run.pages_overlapping(key(19, 0), key(20, 3)).collect();
        assert_eq!(hits.len(), 2);
        // No overlap.
        assert_eq!(run.pages_overlapping(key(40, 0), key(40, 3)).count(), 0);
    }

    #[test]
    fn fence_search_agrees_with_linear_scan() {
        let run = run_with_pages(&[
            (key(0, 0), key(9, 3)),
            (key(10, 0), key(19, 3)),
            (key(20, 0), key(29, 3)),
            (key(40, 0), key(49, 3)),
        ]);
        for b in 0..60u32 {
            for p in 0..4u16 {
                let k = key(b, p);
                let linear = run.pages.iter().find(|pg| pg.first <= k && k <= pg.last);
                assert_eq!(run.page_for(k), linear, "page_for({b},{p})");
                // Overlap with a one-key range must agree too.
                let by_range: Vec<_> = run.pages_overlapping(k, k).collect();
                assert_eq!(by_range.len(), linear.is_some() as usize);
            }
        }
        // Gap between pages: key 35 belongs to no page.
        assert_eq!(run.page_for(key(35, 0)), None);
    }

    #[test]
    fn filterless_run_conservatively_may_contain() {
        let run = run_with_pages(&[(key(0, 0), key(9, 3))]);
        assert!(run.may_contain(key(99, 0)));
        assert_eq!(run.filter_bytes(), 0);
    }
}
