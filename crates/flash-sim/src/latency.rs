//! Latency model and simulated clock.
//!
//! The paper's evaluation (§5) uses a fixed asymmetric cost model: a page
//! read takes ≈100 µs, a page write ≈1 ms, and a spare-area read ≈3 µs
//! (a spare area is 32× smaller than a page, so 100/32 ≈ 3 µs). The ratio
//! between a page write and a page read is called `δ` and defaults to 10.

/// Fixed per-operation latencies, in microseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LatencyModel {
    /// Latency of reading one flash page.
    pub page_read_us: f64,
    /// Latency of writing (programming) one flash page.
    pub page_write_us: f64,
    /// Latency of reading one spare area.
    pub spare_read_us: f64,
    /// Latency of erasing one flash block.
    pub erase_us: f64,
}

impl LatencyModel {
    /// The paper's model: 100 µs read, 1 ms write, 3 µs spare read, 2 ms erase.
    pub fn paper() -> Self {
        LatencyModel {
            page_read_us: 100.0,
            page_write_us: 1000.0,
            spare_read_us: 3.0,
            erase_us: 2000.0,
        }
    }

    /// `δ`: the ratio between a page write and a page read.
    pub fn delta(&self) -> f64 {
        self.page_write_us / self.page_read_us
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::paper()
    }
}

/// A simulated clock: accumulates the latency of every device operation.
///
/// Time never advances by itself; only device IO advances it. This is the
/// standard discrete-simulation approach the paper's infrastructure uses to
/// report recovery times and throughput without real hardware.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimClock {
    now_us: f64,
}

impl SimClock {
    /// Current simulated time in microseconds since device power-on.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// Current simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now_us / 1e6
    }

    /// Advance the clock by `us` microseconds.
    pub fn advance_us(&mut self, us: f64) {
        self.now_us += us;
    }

    /// Reset to time zero (used when re-basing measurements).
    pub fn reset(&mut self) {
        self.now_us = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latency_model() {
        let m = LatencyModel::paper();
        assert_eq!(m.delta(), 10.0);
        assert!((m.spare_read_us - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn clock_accumulates() {
        let mut c = SimClock::default();
        c.advance_us(100.0);
        c.advance_us(1000.0);
        assert!((c.now_us() - 1100.0).abs() < 1e-9);
        assert!((c.now_secs() - 0.0011).abs() < 1e-12);
        c.reset();
        assert_eq!(c.now_us(), 0.0);
    }
}
