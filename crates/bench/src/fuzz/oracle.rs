//! Byte-level translation/validity oracle, shared by the merge-latency A/B
//! and the fuzzing harness.

use flash_sim::{Lpn, PageOffset, SpareInfo};
use geckoftl_core::ftl::FtlEngine;

/// Audit the engine's full flash state after it quiesces (run it after
/// `shutdown_clean`, when every before-image has been identified): every
/// written user page must be marked invalid by the validity store **iff**
/// it is not the current translation target of the logical page its spare
/// area names. Torn pages — a data or spare area lost to a power cut — can
/// never be a translation target, so they must be marked invalid.
///
/// Returns `false` (and prints the offending page) on the first mismatch.
pub fn audit_state(engine: &mut FtlEngine) -> bool {
    let geo = engine.geometry();
    for block in geo.iter_blocks() {
        if engine
            .block_manager()
            .group_of(block)
            .is_none_or(|g| g.is_metadata())
        {
            continue;
        }
        let written = engine.device().written_pages(block);
        // Collect per-page identity first: `debug_validity` and
        // `current_mapping` need `&mut` engine access below.
        let pages: Vec<(Option<Lpn>, bool)> = (0..written)
            .map(|off| {
                let ppn = geo.ppn(block, PageOffset(off));
                let lpn = engine.device().peek_spare(ppn).and_then(|s| match s.info {
                    SpareInfo::User { lpn, .. } => Some(lpn),
                    _ => None,
                });
                let has_data = engine.device().peek_page(ppn).is_some();
                (lpn, has_data)
            })
            .collect();
        let invalid = engine.debug_validity(block);
        for (off, &(lpn, has_data)) in pages.iter().enumerate() {
            let ppn = geo.ppn(block, PageOffset(off as u32));
            let torn = lpn.is_none() || !has_data;
            if torn {
                // A non-user spare inside a user block is a firmware bug,
                // not a torn page: fail loudly.
                if engine.device().peek_spare(ppn).is_some() && has_data {
                    eprintln!("   oracle: non-user page in user {block:?} at offset {off}");
                    return false;
                }
                if !invalid.get(off as u32) {
                    eprintln!("   oracle mismatch: torn page {block:?}/{off} not marked invalid");
                    return false;
                }
                continue;
            }
            let lpn = lpn.expect("checked above");
            let live = engine.current_mapping(lpn) == Some(ppn);
            if live == invalid.get(off as u32) {
                eprintln!(
                    "   oracle mismatch: {block:?} page {off} (L{}) live={live} invalid={}",
                    lpn.0,
                    invalid.get(off as u32)
                );
                return false;
            }
        }
    }
    true
}
