//! Workspace-level integration tests exercising the public facade: every
//! FTL built from `ftl_baselines` running workloads from `ftl_workloads` on
//! the `flash_sim` substrate, with results cross-checked between crates.

use geckoftl::flash_sim::{Geometry, Lpn};
use geckoftl::ftl_baselines::{build, BaselineKind};
use geckoftl::ftl_models::{ram_model, FtlName};
use geckoftl::ftl_workloads::{HotCold, Trace, Uniform, WorkloadOp, Zipfian};
use geckoftl::geckoftl_core::recovery::gecko_recover;
use std::collections::HashMap;

fn geo() -> Geometry {
    Geometry::tiny()
}

fn replay_with_oracle(kind: BaselineKind, trace: &Trace) {
    let mut ftl = build(kind, geo());
    let mut oracle: HashMap<u32, u64> = HashMap::new();
    let mut version = 0u64;
    for op in trace.iter() {
        match op {
            WorkloadOp::Write(lpn) => {
                version += 1;
                ftl.write(lpn, version);
                oracle.insert(lpn.0, version);
            }
            WorkloadOp::Idle(_) => {}
            // The generators driven here never emit TRIMs; exhaustiveness only.
            WorkloadOp::Trim(_) => {}
            WorkloadOp::Read(lpn) => {
                assert_eq!(
                    ftl.read(lpn),
                    oracle.get(&lpn.0).copied(),
                    "{}: read of L{}",
                    kind.name(),
                    lpn.0
                );
            }
        }
    }
    for (&lpn, &want) in &oracle {
        assert_eq!(
            ftl.read(Lpn(lpn)),
            Some(want),
            "{}: final L{lpn}",
            kind.name()
        );
    }
}

#[test]
fn all_ftls_agree_on_a_zipfian_trace() {
    let logical = geo().logical_pages();
    let trace = Trace::record(Zipfian::new(5, logical, 0.9), 5000);
    for kind in BaselineKind::ALL {
        replay_with_oracle(kind, &trace);
    }
}

#[test]
fn all_ftls_agree_on_a_hot_cold_trace() {
    let logical = geo().logical_pages();
    let trace = Trace::record(HotCold::new(6, logical, 0.1, 0.9), 5000);
    for kind in [
        BaselineKind::GeckoFtl,
        BaselineKind::MuFtl,
        BaselineKind::IbFtl,
    ] {
        replay_with_oracle(kind, &trace);
    }
}

#[test]
fn geckoftl_crash_recovery_through_the_facade() {
    let g = geo();
    let mut ftl = build(BaselineKind::GeckoFtl, g);
    let mut oracle: HashMap<u32, u64> = HashMap::new();
    let logical = g.logical_pages();
    let mut version = 0;
    for op in Uniform::new(12, logical).take(4000) {
        let WorkloadOp::Write(lpn) = op else { continue };
        version += 1;
        ftl.write(lpn, version);
        oracle.insert(lpn.0, version);
    }
    let cfg = ftl.config();
    let gecko_cfg = ftl.backend().gecko().expect("gecko").config();
    let dev = ftl.crash();
    let (mut rec, report) = gecko_recover(dev, cfg, gecko_cfg);
    assert!(report.total_secs() > 0.0);
    for (&lpn, &want) in &oracle {
        assert_eq!(rec.read(Lpn(lpn)), Some(want));
    }
}

#[test]
fn empirical_ram_report_matches_analytical_model_shape() {
    // The engine's self-reported RAM accounting and the standalone model
    // must agree on the structures they share.
    let g = Geometry::new(1 << 10, 1 << 7, 1 << 12, 0.7);
    let mut ftl = build(BaselineKind::GeckoFtl, g);
    for lpn in 0..g.logical_pages() as u32 {
        ftl.write(Lpn(lpn), 1);
    }
    let emp = ftl.ram_report();
    let model = ram_model(FtlName::GeckoFtl, &g, ftl.config().cache_entries as u64);
    assert_eq!(emp.gmd, model.component("GMD"));
    assert_eq!(emp.bvc, model.component("BVC"));
    assert_eq!(emp.cache, model.component("LRU cache"));
    // Gecko's live structure stays within the model's 2× space bound.
    let modelled = model.component("run directories") + model.component("gecko buffers");
    assert!(
        emp.validity <= 2 * modelled.max(1),
        "empirical gecko RAM {} vs model {}",
        emp.validity,
        modelled
    );
}

#[test]
fn mixed_read_write_workload_accounts_read_amplification() {
    let g = geo();
    let mut ftl = build(BaselineKind::GeckoFtl, g);
    let logical = g.logical_pages();
    for lpn in 0..logical as u32 {
        ftl.write(Lpn(lpn), 1);
    }
    let snap = ftl.device().stats().snapshot();
    let gen = geckoftl::ftl_workloads::Mixed::new(9, Uniform::new(10, logical), 0.5, logical);
    let mut version = 2;
    for op in gen.take(4000) {
        match op {
            WorkloadOp::Write(lpn) => {
                ftl.write(lpn, version);
                version += 1;
            }
            WorkloadOp::Read(lpn) => {
                let _ = ftl.read(lpn);
            }
            WorkloadOp::Idle(_) | WorkloadOp::Trim(_) => {}
        }
    }
    let d = ftl.device().stats().since(&snap);
    assert!(d.logical_reads > 1000);
    // Read misses fetch translation pages (read-amplification), and those
    // fetches are excluded from write-amplification.
    let fetches = d
        .counts(geckoftl::flash_sim::IoPurpose::TranslationFetch)
        .page_reads;
    assert!(fetches > 0, "cache misses must fetch translation pages");
    let wa = d.wa_breakdown(10.0);
    assert!(wa.total() < 10.0);
}
