//! # ftl-telemetry
//!
//! The observability substrate of the GeckoFTL reproduction: structured
//! spans and device IO events driven by the simulated clock, streaming
//! log-bucketed histograms, a named metrics registry with snapshot/delta
//! semantics, and a Chrome Trace Event Format exporter.
//!
//! Design rules (see `docs/OBSERVABILITY.md`):
//!
//! * **Zero overhead when disabled.** A [`Telemetry`] value starts disabled
//!   with no allocations; every `record_*` call is an inlined flag check.
//! * **Observation only.** Telemetry never reads from, writes to, or
//!   advances anything in the simulation — enabling it must not change a
//!   single simulated microsecond or IO count. A property test in the root
//!   workspace (`tests/prop_telemetry.rs`) pins this.
//! * **Preallocated sink.** Events land in a fixed-capacity ring buffer
//!   sized at enable time; overflow overwrites the oldest events and is
//!   counted, never reallocated.
//!
//! This crate is dependency-free and knows nothing about the flash device
//! or the FTL engine; callers pass purpose indices/labels in, which keeps
//! the dependency arrow pointing from `flash-sim`/`core` *to* telemetry.

pub mod export;
pub mod hist;
pub mod json;
pub mod registry;
pub mod sink;

pub use export::chrome_trace_json;
pub use hist::Histogram;
pub use json::{parse_json, validate_chrome_trace, Json, TraceSummary};
pub use registry::{MetricValue, MetricsSnapshot};
pub use sink::{EventRing, IoOp, SpanKind, TraceEvent};

/// Telemetry state carried by the simulated flash device: an event ring,
/// per-span-kind latency histograms, and the recovery-time accumulator.
///
/// Disabled (the default) it holds no allocations and records nothing.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    enabled: bool,
    inner: Option<Box<Inner>>,
}

#[derive(Clone, Debug)]
struct Inner {
    ring: EventRing,
    span_hist: [Histogram; SpanKind::COUNT],
    /// Sum of recovery-step span durations since the last
    /// [`Telemetry::recovery_started`], in the order the steps ran —
    /// mirrors `RecoveryReport::total_secs` term for term.
    recovery_raw_us: f64,
}

impl Telemetry {
    /// Default ring capacity when enabling without an explicit size.
    pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

    /// Enable recording into a preallocated ring of `ring_capacity` events.
    /// Re-enabling keeps already-recorded data and the existing ring.
    pub fn enable(&mut self, ring_capacity: usize) {
        if self.inner.is_none() {
            self.inner = Some(Box::new(Inner {
                ring: EventRing::with_capacity(ring_capacity.max(1)),
                span_hist: std::array::from_fn(|_| Histogram::new()),
                recovery_raw_us: 0.0,
            }));
        }
        self.enabled = true;
    }

    /// Toggle recording without touching recorded data. Turning recording
    /// on for the first time allocates a default-capacity ring.
    pub fn set_enabled(&mut self, on: bool) {
        if on {
            self.enable(Self::DEFAULT_RING_CAPACITY);
        } else {
            self.enabled = false;
        }
    }

    /// Whether record calls currently do anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one device IO on a channel lane. `purpose` is the caller's
    /// purpose index (device crate's `IoPurpose::index`).
    #[inline]
    pub fn record_io(&mut self, purpose: u8, op: IoOp, channel: u16, start_us: f64, dur_us: f64) {
        if !self.enabled {
            return;
        }
        let inner = self.inner.as_mut().expect("enabled implies inner");
        inner.ring.push(TraceEvent::Io {
            purpose,
            op,
            channel,
            start_us,
            dur_us: dur_us as f32,
        });
    }

    /// Record one closed FTL span (`start_us ..= end_us` on the simulated
    /// clock). The duration also feeds the span kind's histogram, and
    /// recovery-step spans accumulate into the recovery-time gauge.
    #[inline]
    pub fn record_span(&mut self, kind: SpanKind, arg: u32, start_us: f64, end_us: f64) {
        if !self.enabled {
            return;
        }
        let inner = self.inner.as_mut().expect("enabled implies inner");
        let dur = end_us - start_us;
        inner.span_hist[kind.index()].record(dur);
        if kind == SpanKind::Recovery {
            inner.recovery_raw_us += dur;
        }
        inner.ring.push(TraceEvent::Span {
            kind,
            arg,
            start_us,
            dur_us: dur as f32,
        });
    }

    /// Reset the recovery-time accumulator; call at the start of a recovery
    /// run so [`Telemetry::recovery_raw_us`] covers only the latest one.
    pub fn recovery_started(&mut self) {
        if let Some(inner) = self.inner.as_mut() {
            inner.recovery_raw_us = 0.0;
        }
    }

    /// Sum of recovery-step span durations of the most recent recovery, in
    /// microseconds (0 if telemetry was disabled during recovery).
    pub fn recovery_raw_us(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |i| i.recovery_raw_us)
    }

    /// Duration histogram for one span kind (`None` before first enable).
    pub fn span_hist(&self, kind: SpanKind) -> Option<&Histogram> {
        self.inner.as_ref().map(|i| &i.span_hist[kind.index()])
    }

    /// Recorded events, oldest surviving first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.inner.iter().flat_map(|i| i.ring.iter())
    }

    /// Events overwritten because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.dropped())
    }

    /// Events recorded over the telemetry's lifetime (kept + overwritten).
    pub fn total_events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.total())
    }

    /// RAM charged to telemetry: the preallocated ring plus histogram
    /// bucket arrays. Zero while never enabled — the honesty rule used by
    /// the fig14 RAM-budget comparison.
    pub fn ram_bytes(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => {
                inner.ring.ram_bytes()
                    + inner.span_hist.iter().map(|h| h.ram_bytes()).sum::<u64>()
                    + std::mem::size_of::<Inner>() as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing_and_charges_no_ram() {
        let mut t = Telemetry::default();
        t.record_io(0, IoOp::PageWrite, 0, 0.0, 1000.0);
        t.record_span(SpanKind::HostWrite, 0, 0.0, 1000.0);
        assert!(!t.is_enabled());
        assert_eq!(t.events().count(), 0);
        assert_eq!(t.ram_bytes(), 0);
        assert_eq!(t.recovery_raw_us(), 0.0);
    }

    #[test]
    fn enabled_records_events_and_histograms() {
        let mut t = Telemetry::default();
        t.enable(8);
        t.record_io(3, IoOp::PageRead, 1, 10.0, 100.0);
        t.record_span(SpanKind::HostWrite, 0, 0.0, 1100.0);
        assert_eq!(t.events().count(), 2);
        let h = t.span_hist(SpanKind::HostWrite).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 1100.0);
        assert!(t.ram_bytes() > 0);
    }

    #[test]
    fn set_enabled_pauses_without_losing_data() {
        let mut t = Telemetry::default();
        t.enable(8);
        t.record_span(SpanKind::HostWrite, 0, 0.0, 5.0);
        t.set_enabled(false);
        t.record_span(SpanKind::HostWrite, 0, 0.0, 99.0);
        t.set_enabled(true);
        let h = t.span_hist(SpanKind::HostWrite).unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn recovery_accumulator_resets_per_run() {
        let mut t = Telemetry::default();
        t.enable(8);
        t.record_span(SpanKind::Recovery, 0, 0.0, 100.0);
        t.record_span(SpanKind::Recovery, 1, 100.0, 250.0);
        assert_eq!(t.recovery_raw_us(), 250.0);
        t.recovery_started();
        t.record_span(SpanKind::Recovery, 0, 300.0, 340.0);
        assert_eq!(t.recovery_raw_us(), 40.0);
    }
}
