//! Figure 11: validity write-amplification as the device grows (number of
//! blocks K). Gecko's costs are logarithmic in K; flash PVB's are constant;
//! the crossover sits at an astronomically large capacity (~2¹⁰⁰× — here
//! computed from the analytical model).

use crate::harness::measure_uniform;
use crate::report::{f3, Table};
use flash_sim::Geometry;
use ftl_baselines::ftls::{build_geckoftl_tuned, build_with};
use ftl_baselines::BaselineKind;
use geckoftl_core::ftl::{FtlConfig, GcPolicy, RecoveryPolicy};
use geckoftl_core::gecko::analysis::{crossover_capacity_log2, GeckoCostModel};
use geckoftl_core::gecko::GeckoConfig;

/// Run the Figure-11 capacity sweep (K = 2¹⁰ .. 2¹³ simulated, crossover
/// extrapolated analytically).
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Figure 11 — validity WA vs number of blocks K (B=128, 4 KB pages, R=0.7)",
        &[
            "K",
            "capacity_MB",
            "gecko WA",
            "gecko levels",
            "flash PVB WA",
        ],
    );
    for shift in [10u32, 11, 12, 13] {
        let geo = Geometry::new(1 << shift, 1 << 7, 1 << 12, 0.7);
        let cfg = FtlConfig {
            cache_entries: FtlConfig::scaled_cache_entries(&geo),
            gc_free_threshold: 8,
            gc_policy: GcPolicy::MetadataAware,
            recovery: RecoveryPolicy::CheckpointDeferred,
            checkpoint_period: None,
            qos_headroom_blocks: 0,
        };
        let mut gecko = build_geckoftl_tuned(geo, cfg, GeckoConfig::paper_default(&geo));
        let gecko_wa = measure_uniform(&mut gecko, 40_000, 21)
            .wa_breakdown(10.0)
            .validity;
        let levels = gecko
            .backend()
            .gecko()
            .expect("gecko backend")
            .occupied_levels();

        let pvb_cfg = FtlConfig {
            recovery: RecoveryPolicy::Battery,
            ..cfg
        };
        let mut pvb = build_with(BaselineKind::MuFtl, geo, pvb_cfg);
        let pvb_wa = measure_uniform(&mut pvb, 40_000, 21)
            .wa_breakdown(10.0)
            .validity;

        t.row(vec![
            (1u64 << shift).to_string(),
            (geo.physical_bytes() >> 20).to_string(),
            f3(gecko_wa),
            levels.to_string(),
            f3(pvb_wa),
        ]);
    }

    let mut x = Table::new(
        "Figure 11 (crossover) — analytical capacity multiplier where flash PVB catches up",
        &["geometry", "log2(multiplier)"],
    );
    let model = GeckoCostModel::paper_default(Geometry::paper_2tb());
    x.row(vec![
        "paper 2 TB".into(),
        f3(crossover_capacity_log2(&model, 10.0)),
    ]);
    vec![t, x]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn gecko_stays_below_pvb_and_grows_slowly() {
        let tables = super::run();
        let rows = &tables[0].rows;
        for r in rows {
            let gecko: f64 = r[2].parse().unwrap();
            let pvb: f64 = r[4].parse().unwrap();
            assert!(gecko < pvb, "K={}: gecko {gecko} must beat pvb {pvb}", r[0]);
        }
        // 8× more blocks: gecko WA grows, but by far less than 8×.
        let first: f64 = rows.first().unwrap()[2].parse().unwrap();
        let last: f64 = rows.last().unwrap()[2].parse().unwrap();
        assert!(
            last < 4.0 * first.max(0.02),
            "gecko growth too steep: {first} → {last}"
        );
        // The crossover is astronomically far (paper: ≈2¹⁰⁰).
        let log2x: f64 = tables[1].rows[0][1].parse().unwrap();
        assert!(log2x > 60.0);
    }
}
