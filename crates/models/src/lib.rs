//! # ftl-models
//!
//! Closed-form models of integrated-RAM requirements and recovery times for
//! the five FTLs of the paper's evaluation. The paper produces Figure 1 and
//! the top/middle panels of Figure 13 from exactly such models ("we modeled
//! the sizes of their different data structures using the formulas in
//! Section 2 and Appendix B", "we modeled the number and types of flash IOs
//! ... needed to recover") — simulating a 2 TB device page-by-page is
//! neither necessary nor what the authors did.
//!
//! All models take a [`flash_sim::Geometry`] plus the cache size `C`, so the
//! same code produces the paper-scale numbers and the scaled-down
//! configurations used by the simulations (where the empirical
//! `FtlEngine::ram_report` can be cross-checked against them).

pub mod ram;
pub mod recovery;
pub mod sweep;

pub use ram::{ram_model, RamComponent, RamModel};
pub use recovery::{recovery_model, RecoveryComponent, RecoveryModel};
pub use sweep::{capacity_sweep, CapacityPoint};

/// The latencies every model uses (paper §5.3): spare read 3 µs, page read
/// 100 µs, page write 1 ms.
pub fn paper_latencies() -> flash_sim::LatencyModel {
    flash_sim::LatencyModel::paper()
}

/// The five FTLs, re-exported for model consumers that do not want to link
/// the simulation crates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FtlName {
    /// DFTL (RAM PVB, battery).
    Dftl,
    /// LazyFTL (RAM PVB, restricted dirty entries).
    LazyFtl,
    /// µ-FTL (flash PVB, battery).
    MuFtl,
    /// IB-FTL (page validity log, restricted dirty entries).
    IbFtl,
    /// GeckoFTL (Logarithmic Gecko, checkpoints + deferred sync).
    GeckoFtl,
}

impl FtlName {
    /// All FTLs in the paper's presentation order.
    pub const ALL: [FtlName; 5] = [
        FtlName::Dftl,
        FtlName::LazyFtl,
        FtlName::MuFtl,
        FtlName::IbFtl,
        FtlName::GeckoFtl,
    ];

    /// Display name used in figures.
    pub fn label(self) -> &'static str {
        match self {
            FtlName::Dftl => "DFTL",
            FtlName::LazyFtl => "LazyFTL",
            FtlName::MuFtl => "u-FTL",
            FtlName::IbFtl => "IB-FTL",
            FtlName::GeckoFtl => "GeckoFTL",
        }
    }

    /// Whether the FTL needs a battery (annotated in Figure 13).
    pub fn needs_battery(self) -> bool {
        matches!(self, FtlName::Dftl | FtlName::MuFtl)
    }
}
