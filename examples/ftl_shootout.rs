//! Five-FTL shootout: replay one identical trace against DFTL, LazyFTL,
//! µ-FTL, IB-FTL and GeckoFTL and compare write-amplification, simulated
//! time, and integrated RAM — a miniature of the paper's Figure 13.
//!
//! ```text
//! cargo run --release --example ftl_shootout
//! ```

use geckoftl::flash_sim::Geometry;
use geckoftl::ftl_baselines::{build, BaselineKind};
use geckoftl::ftl_workloads::{Trace, Uniform, WorkloadOp};

fn main() {
    let geo = Geometry::new(512, 128, 4096, 0.7);
    let logical = geo.logical_pages();
    // One recorded trace so every FTL sees the identical byte stream.
    let trace = Trace::record(Uniform::new(7, logical), 80_000);
    println!(
        "workload: {} uniformly random page updates over {} logical pages\n",
        trace.len(),
        logical
    );
    println!(
        "{:>9}  {:>6} {:>11} {:>9} {:>7}  {:>10}  {:>9}",
        "FTL", "user", "translation", "validity", "total", "sim time", "RAM"
    );

    for kind in BaselineKind::ALL {
        let mut ftl = build(kind, geo);
        // Fill once so GC is in steady state.
        for lpn in 0..logical as u32 {
            ftl.write(geckoftl::flash_sim::Lpn(lpn), 0);
        }
        let snap = ftl.device().stats().snapshot();
        for op in trace.iter() {
            match op {
                WorkloadOp::Write(lpn) => ftl.write(lpn, 1),
                WorkloadOp::Read(lpn) => {
                    let _ = ftl.read(lpn);
                }
                WorkloadOp::Idle(_) | WorkloadOp::Trim(_) => {}
            }
        }
        let d = ftl.device().stats().since(&snap);
        let wa = d.wa_breakdown(10.0);
        let secs = d.simulated_us(&ftl.device().latency()) / 1e6;
        let ram = ftl.ram_report();
        println!(
            "{:>9}  {:>6.2} {:>11.2} {:>9.2} {:>7.2}  {:>8.1} s  {:>7} KB",
            kind.name(),
            wa.user,
            wa.translation,
            wa.validity,
            wa.total(),
            secs,
            ram.total() / 1024,
        );
    }
    println!("\n(the shape matches the paper's Figure 13: GeckoFTL lowest total WA,");
    println!(" µ-FTL pays for its flash PVB, LazyFTL/IB-FTL for their dirty-entry caps)");
}
