//! Write-latency A/B of the incremental merge scheduler: synchronous
//! Logarithmic Gecko merges (the paper's behavior — a write that trips a
//! level-N merge pays the whole merge as latency) against the bounded-step
//! scheduler of [`geckoftl_core::gecko::scheduler`], which charges at most
//! `merge_step_pages` of merge IO per write and overlaps the step's pages
//! across `Geometry::channels` in simulated time.
//!
//! Both variants run the same mixed workload (25 % reads) on identical
//! geometry and tuning; the only difference is `GeckoConfig::sync_merge`.
//! Per-write latency is the simulated-clock delta around each `write()`.
//! The headline metrics are the p99 and max write latency (the tail the
//! amortized cost analysis of Table 1 promises but synchronous merging
//! breaks), with write-amplification equality and a byte-level
//! translation/validity oracle audit proving the scheduler changed *when*
//! merge IO happens, not *what* the FTL stores. Results land in
//! `BENCH_merge_latency.json`.

use crate::fuzz::oracle::audit_state;
use crate::harness::fill_sequential;
use crate::report::{f3, Table};
use flash_sim::telemetry::{chrome_trace_json, TraceEvent};
use flash_sim::{Geometry, Histogram, IoPurpose};
use ftl_baselines::ftls::build_geckoftl_tuned;
use ftl_workloads::{Mixed, WorkloadOp, Zipfian};
use geckoftl_core::ftl::{FtlConfig, GcPolicy, RecoveryPolicy};
use geckoftl_core::gecko::GeckoConfig;
use std::time::Instant;

struct VariantResult {
    name: String,
    /// Per-write latency, in the shared streaming histogram (the same
    /// log-bucketed [`Histogram`] every percentile in this crate now comes
    /// from; its equivalence to the old sort-based quantiles is pinned by
    /// `ftl_telemetry::hist` regression tests).
    lat: Histogram,
    /// Per-read latency: the incremental variant donates merge slices from
    /// the read path too, so an honest A/B must show where that IO went —
    /// not just the write tail it left.
    read_lat: Histogram,
    /// Per-write merge-stall component: the `ValidityMerge` busy time each
    /// measured write was charged. The direct measure of what the scheduler
    /// moves off the critical path.
    stall: Histogram,
    wa_total: f64,
    merge_busy_us: f64,
    merge_stall_drains: u64,
    merge_pages_stepped: u64,
    merges: u64,
    wall_secs: f64,
    oracle_ok: bool,
}

fn geometry() -> Geometry {
    // 128 MB simulated device, 4 parallel channels: big enough for a
    // ~6-level Gecko tree under the shrunken page budget below, small
    // enough to measure in seconds. R = 0.5 (generous over-provisioning)
    // keeps GC victims mostly invalid, so the write-latency tail measures
    // validity-metadata maintenance — the component under test — rather
    // than migration IO, which the scheduler neither adds nor removes.
    Geometry::new(256, 128, 4096, 0.5).with_channels(4)
}

fn gecko_cfg(sync_merge: bool) -> GeckoConfig {
    GeckoConfig {
        // Shrink usable page space so flushes/merges build a real
        // multi-level tree at simulation scale (V ≈ 31 entries).
        page_header_bytes: 4096 - 256,
        sync_merge,
        merge_step_pages: 4,
        // `reproduce ... --shards N` splits the validity store into N
        // per-channel trees (N = channels aligns shard and channel).
        shards: crate::shards::get().unwrap_or(1),
        ..GeckoConfig::paper_default(&geometry())
    }
}

/// Export the variant's telemetry as Chrome Trace Event Format JSON and
/// print a per-purpose reconciliation of the trace's channel lanes against
/// `IoStats::busy_us`: with no dropped events, the sum of event durations
/// per purpose equals the busy time the stats charged over the same window
/// (the flash-sim `telemetry_io_events_reconcile_with_busy_us` test pins
/// this exactly; here it is reported for the real run).
fn export_trace(
    path: &str,
    engine: &geckoftl_core::ftl::FtlEngine,
    delta: &flash_sim::StatsSnapshot,
) {
    let t = engine.telemetry();
    let mut labels = [""; 14];
    for p in IoPurpose::ALL {
        labels[p.index()] = p.label();
    }
    let json = chrome_trace_json(t, &labels);
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!(
            "   wrote {path}: {} events ({} dropped)",
            t.total_events(),
            t.dropped_events()
        ),
        Err(e) => eprintln!("   could not write {path}: {e}"),
    }
    let mut per_purpose = [0.0f64; 14];
    for ev in t.events() {
        if let TraceEvent::Io {
            purpose, dur_us, ..
        } = ev
        {
            per_purpose[*purpose as usize] += *dur_us as f64;
        }
    }
    if t.dropped_events() > 0 {
        eprintln!(
            "   WARNING: {} events dropped; lane sums undercount busy_us",
            t.dropped_events()
        );
        return;
    }
    eprintln!("   trace lanes vs IoStats::busy_us over the measured window:");
    for p in IoPurpose::ALL {
        let busy = delta.busy_us(p);
        let lanes = per_purpose[p.index()];
        if busy == 0.0 && lanes == 0.0 {
            continue;
        }
        // f32 event durations: allow rounding at ~1e-7 relative.
        let ok = (lanes - busy).abs() <= 1e-6 * busy.abs().max(1.0);
        eprintln!(
            "     {:<18} lanes {:14.1}  busy {:14.1}  {}",
            p.label(),
            lanes,
            busy,
            if ok { "ok" } else { "MISMATCH" }
        );
        assert!(
            ok,
            "trace lanes must reconcile with busy_us for {}: {lanes} vs {busy}",
            p.label()
        );
    }
}

fn run_variant(
    name: String,
    sync_merge: bool,
    measured_writes: usize,
    trace: Option<&str>,
) -> VariantResult {
    let geo = geometry();
    let cfg = FtlConfig {
        // A few percent of the logical space (not the paper's 0.14 %
        // whole-device ratio, which at this scaled-down geometry collapses
        // to 64 entries and drowns the tail in unidentified-invalid-page
        // migrations — an orthogonal cost the scheduler neither adds nor
        // removes).
        cache_entries: 2048,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let mut engine = build_geckoftl_tuned(geo, cfg, gecko_cfg(sync_merge));
    fill_sequential(&mut engine);
    let logical = geo.logical_pages();
    // Zipfian-skewed updates + 25 % reads: a realistic mixed workload whose
    // GC victims are mostly-invalid, so the write-latency tail is dominated
    // by validity-metadata maintenance — the component under test.
    let mut gen = Mixed::new(7, Zipfian::new(13, logical, 0.99), 0.25, logical);
    // Warm-up to GC + merge steady state.
    let mut version = 1u64 << 32;
    for op in gen.by_ref().take(logical as usize / 2) {
        match op {
            WorkloadOp::Write(lpn) => {
                version += 1;
                engine.write(lpn, version);
            }
            WorkloadOp::Read(lpn) => {
                let _ = engine.read(lpn);
            }
            WorkloadOp::Trim(lpn) => {
                engine.trim(lpn);
            }
            WorkloadOp::Idle(ticks) => {
                for _ in 0..ticks {
                    engine.idle_tick();
                }
            }
        }
    }

    let snap = engine.device().stats().snapshot();
    let gecko_before = engine.backend().gecko_stats().expect("gecko backend");
    if trace.is_some() {
        // The ring must hold every IO event of the measured window for the
        // per-channel lanes to reconcile with busy_us (≈ a few IO events
        // per write at WA ≈ 1.2, plus GC bursts; 32× is comfortably over).
        engine.telemetry_mut().enable(measured_writes * 32);
    }
    let started = Instant::now();
    let mut lat = Histogram::new();
    let mut read_lat = Histogram::new();
    let mut stall = Histogram::new();
    let mut measured = 0usize;
    while measured < measured_writes {
        match gen.next().expect("infinite generator") {
            WorkloadOp::Write(lpn) => {
                version += 1;
                let before_us = engine.device().clock().now_us();
                let merge_before = engine.device().stats().busy_us(IoPurpose::ValidityMerge);
                engine.write(lpn, version);
                lat.record(engine.device().clock().now_us() - before_us);
                stall.record(
                    engine.device().stats().busy_us(IoPurpose::ValidityMerge) - merge_before,
                );
                measured += 1;
            }
            WorkloadOp::Read(lpn) => {
                let before_us = engine.device().clock().now_us();
                let _ = engine.read(lpn);
                read_lat.record(engine.device().clock().now_us() - before_us);
            }
            WorkloadOp::Trim(lpn) => {
                engine.trim(lpn); // Mixed never emits TRIMs; exhaustiveness only
            }
            WorkloadOp::Idle(ticks) => {
                for _ in 0..ticks {
                    engine.idle_tick();
                }
            }
        }
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let delta = engine.device().stats().since(&snap);
    let gecko_after = engine.backend().gecko_stats().expect("gecko backend");
    if let Some(path) = trace {
        export_trace(path, &engine, &delta);
        engine.telemetry_mut().set_enabled(false); // shutdown IO is not part of the window
    }

    // Idle-starvation regression guard: a bounded idle period must drain
    // the entire merge backlog. Each idle tick is a multi-slice quantum
    // (8 slices per channel), so the debt left by the measured burst
    // drains orders of magnitude faster than the old one-slice-per-tick
    // behavior, which merely kept pace with planning and starved deep
    // merges through every idle gap.
    let backlog_pages = |e: &geckoftl_core::ftl::FtlEngine| e.backend().merge_backlog_pages();
    let debt = backlog_pages(&engine);
    let quantum = 8 * geo.channels as u64 * gecko_cfg(sync_merge).merge_step_pages.max(1) as u64;
    // Slack: installs during the drain can cascade-plan further merges.
    let allowed = 4 * debt.div_ceil(quantum) + 16;
    let mut ticks = 0u64;
    while engine.idle_tick() {
        ticks += 1;
        assert!(
            ticks <= allowed,
            "idle quanta must drain merge debt ({debt} pages due, still {} after {ticks})",
            backlog_pages(&engine)
        );
    }
    assert_eq!(backlog_pages(&engine), 0, "idle loop ended with merge debt");

    // Quiesce (sync dirty entries, flush + drain merges), then audit.
    engine.shutdown_clean();
    let oracle_ok = audit_state(&mut engine);

    VariantResult {
        name,
        lat,
        read_lat,
        stall,
        wa_total: delta.wa_breakdown(10.0).total(),
        merge_busy_us: delta.busy_us(IoPurpose::ValidityMerge),
        merge_stall_drains: gecko_after.merge_stall_drains - gecko_before.merge_stall_drains,
        merge_pages_stepped: gecko_after.merge_pages_stepped - gecko_before.merge_pages_stepped,
        merges: gecko_after.merges - gecko_before.merges,
        wall_secs,
        oracle_ok,
    }
}

fn json_variant(v: &VariantResult) -> String {
    format!(
        concat!(
            "{{\n",
            "      \"p50_us\": {:.1},\n",
            "      \"p90_us\": {:.1},\n",
            "      \"p99_us\": {:.1},\n",
            "      \"p999_us\": {:.1},\n",
            "      \"max_us\": {:.1},\n",
            "      \"mean_us\": {:.2},\n",
            "      \"read_p99_us\": {:.1},\n",
            "      \"read_max_us\": {:.1},\n",
            "      \"read_mean_us\": {:.2},\n",
            "      \"merge_stall_p99_us\": {:.1},\n",
            "      \"merge_stall_p999_us\": {:.1},\n",
            "      \"merge_stall_max_us\": {:.1},\n",
            "      \"wa_total\": {:.4},\n",
            "      \"merges\": {},\n",
            "      \"merge_busy_ms\": {:.2},\n",
            "      \"merge_pages_stepped\": {},\n",
            "      \"merge_stall_drains\": {},\n",
            "      \"oracle_ok\": {},\n",
            "      \"wall_secs\": {:.3}\n",
            "    }}"
        ),
        v.lat.quantile(0.50),
        v.lat.quantile(0.90),
        v.lat.quantile(0.99),
        v.lat.quantile(0.999),
        v.lat.max(),
        v.lat.mean(),
        v.read_lat.quantile(0.99),
        v.read_lat.max(),
        v.read_lat.mean(),
        v.stall.quantile(0.99),
        v.stall.quantile(0.999),
        v.stall.max(),
        v.wa_total,
        v.merges,
        v.merge_busy_us / 1e3,
        v.merge_pages_stepped,
        v.merge_stall_drains,
        v.oracle_ok,
        v.wall_secs,
    )
}

fn emit_json(sync: &VariantResult, inc: &VariantResult, measured_writes: usize) {
    let pct = |a: f64, b: f64| 100.0 * (1.0 - b / a.max(1e-9));
    let geo = geometry();
    let geo_str = format!(
        "K={} B={} P={} R={} channels={}",
        geo.blocks, geo.pages_per_block, geo.page_bytes, geo.logical_ratio, geo.channels
    );
    let body = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"merge_latency\",\n",
            "  \"workload\": \"mixed 25% reads, zipf(0.99) updates, {} measured writes\",\n",
            "  \"geometry\": \"{}\",\n",
            "  \"merge_step_pages\": {},\n",
            "  \"shards\": {},\n",
            "  \"metric\": \"per-write simulated latency (us), sync vs incremental merges\",\n",
            "  \"variants\": {{\n",
            "    \"sync_merge\": {},\n",
            "    \"incremental\": {}\n",
            "  }},\n",
            "  \"p99_reduction_pct\": {:.2},\n",
            "  \"max_reduction_pct\": {:.2},\n",
            "  \"merge_stall_max_reduction_pct\": {:.2},\n",
            "  \"wa_delta_pct\": {:.2}\n",
            "}}\n"
        ),
        measured_writes,
        geo_str,
        gecko_cfg(false).merge_step_pages,
        gecko_cfg(false).shards,
        json_variant(sync),
        json_variant(inc),
        pct(sync.lat.quantile(0.99), inc.lat.quantile(0.99)),
        pct(sync.lat.max(), inc.lat.max()),
        pct(sync.stall.max(), inc.stall.max()),
        100.0 * (inc.wa_total - sync.wa_total) / sync.wa_total.max(1e-9),
    );
    // Anchor to the workspace root regardless of the process cwd, so
    // `reproduce` and `cargo test` refresh the same committed artifact.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_merge_latency.json"
    );
    match std::fs::write(path, body) {
        Ok(()) => eprintln!("   wrote {path}"),
        Err(e) => eprintln!("   could not write {path}: {e}"),
    }
}

/// Run the merge-latency A/B and emit `BENCH_merge_latency.json`. In smoke
/// mode (CI) the measured interval shrinks and the JSON is not rewritten.
pub fn run() -> Vec<Table> {
    let smoke = crate::smoke::on();
    let measured_writes = if smoke { 5_000 } else { 40_000 };
    let sync = run_variant("sync merges (paper)".into(), true, measured_writes, None);
    // The incremental variant is the one worth a timeline: its merge slices
    // overlap across channels, which is exactly what the per-channel lanes
    // of the Chrome trace make visible.
    let shards = gecko_cfg(false).shards;
    let inc = run_variant(
        format!(
            "incremental (step={}, {}ch{})",
            gecko_cfg(false).merge_step_pages,
            geometry().channels,
            if shards > 1 {
                format!(", {shards} shards")
            } else {
                String::new()
            }
        ),
        false,
        measured_writes,
        crate::tracing::path(),
    );

    let mut t = Table::new(
        "Write latency — synchronous vs incremental Logarithmic Gecko merges",
        &[
            "variant",
            "p50 (us)",
            "p90 (us)",
            "p99 (us)",
            "p99.9 (us)",
            "max (us)",
            "mean (us)",
            "stall p99.9",
            "stall max",
            "WA",
            "merges",
            "stall drains",
            "oracle",
            "wall (s)",
        ],
    );
    for v in [&sync, &inc] {
        t.row(vec![
            v.name.clone(),
            f3(v.lat.quantile(0.50)),
            f3(v.lat.quantile(0.90)),
            f3(v.lat.quantile(0.99)),
            f3(v.lat.quantile(0.999)),
            f3(v.lat.max()),
            f3(v.lat.mean()),
            f3(v.stall.quantile(0.999)),
            f3(v.stall.max()),
            f3(v.wa_total),
            v.merges.to_string(),
            v.merge_stall_drains.to_string(),
            if v.oracle_ok { "ok" } else { "MISMATCH" }.into(),
            f3(v.wall_secs),
        ]);
    }
    if !smoke {
        emit_json(&sync, &inc, measured_writes);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn incremental_merges_cut_the_write_tail() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let cell = |name_frag: &str, col: usize| -> f64 {
            rows.iter()
                .find(|r| r[0].contains(name_frag))
                .expect("variant row")[col]
                .parse()
                .unwrap()
        };
        let (p99_sync, p99_inc) = (cell("sync", 3), cell("incremental", 3));
        let (p999_sync, p999_inc) = (cell("sync", 4), cell("incremental", 4));
        assert!(
            p99_inc < p99_sync,
            "incremental must cut p99 write latency: {p99_inc} vs {p99_sync}"
        );
        // The single max write is not asserted (one sample: a GC burst
        // landing on merge debt can spike either variant); the p99.9 tail
        // is the robust claim.
        assert!(
            p999_inc < p999_sync,
            "incremental must cut p99.9 write latency: {p999_inc} vs {p999_sync}"
        );
        // Forced drains are the stall bug this scheduler exists to avoid:
        // they must stay rare relative to merges completed.
        let drains: f64 = cell("incremental", 11);
        let merges: f64 = cell("incremental", 10);
        assert!(
            drains <= 0.10 * merges,
            "forced stall drains must stay ≤10% of merges: {drains} of {merges}"
        );
        // The merge-stall component — what the scheduler actually moves off
        // the critical path — must shrink sharply at the tail. (The single
        // worst stall is *not* asserted: a forced drain inside a GC-burst
        // write can concentrate a deferred cascade and land near the sync
        // worst case; the distribution's tail is the meaningful claim.)
        let (stall_sync, stall_inc) = (cell("sync", 7), cell("incremental", 7));
        assert!(
            stall_inc < 0.7 * stall_sync,
            "p99.9 per-write merge stall must shrink ≥30%: {stall_inc} vs {stall_sync}"
        );
        // Same merge work, different timing: WA within 5 % of the baseline.
        let (wa_sync, wa_inc) = (cell("sync", 9), cell("incremental", 9));
        assert!(
            (wa_inc - wa_sync).abs() / wa_sync < 0.05,
            "WA must stay equal: {wa_inc} vs {wa_sync}"
        );
        // The byte-level translation/validity oracle must pass for both.
        for r in rows {
            assert_eq!(r[12], "ok", "state oracle failed for {}", r[0]);
        }
    }
}
