//! Metrics registry integration: one [`MetricsSnapshot`] covering every
//! counter the engine and its substrate maintain — per-purpose IO counts
//! and busy time ([`flash_sim::IoStats`]), engine op counters
//! ([`super::EngineCounters`]), Gecko structure counters
//! ([`crate::gecko::GeckoStats`]), fault-injection counters
//! ([`flash_sim::FaultStats`]), block-retirement state, and per-lane span
//! summaries from the telemetry sink.
//!
//! Snapshots carry *cumulative* values; interval metrics come from
//! [`MetricsSnapshot::since`], mirroring the `IoStats::snapshot`/`since`
//! pattern. Names are dotted paths (`io.user_write.page_writes`,
//! `gecko.flushes`, `span.gc_collect.max_us`); see `docs/OBSERVABILITY.md`
//! for the full naming scheme.

use flash_sim::{IoPurpose, MetricsSnapshot, SpanKind, WaCategory};

use super::FtlEngine;
use crate::wear::WearStats;

impl FtlEngine {
    /// Snapshot every counter and gauge the engine exposes into a named
    /// metrics registry. Pure read: no IO, no clock movement.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut m = MetricsSnapshot::new();
        let stats = self.dev.stats();
        for p in IoPurpose::ALL {
            let c = stats.counts(p);
            let l = p.label();
            m.set_counter(&format!("io.{l}.page_reads"), c.page_reads);
            m.set_counter(&format!("io.{l}.page_writes"), c.page_writes);
            m.set_counter(&format!("io.{l}.spare_reads"), c.spare_reads);
            m.set_counter(&format!("io.{l}.erases"), c.erases);
            m.set_gauge(&format!("io.{l}.busy_us"), stats.busy_us(p));
        }
        m.set_counter("io.logical_writes", stats.logical_writes);
        m.set_counter("io.logical_reads", stats.logical_reads);

        let c = self.counters;
        m.set_counter("engine.writes", c.writes);
        m.set_counter("engine.reads", c.reads);
        m.set_counter("engine.syncs", c.syncs);
        m.set_counter("engine.syncs_aborted", c.syncs_aborted);
        m.set_counter("engine.checkpoints", c.checkpoints);
        m.set_counter("engine.gc_operations", c.gc_operations);
        m.set_counter("engine.gc_migrations", c.gc_migrations);
        m.set_counter("engine.gc_uip_skips", c.gc_uip_skips);
        m.set_counter("engine.trims", c.trims);

        // Per-tenant series (only tenants seen through the `*_for` entry
        // points appear; single-tenant runs emit nothing extra).
        for (id, s) in self.tenant_stats() {
            let p = format!("tenant.{id}");
            m.set_counter(&format!("{p}.writes"), s.writes);
            m.set_counter(&format!("{p}.reads"), s.reads);
            m.set_counter(&format!("{p}.trims"), s.trims);
            m.set_counter(&format!("{p}.bytes_written"), s.bytes_written);
            m.set_counter(&format!("{p}.gc_operations"), s.gc_operations);
            m.set_counter(&format!("{p}.gc_migrations"), s.gc_migrations);
            m.set_gauge(&format!("{p}.gc_debt_us"), s.gc_debt_us);
            if s.writes > 0 {
                m.set_gauge(&format!("{p}.write_p99_us"), s.write_lat.quantile(0.99));
                m.set_gauge(&format!("{p}.write_max_us"), s.write_lat.max());
            }
            if s.reads > 0 {
                m.set_gauge(&format!("{p}.read_p99_us"), s.read_lat.quantile(0.99));
                m.set_gauge(&format!("{p}.read_max_us"), s.read_lat.max());
            }
        }

        if let Some(s) = self.backend.gecko_stats() {
            gecko_stats_into(&mut m, "gecko", &s);
        }
        // A sharded store additionally reports each shard tree under
        // `gecko.shard<N>.*` (the aggregate above stays the primary series;
        // see docs/OBSERVABILITY.md).
        if let Some(sharded) = self.backend.sharded() {
            for (i, tree) in sharded.shard_trees().iter().enumerate() {
                gecko_stats_into(&mut m, &format!("gecko.shard{i}"), &tree.stats);
                m.set_gauge(
                    &format!("gecko.shard{i}.merge_backlog_pages"),
                    tree.merge_backlog_pages() as f64,
                );
            }
        }

        let f = self.dev.fault_stats();
        m.set_counter("fault.program_failures", f.program_failures);
        m.set_counter("fault.erase_failures", f.erase_failures);
        m.set_counter("fault.torn_writes", f.torn_writes);
        m.set_counter("fault.erase_crashes", f.erase_crashes);

        m.set_counter("bm.retired_blocks", self.bm.retired_blocks() as u64);

        let t = self.dev.telemetry();
        for kind in SpanKind::ALL {
            if let Some(h) = t.span_hist(kind) {
                let l = kind.label();
                m.set_counter(&format!("span.{l}.count"), h.count());
                m.set_gauge(&format!("span.{l}.max_us"), h.max());
                m.set_gauge(&format!("span.{l}.mean_us"), h.mean());
            }
        }
        m.set_gauge("recovery.last_us", (t.recovery_raw_us() / 1e6) * 1e6);
        m
    }
}

/// Register one [`crate::gecko::GeckoStats`] under a name prefix (`gecko`
/// for the aggregate, `gecko.shard<N>` per shard of a sharded store).
fn gecko_stats_into(m: &mut MetricsSnapshot, prefix: &str, s: &crate::gecko::GeckoStats) {
    m.set_counter(&format!("{prefix}.buffer_inserts"), s.buffer_inserts);
    m.set_counter(&format!("{prefix}.flushes"), s.flushes);
    m.set_counter(&format!("{prefix}.merges"), s.merges);
    m.set_counter(&format!("{prefix}.queries"), s.queries);
    m.set_counter(&format!("{prefix}.batch_queries"), s.batch_queries);
    m.set_counter(&format!("{prefix}.entries_dropped"), s.entries_dropped);
    m.set_counter(&format!("{prefix}.bloom_skips"), s.bloom_skips);
    m.set_counter(&format!("{prefix}.fence_probes"), s.fence_probes);
    m.set_counter(
        &format!("{prefix}.merge_pages_stepped"),
        s.merge_pages_stepped,
    );
    m.set_counter(
        &format!("{prefix}.merge_stall_drains"),
        s.merge_stall_drains,
    );
}

/// Fold wear-leveling statistics into a snapshot. The [`WearStats`] live in
/// the experiment harness (the leveler is driven externally), not in the
/// engine, hence the separate entry point.
pub fn wear_metrics_into(m: &mut MetricsSnapshot, w: &WearStats) {
    m.set_counter("wear.min_erases", w.min_erases as u64);
    m.set_counter("wear.max_erases", w.max_erases as u64);
    m.set_gauge("wear.avg_erases", w.avg_erases);
    m.set_counter("wear.scans_completed", w.scans_completed);
    m.set_counter("wear.spread", w.spread() as u64);
}

/// Total write-amplification computed from registry counter deltas,
/// bit-identical to `StatsSnapshot::wa_breakdown(delta).total()`: the same
/// purposes are summed per Figure-13 category in the same order with exact
/// `u64` adds, and the identical float expression is evaluated per category
/// before the three results are added left-to-right.
pub fn wa_total(d: &MetricsSnapshot, delta: f64) -> f64 {
    let denom = d.counter("io.logical_writes").max(1) as f64;
    let per_cat = |cat: WaCategory| {
        let mut pw = 0u64;
        let mut pr = 0u64;
        for p in [
            IoPurpose::UserWrite,
            IoPurpose::GcMigrateUser,
            IoPurpose::TranslationSync,
            IoPurpose::TranslationGc,
            IoPurpose::ValidityUpdate,
            IoPurpose::ValidityQuery,
            IoPurpose::ValidityMerge,
            IoPurpose::ValidityGc,
            IoPurpose::WearLevel,
        ] {
            if p.wa_category() == Some(cat) {
                let l = p.label();
                pw += d.counter(&format!("io.{l}.page_writes"));
                pr += d.counter(&format!("io.{l}.page_reads"));
            }
        }
        (pw as f64 + pr as f64 / delta) / denom
    };
    per_cat(WaCategory::User) + per_cat(WaCategory::Translation) + per_cat(WaCategory::Validity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::{Geometry, Lpn};

    fn exercised_engine() -> FtlEngine {
        let geo = Geometry::tiny();
        let mut ftl = FtlEngine::geckoftl(geo);
        let logical = geo.logical_pages();
        for i in 0..logical * 3 {
            ftl.write(Lpn((i % logical) as u32), i + 1);
        }
        ftl
    }

    #[test]
    fn registry_mirrors_native_counters() {
        let ftl = exercised_engine();
        let m = ftl.metrics();
        let stats = ftl.device().stats();
        assert_eq!(
            m.counter("io.user_write.page_writes"),
            stats.counts(IoPurpose::UserWrite).page_writes
        );
        assert_eq!(m.counter("io.logical_writes"), stats.logical_writes);
        assert_eq!(m.counter("engine.writes"), ftl.counters.writes);
        assert_eq!(
            m.counter("gecko.flushes"),
            ftl.backend.gecko().unwrap().stats.flushes
        );
        assert_eq!(
            m.gauge("io.user_write.busy_us"),
            stats.busy_us(IoPurpose::UserWrite)
        );
        assert_eq!(m.counter("bm.retired_blocks"), 0);
    }

    #[test]
    fn wa_total_is_bit_identical_to_native_breakdown() {
        let mut ftl = exercised_engine();
        let before_native = ftl.device().stats().snapshot();
        let before = ftl.metrics();
        let logical = ftl.geometry().logical_pages();
        for i in 0..logical * 2 {
            ftl.write(Lpn((i % logical) as u32), 1_000_000 + i);
        }
        let native = ftl
            .device()
            .stats()
            .since(&before_native)
            .wa_breakdown(10.0)
            .total();
        let from_registry = wa_total(&ftl.metrics().since(&before), 10.0);
        assert!(native > 1.0, "workload must amplify");
        assert_eq!(
            native.to_bits(),
            from_registry.to_bits(),
            "registry WA must replicate the native computation bit-for-bit"
        );
    }

    #[test]
    fn span_metrics_appear_once_telemetry_is_enabled() {
        let geo = Geometry::tiny();
        let mut ftl = FtlEngine::geckoftl(geo);
        let m = ftl.metrics();
        assert!(!m.contains("span.host_write.count"), "disabled: no lanes");
        ftl.telemetry_mut().enable(1024);
        let logical = geo.logical_pages();
        for i in 0..logical * 2 {
            ftl.write(Lpn((i % logical) as u32), i + 1);
        }
        let m = ftl.metrics();
        assert_eq!(m.counter("span.host_write.count"), logical * 2);
        assert!(m.gauge("span.host_write.max_us") > 0.0);
    }

    #[test]
    fn wear_stats_fold_in() {
        let w = WearStats {
            min_erases: 1,
            max_erases: 9,
            avg_erases: 4.5,
            scans_completed: 3,
        };
        let mut m = MetricsSnapshot::new();
        wear_metrics_into(&mut m, &w);
        assert_eq!(m.counter("wear.spread"), 8);
        assert_eq!(m.gauge("wear.avg_erases"), 4.5);
    }
}
