//! Page contents and spare areas.
//!
//! Pages store *typed symbolic payloads* rather than raw bytes: the simulator
//! is an algorithm testbed, and what matters is that recovery code can read
//! exactly (and only) what was persisted. Byte sizes used in RAM/space models
//! come from the device [`crate::Geometry`] instead.
//!
//! Every flash page has an adjacent spare area (paper §2) storing metadata
//! relevant for one life-cycle of the page: the logical address last written
//! on it, a write timestamp, and a type tag. The spare area cannot be updated
//! without erasing the block, which the simulator enforces by writing it
//! exactly once together with the page.

use crate::geometry::{Lpn, Ppn};
use std::any::Any;
use std::sync::Arc;

/// Kinds of metadata pages, used in spare-area type tags so that recovery's
/// initial device scan (BID construction, Appendix C step 1) can classify
/// blocks by reading the spare area of their first page.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MetaKind {
    /// A page belonging to a Logarithmic Gecko run.
    GeckoRun,
    /// A page of a flash-resident Page Validity Bitmap (µ-FTL baseline).
    Pvb,
    /// A page of the Page Validity Log (IB-FTL baseline, Appendix E).
    Pvl,
}

/// Spare-area contents, written atomically with the page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpareInfo {
    /// A user-data page: records which logical page was last written here
    /// and, when the write superseded a known older copy, where that copy
    /// lives. The before-image pointer makes §4.1's *immediate* invalidation
    /// reports recoverable after a crash (the paper's App. C.2.2 only
    /// re-derives sync-time reports; see DESIGN.md).
    User {
        /// The logical page stored on this physical page.
        lpn: Lpn,
        /// Physical address of the copy this write superseded, if the FTL
        /// knew it at write time (cache-hit writes).
        before: Option<Ppn>,
    },
    /// A translation page: records which translation-table slice it holds.
    Translation {
        /// Index of the translation page (covers a contiguous LPN range).
        tpage: u32,
    },
    /// A metadata page (Gecko run / PVB / PVL), with a component-specific tag
    /// (run id, PVB segment index, log page sequence number...).
    Meta {
        /// Which metadata component owns the page.
        kind: MetaKind,
        /// Component-specific identifier.
        tag: u64,
    },
}

/// A full spare area: the info plus the global write sequence number, which
/// serves as the timestamp recovery algorithms compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Spare {
    /// Global monotonically-increasing write sequence number ("timestamp").
    pub seq: u64,
    /// Page-type-specific contents.
    pub info: SpareInfo,
}

/// Symbolic page payload.
///
/// `User` is kept inline because user pages dominate (≈99.9 % of the device,
/// Figure 8); metadata payloads are boxed behind an `Arc` so the per-page
/// footprint stays small for multi-million-page simulations.
#[derive(Clone, Debug)]
pub enum PageData {
    /// User data: identified by logical page and a write version tag. The
    /// version stands in for the actual 4 KB payload and lets tests check
    /// read-your-writes against an oracle.
    User {
        /// Logical page this data belongs to.
        lpn: Lpn,
        /// Monotonic version tag assigned by the application/oracle.
        version: u64,
    },
    /// A metadata payload defined by an upper layer (translation page, Gecko
    /// run page, PVB segment, PVL log page). Downcast with [`PageData::blob`].
    Blob(Arc<dyn Any + Send + Sync>),
}

impl PageData {
    /// Construct a metadata payload.
    pub fn blob_of<T: Any + Send + Sync>(value: T) -> Self {
        PageData::Blob(Arc::new(value))
    }

    /// Downcast a metadata payload to its concrete type.
    pub fn blob<T: Any + Send + Sync>(&self) -> Option<&T> {
        match self {
            PageData::Blob(b) => b.downcast_ref::<T>(),
            PageData::User { .. } => None,
        }
    }

    /// The user payload, if this is a user page.
    pub fn as_user(&self) -> Option<(Lpn, u64)> {
        match self {
            PageData::User { lpn, version } => Some((*lpn, *version)),
            PageData::Blob(_) => None,
        }
    }
}

/// One physical flash page: programmed data + spare area, or free.
#[derive(Clone, Debug, Default)]
pub(crate) struct Page {
    pub(crate) data: Option<PageData>,
    pub(crate) spare: Option<Spare>,
}

impl Page {
    pub(crate) fn is_written(&self) -> bool {
        self.data.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_downcasting() {
        #[derive(Debug, PartialEq)]
        struct TranslationPayload(Vec<u32>);
        let d = PageData::blob_of(TranslationPayload(vec![1, 2, 3]));
        assert_eq!(d.blob::<TranslationPayload>().unwrap().0, vec![1, 2, 3]);
        assert!(d.blob::<String>().is_none());
        assert!(d.as_user().is_none());
    }

    #[test]
    fn user_payload_accessors() {
        let d = PageData::User {
            lpn: Lpn(9),
            version: 42,
        };
        assert_eq!(d.as_user(), Some((Lpn(9), 42)));
        assert!(d.blob::<u32>().is_none());
    }
}
