//! Ready-made baseline FTL configurations (paper §5.3).

use crate::pvb::{FlashPvb, RamPvb};
use crate::pvl::PvlStore;
use flash_sim::{FlashDevice, Geometry};
use geckoftl_core::ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend};
use geckoftl_core::gecko::{GeckoConfig, LogGecko};
use geckoftl_core::validity::MetaSink;

/// The five FTLs of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// DFTL [22]: RAM PVB, battery-backed recovery, greedy GC.
    Dftl,
    /// LazyFTL [26]: RAM PVB, restricted dirty fraction, greedy GC.
    LazyFtl,
    /// µ-FTL [24]: flash-resident PVB, battery, greedy GC.
    MuFtl,
    /// IB-FTL [18]: page validity log + cleaning, restricted dirty fraction,
    /// greedy GC.
    IbFtl,
    /// GeckoFTL: Logarithmic Gecko, checkpoints + deferred synchronization,
    /// metadata-aware GC.
    GeckoFtl,
}

impl BaselineKind {
    /// All five FTLs in the paper's presentation order.
    pub const ALL: [BaselineKind; 5] = [
        BaselineKind::Dftl,
        BaselineKind::LazyFtl,
        BaselineKind::MuFtl,
        BaselineKind::IbFtl,
        BaselineKind::GeckoFtl,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Dftl => "DFTL",
            BaselineKind::LazyFtl => "LazyFTL",
            BaselineKind::MuFtl => "u-FTL",
            BaselineKind::IbFtl => "IB-FTL",
            BaselineKind::GeckoFtl => "GeckoFTL",
        }
    }

    /// Whether the FTL depends on a battery for recovery (Figure 13).
    pub fn needs_battery(self) -> bool {
        matches!(self, BaselineKind::Dftl | BaselineKind::MuFtl)
    }

    /// The FTL's recovery policy in the shared engine.
    pub fn recovery_policy(self) -> RecoveryPolicy {
        match self {
            BaselineKind::Dftl | BaselineKind::MuFtl => RecoveryPolicy::Battery,
            BaselineKind::LazyFtl | BaselineKind::IbFtl => {
                // "we set the proportion of the cache that stores dirty
                // mapping entries for LazyFTL and IB-FTL to 10% of C".
                RecoveryPolicy::RestrictedDirty { fraction: 0.1 }
            }
            BaselineKind::GeckoFtl => RecoveryPolicy::CheckpointDeferred,
        }
    }

    /// The FTL's garbage-collection policy.
    pub fn gc_policy(self) -> GcPolicy {
        match self {
            BaselineKind::GeckoFtl => GcPolicy::MetadataAware,
            _ => GcPolicy::GreedyAll,
        }
    }
}

/// Build an FTL of the given kind with paper-scaled defaults for `geo`.
pub fn build(kind: BaselineKind, geo: Geometry) -> FtlEngine {
    build_with(
        kind,
        geo,
        FtlConfig {
            cache_entries: FtlConfig::scaled_cache_entries(&geo),
            gc_free_threshold: 8,
            gc_policy: kind.gc_policy(),
            recovery: kind.recovery_policy(),
            checkpoint_period: None,
            qos_headroom_blocks: 0,
        },
    )
}

/// Build an FTL of the given kind with an explicit engine configuration
/// (used by the Figure 14 experiment, which resizes caches and equalizes the
/// GC scheme).
pub fn build_with(kind: BaselineKind, geo: Geometry, cfg: FtlConfig) -> FtlEngine {
    match kind {
        BaselineKind::Dftl | BaselineKind::LazyFtl => FtlEngine::format(
            geo,
            cfg,
            ValidityBackend::External(Box::new(RamPvb::new(geo))),
        ),
        BaselineKind::MuFtl => {
            // The flash PVB must be materialized on the same device the
            // engine will use, so build in two steps.
            let mut engine = FtlEngine::format(
                geo,
                cfg,
                ValidityBackend::External(Box::new(RamPvb::new(geo))), // placeholder
            );
            let pvb = engine.with_raw_parts(|dev, bm| FlashPvb::format(geo, dev, bm));
            engine.replace_backend(ValidityBackend::External(Box::new(pvb)));
            engine
        }
        BaselineKind::IbFtl => FtlEngine::format(
            geo,
            cfg,
            ValidityBackend::External(Box::new(PvlStore::new(geo))),
        ),
        BaselineKind::GeckoFtl => {
            let gecko = LogGecko::new(geo, GeckoConfig::paper_default(&geo));
            FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko))
        }
    }
}

/// Build GeckoFTL with an explicit Gecko tuning (Figures 9–12 sweeps).
/// Honors [`GeckoConfig::shards`]: `shards > 1` builds the per-channel
/// sharded validity store instead of a single tree.
pub fn build_geckoftl_tuned(geo: Geometry, cfg: FtlConfig, gecko_cfg: GeckoConfig) -> FtlEngine {
    FtlEngine::format(geo, cfg, ValidityBackend::gecko_for(geo, gecko_cfg))
}

/// A "flash-PVB only" store builder for §5.1's apples-to-apples comparison
/// of Logarithmic Gecko vs a flash-resident PVB outside the full engine.
pub fn format_flash_pvb(geo: Geometry, dev: &mut FlashDevice, sink: &mut dyn MetaSink) -> FlashPvb {
    FlashPvb::format(geo, dev, sink)
}
