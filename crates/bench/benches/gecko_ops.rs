//! Criterion micro-benchmarks of the core data structures: Logarithmic
//! Gecko updates/queries/merges, the mapping cache, and bitmaps.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flash_sim::{BlockId, FlashDevice, Geometry, Ppn};
use geckoftl_core::cache::{CacheEntry, MappingCache};
use geckoftl_core::gecko::{Bitmap, GeckoConfig, LogGecko};
use geckoftl_core::validity::FlatMetaSink;

fn small_cfg(geo: &Geometry) -> GeckoConfig {
    GeckoConfig {
        page_header_bytes: geo.page_bytes - 256, // small pages → real merges
        ..GeckoConfig::paper_default(geo)
    }
}

fn bench_gecko_updates(c: &mut Criterion) {
    let geo = Geometry::small();
    c.bench_function("gecko_mark_invalid", |b| {
        let mut dev = FlashDevice::new(geo);
        let mut sink = FlatMetaSink::new((3000..4096).map(BlockId).collect());
        let mut gecko = LogGecko::new(geo, small_cfg(&geo));
        let mut x = 0u64;
        b.iter(|| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (3000 * geo.pages_per_block as u64);
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
        });
    });
}

fn bench_gecko_query(c: &mut Criterion) {
    let geo = Geometry::small();
    // One pre-loaded structure per query engine: the fast path
    // (bloom + fence pointers), the pre-optimization linear scan, and the
    // probe-every-run naive oracle (run on the fast instance).
    let variants = [
        ("gecko_gc_query_fast", true),
        ("gecko_gc_query_legacy", false),
    ];
    for (name, fast) in variants {
        let mut dev = FlashDevice::new(geo);
        let mut sink = FlatMetaSink::new((3000..4096).map(BlockId).collect());
        let cfg = GeckoConfig {
            fast_path: fast,
            bloom_bits_per_key: if fast { 8 } else { 0 },
            ..small_cfg(&geo)
        };
        let mut gecko = LogGecko::new(geo, cfg);
        let mut x = 7u64;
        for _ in 0..200_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (3000 * geo.pages_per_block as u64);
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
        }
        c.bench_function(name, |b| {
            let mut blk = 0u32;
            b.iter(|| {
                blk = (blk + 1) % 3000;
                black_box(gecko.gc_query(&mut dev, BlockId(blk)));
            });
        });
        if fast {
            c.bench_function("gecko_gc_query_batch8", |b| {
                let mut blk = 0u32;
                b.iter(|| {
                    let blocks: Vec<BlockId> =
                        (0..8).map(|i| BlockId((blk + i * 311) % 3000)).collect();
                    blk = (blk + 1) % 3000;
                    black_box(gecko.gc_query_batch(&mut dev, &blocks));
                });
            });
            c.bench_function("gecko_gc_query_naive_oracle", |b| {
                let mut blk = 0u32;
                b.iter(|| {
                    blk = (blk + 1) % 3000;
                    black_box(gecko.gc_query_naive(&mut dev, BlockId(blk)));
                });
            });
        }
    }
}

fn bench_merge_pump(c: &mut Criterion) {
    // Steady-state incremental merging: updates stream in while the
    // scheduler is pumped with a bounded step per update — the engine's
    // piggyback pattern. Measures the CPU cost of the state machine
    // (planning, resumable read/fold/write, install), not simulated IO.
    c.bench_function("gecko_update_with_merge_pump", |b| {
        let geo = Geometry::small();
        let mut dev = FlashDevice::new(geo);
        let mut sink = FlatMetaSink::new((3000..4096).map(BlockId).collect());
        let cfg = GeckoConfig {
            sync_merge: false,
            ..small_cfg(&geo)
        };
        let mut gecko = LogGecko::new(geo, cfg);
        let mut x = 11u64;
        b.iter(|| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (3000 * geo.pages_per_block as u64);
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
            gecko.pump_merges(&mut dev, &mut sink, 4);
        });
    });
}

fn bench_cache_ops(c: &mut Criterion) {
    c.bench_function("cache_insert_evict", |b| {
        let mut cache = MappingCache::new(4096);
        let mut lpn = 0u32;
        b.iter(|| {
            if cache.is_full() {
                cache.pop_lru();
            }
            cache.insert(CacheEntry::clean(flash_sim::Lpn(lpn), Ppn(lpn)));
            lpn = lpn.wrapping_add(1);
        });
    });
    c.bench_function("cache_lookup_promote", |b| {
        let mut cache = MappingCache::new(4096);
        for i in 0..4096u32 {
            cache.insert(CacheEntry::clean(flash_sim::Lpn(i), Ppn(i)));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 97) % 4096;
            black_box(cache.lookup(flash_sim::Lpn(i)));
            cache.promote(flash_sim::Lpn(i));
        });
    });
}

fn bench_bitmap(c: &mut Criterion) {
    c.bench_function("bitmap_or_128", |b| {
        let mut a = Bitmap::new(128);
        let mut other = Bitmap::new(128);
        for i in (0..128).step_by(3) {
            other.set(i);
        }
        b.iter(|| {
            a.or_assign(black_box(&other));
        });
    });
}

fn bench_translation_sync(c: &mut Criterion) {
    use geckoftl_core::ftl::BlockManager;
    use geckoftl_core::translation::TranslationTable;
    let geo = Geometry::small();
    let mut dev = FlashDevice::new(geo);
    let mut bm = BlockManager::new(geo);
    let mut tt = TranslationTable::new(geo);
    tt.format(&mut dev, &mut bm);
    c.bench_function("translation_sync_8_updates", |b| {
        let mut x = 0u32;
        b.iter(|| {
            // 8 dirty entries of one translation page, like a typical batch.
            let updates: Vec<(flash_sim::Lpn, Ppn)> = (0..8)
                .map(|i| {
                    (
                        flash_sim::Lpn(i * 100),
                        Ppn(x.wrapping_add(i) % 100_000 + 1),
                    )
                })
                .collect();
            x = x.wrapping_add(17);
            black_box(tt.synchronize(&mut dev, &mut bm, 0, &updates));
        });
    });
}

fn bench_pvl(c: &mut Criterion) {
    use ftl_baselines::PvlStore;
    use geckoftl_core::validity::ValidityStore;
    let geo = Geometry::small();
    c.bench_function("pvl_mark_invalid", |b| {
        let mut dev = FlashDevice::new(geo);
        let mut sink = FlatMetaSink::new((3000..4096).map(BlockId).collect());
        let mut pvl = PvlStore::new(geo);
        let mut x = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (3000 * geo.pages_per_block as u64);
            pvl.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
            // Periodic erases keep entries expirable, as a real GC would.
            i += 1;
            if i.is_multiple_of(64) {
                pvl.note_erase(&mut dev, &mut sink, BlockId(((x >> 20) % 3000) as u32));
            }
        });
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gecko_updates, bench_gecko_query, bench_merge_pump, bench_cache_ops,
        bench_bitmap, bench_translation_sync, bench_pvl
}
criterion_main!(benches);
