//! Seeded scenario mutations: the search moves of the feedback-driven
//! fuzzer.
//!
//! Every mutation is a small, deterministic edit of a [`Scenario`] — op
//! kind/key point edits (including TRIMs), overwrite storms, TRIM waves,
//! key-skew remaps, idle gaps, fault-plan edits (add/move/drop a write or
//! erase fault), crash point edits, truncation/extension — plus
//! [`crossover`], which splices two corpus parents. All randomness flows
//! from the caller's seeded [`StdRng`], so a fuzz run is reproducible from
//! its seed alone.

use super::scenario::Scenario;
use flash_sim::{EraseFault, Lpn, WriteFault};
use ftl_workloads::{Trace, WorkloadOp};
use rand::{rngs::StdRng, Rng};

/// Bounds the mutator needs: the logical key space and rough fault-index
/// ranges that have a chance of firing on the tiny geometry.
#[derive(Clone, Copy, Debug)]
pub struct MutateBounds {
    /// Logical pages addressable by the engine under test.
    pub logical_pages: u32,
    /// Cap on trace length (keeps scenarios replayable in milliseconds).
    pub max_ops: usize,
}

impl Default for MutateBounds {
    fn default() -> Self {
        MutateBounds {
            logical_pages: 512,
            max_ops: 4_000,
        }
    }
}

/// A seed scenario: `n` uniform writes over the whole key space.
pub fn seed_uniform(rng: &mut StdRng, b: &MutateBounds, n: usize) -> Scenario {
    let mut trace = Trace::default();
    for _ in 0..n {
        trace.push(WorkloadOp::Write(Lpn(rng.gen_range(0u32..b.logical_pages))));
    }
    Scenario::from_trace(trace)
}

/// A seed scenario: a TRIM-less overwrite storm — a hot range hammered with
/// updates (worst case for GC victim picking), mixed with occasional reads.
pub fn seed_storm(rng: &mut StdRng, b: &MutateBounds, n: usize) -> Scenario {
    let hot = rng.gen_range(4u32..32.min(b.logical_pages));
    let base = rng.gen_range(0u32..b.logical_pages - hot);
    let mut trace = Trace::default();
    for _ in 0..n {
        let lpn = Lpn(base + rng.gen_range(0u32..hot));
        if rng.gen_bool(0.15) {
            trace.push(WorkloadOp::Read(lpn));
        } else {
            trace.push(WorkloadOp::Write(lpn));
        }
    }
    Scenario::from_trace(trace)
}

/// A seed scenario: TRIM waves — regions written sequentially, then
/// discarded wholesale, interleaved with uniform traffic. Stresses the
/// erase-marker path and trim-vs-GC interleavings.
pub fn seed_trim_wave(rng: &mut StdRng, b: &MutateBounds, n: usize) -> Scenario {
    let mut trace = Trace::default();
    let mut left = n;
    while left > 0 {
        let region = rng.gen_range(8u32..48.min(b.logical_pages));
        let base = rng.gen_range(0u32..b.logical_pages - region);
        for i in 0..region.min(left as u32) {
            trace.push(WorkloadOp::Write(Lpn(base + i)));
        }
        for i in 0..region.min(left as u32) {
            trace.push(WorkloadOp::Trim(Lpn(base + i)));
        }
        for _ in 0..16.min(left) {
            trace.push(WorkloadOp::Write(Lpn(rng.gen_range(0u32..b.logical_pages))));
        }
        left = left.saturating_sub(region as usize * 2 + 16);
    }
    Scenario::from_trace(trace)
}

/// A seed scenario: bursts of writes separated by idle gaps, so merge work
/// happens off the write path and crash points land inside idle merges.
pub fn seed_bursty(rng: &mut StdRng, b: &MutateBounds, n: usize) -> Scenario {
    let mut trace = Trace::default();
    let mut left = n;
    while left > 0 {
        let burst = rng.gen_range(8usize..64).min(left);
        for _ in 0..burst {
            trace.push(WorkloadOp::Write(Lpn(rng.gen_range(0u32..b.logical_pages))));
        }
        left -= burst;
        trace.push(WorkloadOp::Idle(rng.gen_range(1u32..40)));
    }
    Scenario::from_trace(trace)
}

fn mutate_ops(sc: &mut Scenario, rng: &mut StdRng, b: &MutateBounds) {
    let ops: Vec<WorkloadOp> = sc.trace.ops().to_vec();
    let mut ops = ops;
    match rng.gen_range(0u32..6) {
        // Point edit: rewrite one op's key or kind.
        0 if !ops.is_empty() => {
            let i = rng.gen_range(0usize..ops.len());
            let lpn = Lpn(rng.gen_range(0u32..b.logical_pages));
            ops[i] = match rng.gen_range(0u32..4) {
                0 => WorkloadOp::Write(lpn),
                1 => WorkloadOp::Read(lpn),
                2 => WorkloadOp::Trim(lpn),
                _ => WorkloadOp::Idle(rng.gen_range(1u32..60)),
            };
        }
        // Inject an overwrite storm at a random position.
        1 => {
            let hot = rng.gen_range(2u32..16.min(b.logical_pages));
            let base = rng.gen_range(0u32..b.logical_pages - hot);
            let at = rng.gen_range(0usize..ops.len() + 1);
            let burst: Vec<WorkloadOp> = (0..rng.gen_range(16usize..128))
                .map(|_| WorkloadOp::Write(Lpn(base + rng.gen_range(0u32..hot))))
                .collect();
            ops.splice(at..at, burst);
        }
        // Insert or remove an idle gap.
        2 => {
            if rng.gen_bool(0.5) || ops.is_empty() {
                let at = rng.gen_range(0usize..ops.len() + 1);
                ops.insert(at, WorkloadOp::Idle(rng.gen_range(1u32..80)));
            } else if let Some(i) = ops.iter().position(|o| matches!(o, WorkloadOp::Idle(_))) {
                ops.remove(i);
            }
        }
        // Key-skew remap: squeeze a slice of the trace into a narrow band.
        3 if !ops.is_empty() => {
            let start = rng.gen_range(0usize..ops.len());
            let end = (start + rng.gen_range(8usize..256)).min(ops.len());
            let band = rng.gen_range(2u32..24.min(b.logical_pages));
            let base = rng.gen_range(0u32..b.logical_pages - band);
            for op in &mut ops[start..end] {
                match op {
                    WorkloadOp::Write(l) | WorkloadOp::Read(l) | WorkloadOp::Trim(l) => {
                        *l = Lpn(base + l.0 % band)
                    }
                    WorkloadOp::Idle(_) => {}
                }
            }
        }
        // Inject a TRIM wave: discard a contiguous just-written region.
        4 => {
            let region = rng.gen_range(4u32..32.min(b.logical_pages));
            let base = rng.gen_range(0u32..b.logical_pages - region);
            let at = rng.gen_range(0usize..ops.len() + 1);
            let wave: Vec<WorkloadOp> = (0..region)
                .map(|i| WorkloadOp::Write(Lpn(base + i)))
                .chain((0..region).map(|i| WorkloadOp::Trim(Lpn(base + i))))
                .collect();
            ops.splice(at..at, wave);
        }
        // Truncate or extend.
        _ => {
            if rng.gen_bool(0.5) && ops.len() > 32 {
                let keep = rng.gen_range(16usize..ops.len());
                ops.truncate(keep);
            } else {
                for _ in 0..rng.gen_range(16usize..128) {
                    ops.push(WorkloadOp::Write(Lpn(rng.gen_range(0u32..b.logical_pages))));
                }
            }
        }
    }
    if ops.len() > b.max_ops {
        ops.truncate(b.max_ops);
    }
    sc.trace = Trace::from_ops(ops);
}

fn mutate_faults(sc: &mut Scenario, rng: &mut StdRng) {
    // Plausible attempt ranges on the tiny geometry: each user write costs
    // ~1 device write plus amplification; erases trail at roughly WA/pages
    // per block. Aim inside the run so scheduled faults actually fire.
    let write_span = (sc.trace.writes() as u64 * 3).max(64);
    let erase_span = (write_span / 16).max(8);
    match rng.gen_range(0u32..4) {
        0 => {
            let fault = match rng.gen_range(0u32..3) {
                0 => WriteFault::ProgramFail,
                1 => WriteFault::TornData,
                _ => WriteFault::TornSpare,
            };
            sc.write_faults
                .push((rng.gen_range(0u64..write_span), fault));
        }
        1 => {
            let fault = if rng.gen_bool(0.5) {
                EraseFault::Fail
            } else {
                EraseFault::Crash
            };
            sc.erase_faults
                .push((rng.gen_range(0u64..erase_span), fault));
        }
        2 if !sc.write_faults.is_empty() => {
            let i = rng.gen_range(0usize..sc.write_faults.len());
            if rng.gen_bool(0.5) {
                sc.write_faults.remove(i);
            } else {
                sc.write_faults[i].0 = rng.gen_range(0u64..write_span);
            }
        }
        _ if !sc.erase_faults.is_empty() => {
            let i = rng.gen_range(0usize..sc.erase_faults.len());
            if rng.gen_bool(0.5) {
                sc.erase_faults.remove(i);
            } else {
                sc.erase_faults[i].0 = rng.gen_range(0u64..erase_span);
            }
        }
        _ => {}
    }
}

fn mutate_crash_point(sc: &mut Scenario, rng: &mut StdRng) {
    let n = sc.op_count();
    sc.crash_after = match (sc.crash_after, rng.gen_range(0u32..3)) {
        (_, 0) if n > 0 => Some(rng.gen_range(0usize..n)),
        (Some(at), 1) if n > 0 => Some((at + rng.gen_range(0usize..n)) % n),
        _ => None,
    };
}

/// Produce a mutated child of `parent`: 1–3 random edits drawn from the op,
/// fault-plan and crash-point move sets.
pub fn mutate(parent: &Scenario, rng: &mut StdRng, b: &MutateBounds) -> Scenario {
    let mut sc = parent.clone();
    for _ in 0..rng.gen_range(1u32..4) {
        match rng.gen_range(0u32..6) {
            0..=2 => mutate_ops(&mut sc, rng, b),
            3 => mutate_faults(&mut sc, rng),
            4 => mutate_crash_point(&mut sc, rng),
            _ => sc.cache_entries = rng.gen_range(16usize..256),
        }
    }
    sc
}

/// Splice two parents: a prefix of `a`'s trace followed by a suffix of
/// `b`'s, with `a`'s fault plan and a crash point re-drawn inside the
/// child. Crossover jumps the search between basins two lineages found
/// separately — e.g. `a`'s GC-pressure prefix into `b`'s trim-wave tail.
pub fn crossover(a: &Scenario, b: &Scenario, rng: &mut StdRng, bounds: &MutateBounds) -> Scenario {
    let a_ops = a.trace.ops();
    let b_ops = b.trace.ops();
    let cut_a = if a_ops.is_empty() {
        0
    } else {
        rng.gen_range(0usize..a_ops.len() + 1)
    };
    let cut_b = if b_ops.is_empty() {
        0
    } else {
        rng.gen_range(0usize..b_ops.len())
    };
    let mut ops: Vec<WorkloadOp> = a_ops[..cut_a].to_vec();
    ops.extend_from_slice(&b_ops[cut_b..]);
    if ops.len() > bounds.max_ops {
        ops.truncate(bounds.max_ops);
    }
    let mut child = Scenario::from_trace(Trace::from_ops(ops));
    child.cache_entries = if rng.gen_bool(0.5) {
        a.cache_entries
    } else {
        b.cache_entries
    };
    child.write_faults = a.write_faults.clone();
    child.erase_faults = a.erase_faults.clone();
    mutate_crash_point(&mut child, rng);
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let b = MutateBounds::default();
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sc = seed_storm(&mut rng, &b, 300);
            for _ in 0..20 {
                sc = mutate(&sc, &mut rng, &b);
            }
            sc.to_text()
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }

    #[test]
    fn crossover_splices_and_round_trips() {
        let b = MutateBounds::default();
        let mut rng = StdRng::seed_from_u64(7);
        let pa = seed_storm(&mut rng, &b, 200);
        let pb = seed_trim_wave(&mut rng, &b, 200);
        let child = crossover(&pa, &pb, &mut rng, &b);
        assert!(child.op_count() > 0);
        assert!(child.op_count() <= b.max_ops);
        // The child keeps parent a's fault plan and is fully serializable.
        assert_eq!(child.write_faults, pa.write_faults);
        let rt = Scenario::from_text(&child.to_text()).expect("round trip");
        assert_eq!(rt.to_text(), child.to_text());
    }

    #[test]
    fn trim_wave_seed_contains_trims() {
        let b = MutateBounds::default();
        let mut rng = StdRng::seed_from_u64(3);
        let sc = seed_trim_wave(&mut rng, &b, 400);
        assert!(sc.trace.trims() > 0, "wave seed must emit TRIMs");
        let rt = Scenario::from_text(&sc.to_text()).expect("round trip");
        assert_eq!(rt.to_text(), sc.to_text());
    }

    #[test]
    fn seeds_stay_in_bounds() {
        let b = MutateBounds {
            logical_pages: 100,
            max_ops: 200,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for sc in [
            seed_uniform(&mut rng, &b, 150),
            seed_storm(&mut rng, &b, 150),
            seed_bursty(&mut rng, &b, 150),
        ] {
            for op in &sc.trace {
                if let WorkloadOp::Write(l) | WorkloadOp::Read(l) = op {
                    assert!(l.0 < 100);
                }
            }
        }
    }
}
