//! The RAM-resident LRU mapping cache (paper §4, §4.3).
//!
//! Each cached mapping entry carries three flags:
//!
//! * **dirty** — the flash-resident translation table does not yet reflect
//!   this entry's physical address;
//! * **UIP** (*Unidentified Invalid Page*, §4.1) — some before-image of this
//!   logical page has not yet been reported to the page-validity store;
//! * **uncertain** — the entry was recreated by recovery and its dirty/UIP
//!   flags are assumed-true until a synchronization operation checks them
//!   (Appendix C.3).
//!
//! The cache is "implemented as a tree to enable efficient range queries for
//! mapping entries on a particular translation page" (paper footnote 6):
//! a `BTreeMap` keyed by LPN indexes an intrusive doubly-linked LRU list.
//!
//! **Checkpoints.** §4.3 bounds recovery's backwards scan to `2·C` spare
//! reads by synchronizing, every `C` cache operations, all dirty entries
//! that have not been *written* since the previous checkpoint. We track a
//! `written_epoch` per entry and let the engine sweep entries with
//! `written_epoch < current_epoch` at each checkpoint — same O(C)-per-C-ops
//! cost as the paper's checkpoint-symbol walk of the LRU queue, but also
//! correct for dirty entries that were re-promoted by reads.

use flash_sim::{Lpn, Ppn};
use std::collections::BTreeMap;

const NIL: usize = usize::MAX;

/// One cached logical→physical mapping entry with its flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// Logical page.
    pub lpn: Lpn,
    /// Most recent physical location of the page.
    pub ppn: Ppn,
    /// Entry differs from the flash-resident translation table.
    pub dirty: bool,
    /// A before-image of this page is not yet reported invalid (§4.1).
    pub uip: bool,
    /// Flags are post-recovery assumptions pending verification (App. C.3).
    pub uncertain: bool,
    /// Checkpoint epoch of the last *write* access (not read promotions).
    pub written_epoch: u64,
}

impl CacheEntry {
    /// Entry created when an application read misses the cache: clean.
    pub fn clean(lpn: Lpn, ppn: Ppn) -> Self {
        CacheEntry {
            lpn,
            ppn,
            dirty: false,
            uip: false,
            uncertain: false,
            written_epoch: 0,
        }
    }
}

#[derive(Clone, Debug)]
struct Node {
    entry: CacheEntry,
    prev: usize,
    next: usize,
}

/// Fixed-capacity LRU cache of mapping entries.
#[derive(Clone, Debug)]
pub struct MappingCache {
    capacity: usize,
    map: BTreeMap<Lpn, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    dirty_count: usize,
}

impl MappingCache {
    /// An empty cache holding up to `capacity` (`C`) entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "cache must hold at least one entry");
        MappingCache {
            capacity,
            map: BTreeMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            dirty_count: 0,
        }
    }

    /// `C`: maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether an insert would exceed capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.capacity
    }

    /// Number of dirty entries currently cached.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Integrated-RAM footprint (paper: 8 bytes per cached entry).
    pub fn ram_bytes(&self) -> u64 {
        self.capacity as u64 * 8
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Look up an entry without touching LRU order.
    pub fn lookup(&self, lpn: Lpn) -> Option<&CacheEntry> {
        self.map.get(&lpn).map(|&i| &self.nodes[i].entry)
    }

    /// Move an entry to the MRU position (an LRU "touch").
    pub fn promote(&mut self, lpn: Lpn) {
        if let Some(&idx) = self.map.get(&lpn) {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    /// Mutate an entry in place (no LRU movement), keeping the dirty count
    /// consistent. Returns `None` if the entry is not cached.
    pub fn update_entry<R>(&mut self, lpn: Lpn, f: impl FnOnce(&mut CacheEntry) -> R) -> Option<R> {
        let &idx = self.map.get(&lpn)?;
        let was_dirty = self.nodes[idx].entry.dirty;
        let r = f(&mut self.nodes[idx].entry);
        debug_assert_eq!(self.nodes[idx].entry.lpn, lpn, "entry lpn must not change");
        let is_dirty = self.nodes[idx].entry.dirty;
        match (was_dirty, is_dirty) {
            (false, true) => self.dirty_count += 1,
            (true, false) => self.dirty_count -= 1,
            _ => {}
        }
        Some(r)
    }

    /// Insert a new entry at the MRU position. Panics if the LPN is already
    /// cached or the cache is full — callers evict first.
    pub fn insert(&mut self, entry: CacheEntry) {
        assert!(!self.is_full(), "insert into full cache — evict first");
        assert!(
            !self.map.contains_key(&entry.lpn),
            "duplicate insert for {:?}",
            entry.lpn
        );
        if entry.dirty {
            self.dirty_count += 1;
        }
        let idx = if let Some(i) = self.free.pop() {
            self.nodes[i] = Node {
                entry,
                prev: NIL,
                next: NIL,
            };
            i
        } else {
            self.nodes.push(Node {
                entry,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        };
        self.map.insert(entry.lpn, idx);
        self.push_front(idx);
    }

    /// Remove and return a specific entry.
    pub fn remove(&mut self, lpn: Lpn) -> Option<CacheEntry> {
        let idx = self.map.remove(&lpn)?;
        self.unlink(idx);
        self.free.push(idx);
        let entry = self.nodes[idx].entry;
        if entry.dirty {
            self.dirty_count -= 1;
        }
        Some(entry)
    }

    /// The least-recently-used entry, if any.
    pub fn peek_lru(&self) -> Option<&CacheEntry> {
        (self.tail != NIL).then(|| &self.nodes[self.tail].entry)
    }

    /// Remove and return the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<CacheEntry> {
        let lpn = self.peek_lru()?.lpn;
        self.remove(lpn)
    }

    /// All cached LPNs in `[lo, hi)` (used to batch a synchronization
    /// operation over one translation page; dirty-only filtering is the
    /// caller's choice via [`MappingCache::lookup`]).
    pub fn dirty_lpns_in_range(&self, lo: Lpn, hi: Lpn) -> Vec<Lpn> {
        self.map
            .range(lo..hi)
            .filter(|(_, &idx)| self.nodes[idx].entry.dirty)
            .map(|(lpn, _)| *lpn)
            .collect()
    }

    /// Dirty entries whose last write predates `epoch` — the checkpoint
    /// sweep set (§4.3).
    pub fn dirty_written_before(&self, epoch: u64) -> Vec<Lpn> {
        self.iter_lru_order()
            .filter(|e| e.dirty && e.written_epoch < epoch)
            .map(|e| e.lpn)
            .collect()
    }

    /// The oldest (closest to LRU end) dirty entry, if any — used by the
    /// restricted-dirty policy of LazyFTL / IB-FTL.
    pub fn oldest_dirty(&self) -> Option<&CacheEntry> {
        self.iter_lru_order().find(|e| e.dirty)
    }

    /// Iterate entries from least- to most-recently used.
    pub fn iter_lru_order(&self) -> LruIter<'_> {
        LruIter {
            cache: self,
            cursor: self.tail,
        }
    }

    /// Iterate all entries in LPN order.
    pub fn iter_by_lpn(&self) -> impl Iterator<Item = &CacheEntry> {
        self.map.values().map(|&i| &self.nodes[i].entry)
    }
}

/// Iterator over cache entries in LRU→MRU order.
pub struct LruIter<'a> {
    cache: &'a MappingCache,
    cursor: usize,
}

impl<'a> Iterator for LruIter<'a> {
    type Item = &'a CacheEntry;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == NIL {
            return None;
        }
        let node = &self.cache.nodes[self.cursor];
        self.cursor = node.prev;
        Some(&node.entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(lpn: u32, ppn: u32, dirty: bool) -> CacheEntry {
        CacheEntry {
            lpn: Lpn(lpn),
            ppn: Ppn(ppn),
            dirty,
            uip: false,
            uncertain: false,
            written_epoch: 0,
        }
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = MappingCache::new(3);
        c.insert(entry(1, 10, false));
        c.insert(entry(2, 20, false));
        c.insert(entry(3, 30, false));
        assert!(c.is_full());
        c.promote(Lpn(1)); // order now (LRU→MRU): 2, 3, 1
        assert_eq!(c.pop_lru().unwrap().lpn, Lpn(2));
        assert_eq!(c.pop_lru().unwrap().lpn, Lpn(3));
        assert_eq!(c.pop_lru().unwrap().lpn, Lpn(1));
        assert!(c.pop_lru().is_none());
    }

    #[test]
    fn dirty_count_tracks_flag_changes() {
        let mut c = MappingCache::new(4);
        c.insert(entry(1, 10, true));
        c.insert(entry(2, 20, false));
        assert_eq!(c.dirty_count(), 1);
        c.update_entry(Lpn(2), |e| e.dirty = true);
        assert_eq!(c.dirty_count(), 2);
        c.update_entry(Lpn(1), |e| e.dirty = false);
        assert_eq!(c.dirty_count(), 1);
        c.remove(Lpn(2));
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn range_query_finds_only_dirty_entries_in_tpage() {
        let mut c = MappingCache::new(8);
        c.insert(entry(5, 1, true));
        c.insert(entry(6, 2, false));
        c.insert(entry(7, 3, true));
        c.insert(entry(1029, 4, true)); // outside [0, 1024)
        let lpns = c.dirty_lpns_in_range(Lpn(0), Lpn(1024));
        assert_eq!(lpns, vec![Lpn(5), Lpn(7)]);
    }

    #[test]
    fn checkpoint_sweep_selects_stale_dirty_entries() {
        let mut c = MappingCache::new(8);
        let mut e1 = entry(1, 1, true);
        e1.written_epoch = 0;
        let mut e2 = entry(2, 2, true);
        e2.written_epoch = 2;
        let mut e3 = entry(3, 3, false);
        e3.written_epoch = 0;
        c.insert(e1);
        c.insert(e2);
        c.insert(e3);
        assert_eq!(c.dirty_written_before(2), vec![Lpn(1)]);
    }

    #[test]
    fn reinsertion_after_removal_reuses_slots() {
        let mut c = MappingCache::new(2);
        c.insert(entry(1, 1, false));
        c.insert(entry(2, 2, false));
        c.remove(Lpn(1));
        c.insert(entry(3, 3, false));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(Lpn(3)).is_some());
        // Backing storage did not grow beyond capacity.
        assert!(c.nodes.len() <= 2);
    }

    #[test]
    fn oldest_dirty_walks_from_lru_end() {
        let mut c = MappingCache::new(4);
        c.insert(entry(1, 1, false));
        c.insert(entry(2, 2, true));
        c.insert(entry(3, 3, true));
        assert_eq!(c.oldest_dirty().unwrap().lpn, Lpn(2));
        c.promote(Lpn(2));
        assert_eq!(c.oldest_dirty().unwrap().lpn, Lpn(3));
    }

    #[test]
    #[should_panic(expected = "evict first")]
    fn insert_into_full_cache_panics() {
        let mut c = MappingCache::new(1);
        c.insert(entry(1, 1, false));
        c.insert(entry(2, 2, false));
    }

    #[test]
    fn lru_iteration_order_is_stable() {
        let mut c = MappingCache::new(4);
        for i in 0..4 {
            c.insert(entry(i, i, false));
        }
        let order: Vec<u32> = c.iter_lru_order().map(|e| e.lpn.0).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        let by_lpn: Vec<u32> = c.iter_by_lpn().map(|e| e.lpn.0).collect();
        assert_eq!(by_lpn, vec![0, 1, 2, 3]);
    }
}
