//! A thread-safe front-end over [`FtlEngine`]: a `&self` read path for
//! host threads plus a background worker that drains merge slices and
//! stages GC plans off the host path.
//!
//! # Structure
//!
//! The simulated device is inherently single-threaded (every IO advances
//! the shared clock), so the engine itself sits behind one [`Mutex`] and
//! host operations serialize on it. What the front-end adds:
//!
//! * **A lock-free-ish read path.** Completed writes are published into
//!   per-LPN-range *publish tables* — `shards` independent
//!   `RwLock<HashMap<Lpn, u64>>`, shard = `lpn % shards` — so
//!   [`ConcurrentFtl::read_published`] answers read-your-writes queries
//!   with only a shard read lock, never touching the engine lock. This is
//!   the sharded-LRU pattern scaled down to the simulator: the publish
//!   table plays the role of the translation cache's read-mostly tier,
//!   and writers update exactly one shard.
//! * **A maintenance worker.** A background thread repeatedly `try_lock`s
//!   the engine and, when the host side is not using it, donates idle
//!   quanta ([`FtlEngine::idle_tick`]) and stages the next GC burst
//!   ([`FtlEngine::prepare_gc`]). `try_lock` (not `lock`) keeps the
//!   worker from ever making a host op wait longer than one bounded
//!   quantum.
//!
//! # Lock order
//!
//! Engine lock → publish-table shard lock, never the reverse; the worker
//! takes only the engine lock. See `docs/CONCURRENCY.md` for the full
//! ordering and the per-channel time-domain rules.

use super::{FtlEngine, TenantId};
use flash_sim::Lpn;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;

/// Shared state between the front-end handle and the worker thread.
struct Shared {
    engine: Mutex<FtlEngine>,
    /// Published `lpn → version`, sharded by `lpn % shards.len()`.
    published: Vec<RwLock<HashMap<Lpn, u64>>>,
    stop: AtomicBool,
    /// Background idle quanta donated by the worker (telemetry).
    worker_quanta: AtomicU64,
}

impl Shared {
    fn shard_of(&self, lpn: Lpn) -> usize {
        (lpn.0 as usize) % self.published.len()
    }
}

/// Thread-safe engine front-end. Cloneable-by-`Arc` handles are obtained
/// from [`ConcurrentFtl::new`]; the worker stops when the front-end drops.
pub struct ConcurrentFtl {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
}

impl ConcurrentFtl {
    /// Wrap an engine. `read_shards` sizes the publish tables (one
    /// `RwLock` per LPN-range shard; a few × the writer-thread count is
    /// plenty). `with_worker` starts the background maintenance thread.
    pub fn new(engine: FtlEngine, read_shards: usize, with_worker: bool) -> Self {
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            published: (0..read_shards.max(1))
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            stop: AtomicBool::new(false),
            worker_quanta: AtomicU64::new(0),
        });
        let worker = with_worker.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        });
        ConcurrentFtl { shared, worker }
    }

    /// Host write: serialize on the engine, then publish the new version
    /// to the LPN's shard so concurrent `&self` readers observe it.
    pub fn write(&self, lpn: Lpn, version: u64) {
        let mut engine = self.lock_engine();
        engine.write(lpn, version);
        drop(engine); // engine lock → shard lock, and release eagerly
        let shard = self.shared.shard_of(lpn);
        self.shared.published[shard]
            .write()
            .expect("publish shard poisoned")
            .insert(lpn, version);
    }

    /// [`ConcurrentFtl::write`] with the op charged to `tenant`.
    pub fn write_for(&self, tenant: TenantId, lpn: Lpn, version: u64) {
        let mut engine = self.lock_engine();
        engine.write_for(tenant, lpn, version);
        drop(engine);
        let shard = self.shared.shard_of(lpn);
        self.shared.published[shard]
            .write()
            .expect("publish shard poisoned")
            .insert(lpn, version);
    }

    /// Host TRIM: serialize on the engine, then retract the LPN from its
    /// publish shard so concurrent `&self` readers stop observing the
    /// discarded version. Returns `true` if a mapping existed.
    pub fn trim(&self, lpn: Lpn) -> bool {
        self.trim_for(0, lpn)
    }

    /// [`ConcurrentFtl::trim`] with the op charged to `tenant`.
    pub fn trim_for(&self, tenant: TenantId, lpn: Lpn) -> bool {
        let mut engine = self.lock_engine();
        let had = engine.trim_for(tenant, lpn);
        drop(engine); // engine lock → shard lock, and release eagerly
        let shard = self.shared.shard_of(lpn);
        self.shared.published[shard]
            .write()
            .expect("publish shard poisoned")
            .remove(&lpn);
        had
    }

    /// `&self` read path: the latest *published* version of `lpn`, from
    /// the LPN-shard table alone — no engine lock, no simulated IO.
    /// `None` if no write to `lpn` has been published (the caller falls
    /// back to [`ConcurrentFtl::read`]).
    pub fn read_published(&self, lpn: Lpn) -> Option<u64> {
        let shard = self.shared.shard_of(lpn);
        self.shared.published[shard]
            .read()
            .expect("publish shard poisoned")
            .get(&lpn)
            .copied()
    }

    /// Full read through the engine (charges simulated IO, consults the
    /// device). The authoritative path; also publishes the result so the
    /// next `read_published` of this LPN hits.
    pub fn read(&self, lpn: Lpn) -> Option<u64> {
        let version = self.lock_engine().read(lpn);
        if let Some(v) = version {
            let shard = self.shared.shard_of(lpn);
            self.shared.published[shard]
                .write()
                .expect("publish shard poisoned")
                .insert(lpn, v);
        }
        version
    }

    /// Run a closure under the engine lock (stats, checkpoints, anything
    /// the thin wrappers above don't cover).
    pub fn with_engine<R>(&self, f: impl FnOnce(&mut FtlEngine) -> R) -> R {
        f(&mut self.lock_engine())
    }

    /// Idle quanta the background worker has donated so far.
    pub fn worker_quanta(&self) -> u64 {
        self.shared.worker_quanta.load(Ordering::Relaxed)
    }

    /// Stop the worker and take the engine back out.
    pub fn into_engine(mut self) -> FtlEngine {
        self.stop_worker();
        let shared = Arc::clone(&self.shared);
        drop(self); // releases the front-end's strong reference
        Arc::try_unwrap(shared)
            .ok()
            .expect("all other handles dropped")
            .engine
            .into_inner()
            .expect("engine lock poisoned")
    }

    fn lock_engine(&self) -> MutexGuard<'_, FtlEngine> {
        self.shared.engine.lock().expect("engine lock poisoned")
    }

    fn stop_worker(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ConcurrentFtl {
    fn drop(&mut self) {
        self.stop_worker();
    }
}

fn worker_loop(shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        // try_lock: never queue behind (and thus delay) a host op.
        let Ok(mut engine) = shared.engine.try_lock() else {
            std::thread::yield_now();
            continue;
        };
        let more = engine.idle_tick();
        engine.prepare_gc();
        drop(engine);
        shared.worker_quanta.fetch_add(1, Ordering::Relaxed);
        if !more {
            // Nothing due: park briefly instead of spinning on the lock.
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
    }
}
