//! Composable real-world workload shapes.
//!
//! The basic generators in [`crate::generators`] draw every op from one
//! stationary distribution; real devices see *phases* — diurnal bursts,
//! backup scans, log-rotation overwrite storms, filesystem TRIM waves — and
//! several tenants interleaved on one device. Each shape here is a
//! deterministic, seedable iterator over [`WorkloadOp`] (or tagged
//! `(WorkloadOp, TenantId)` pairs for [`TenantMix`]) so traces recorded from
//! them replay bit-identically.

use crate::generators::WorkloadOp;
use crate::trace::TenantId;
use flash_sim::Lpn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bursty diurnal traffic: alternating busy phases (skewed writes with some
/// reads) and quiet phases (idle ticks the FTL can spend on maintenance).
/// Models the day/night shape of interactive services.
#[derive(Clone, Debug)]
pub struct BurstyDiurnal {
    rng: StdRng,
    logical_pages: u32,
    busy_ops: u32,
    quiet_ticks: u32,
    /// Fraction of the logical space that takes most busy-phase traffic.
    hot_pages: u32,
    /// Remaining ops in the current busy phase; 0 means emit the quiet gap.
    left: u32,
}

impl BurstyDiurnal {
    /// A generator alternating `busy_ops` operations with one
    /// `Idle(quiet_ticks)` gap.
    pub fn new(seed: u64, logical_pages: u64, busy_ops: u32, quiet_ticks: u32) -> Self {
        assert!(busy_ops > 0, "busy phase must contain operations");
        BurstyDiurnal {
            rng: StdRng::seed_from_u64(seed),
            logical_pages: logical_pages as u32,
            busy_ops,
            quiet_ticks,
            hot_pages: ((logical_pages / 5) as u32).max(1),
            left: busy_ops,
        }
    }
}

impl Iterator for BurstyDiurnal {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        if self.left == 0 {
            self.left = self.busy_ops;
            return Some(WorkloadOp::Idle(self.quiet_ticks));
        }
        self.left -= 1;
        // Busy phase: 80 % writes concentrated on a hot fifth of the space,
        // 20 % uniform reads.
        if self.rng.gen_bool(0.2) {
            let lpn = self.rng.gen_range(0..self.logical_pages);
            Some(WorkloadOp::Read(Lpn(lpn)))
        } else if self.rng.gen_bool(0.8) {
            Some(WorkloadOp::Write(Lpn(self
                .rng
                .gen_range(0..self.hot_pages))))
        } else {
            Some(WorkloadOp::Write(Lpn(self
                .rng
                .gen_range(0..self.logical_pages))))
        }
    }
}

/// Sequential read scans (backup / compaction readers): full sweeps of a
/// window, with the window advancing each sweep so successive scans touch
/// fresh addresses.
#[derive(Clone, Debug)]
pub struct Scan {
    logical_pages: u32,
    window: u32,
    start: u32,
    pos: u32,
}

impl Scan {
    /// A scanner reading `window`-page sweeps over `logical_pages`.
    pub fn new(logical_pages: u64, window: u32) -> Self {
        let logical = logical_pages as u32;
        Scan {
            logical_pages: logical,
            window: window.clamp(1, logical),
            start: 0,
            pos: 0,
        }
    }
}

impl Iterator for Scan {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        let lpn = (self.start + self.pos) % self.logical_pages;
        self.pos += 1;
        if self.pos == self.window {
            self.pos = 0;
            self.start = (self.start + self.window) % self.logical_pages;
        }
        Some(WorkloadOp::Read(Lpn(lpn)))
    }
}

/// Overwrite storm: hammer a small window with repeated updates, then hop to
/// another window (log rotation, journal wraparound). Maximally hostile to
/// greedy GC because victim blocks fill with invalid pages in waves.
#[derive(Clone, Debug)]
pub struct OverwriteStorm {
    rng: StdRng,
    logical_pages: u32,
    window: u32,
    burst: u32,
    start: u32,
    left: u32,
}

impl OverwriteStorm {
    /// A storm writing `burst` ops into each `window`-page region before
    /// hopping.
    pub fn new(seed: u64, logical_pages: u64, window: u32, burst: u32) -> Self {
        let logical = logical_pages as u32;
        assert!(burst > 0, "burst must contain operations");
        let mut rng = StdRng::seed_from_u64(seed);
        let window = window.clamp(1, logical);
        let start = rng.gen_range(0..logical);
        OverwriteStorm {
            rng,
            logical_pages: logical,
            window,
            burst,
            start,
            left: burst,
        }
    }
}

impl Iterator for OverwriteStorm {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        if self.left == 0 {
            self.left = self.burst;
            self.start = self.rng.gen_range(0..self.logical_pages);
        }
        self.left -= 1;
        let off = self.rng.gen_range(0..self.window);
        Some(WorkloadOp::Write(Lpn(
            (self.start + off) % self.logical_pages
        )))
    }
}

/// TRIM wave: write a region sequentially, then discard it wholesale
/// (file create / delete cycles). The shape GeckoFTL's erase markers should
/// handle most elegantly: trimmed blocks become fully invalid without any
/// migration.
#[derive(Clone, Debug)]
pub struct TrimWave {
    rng: StdRng,
    logical_pages: u32,
    region: u32,
    start: u32,
    pos: u32,
    trimming: bool,
}

impl TrimWave {
    /// A wave writing then trimming `region`-page extents.
    pub fn new(seed: u64, logical_pages: u64, region: u32) -> Self {
        let logical = logical_pages as u32;
        TrimWave {
            rng: StdRng::seed_from_u64(seed),
            logical_pages: logical,
            region: region.clamp(1, logical),
            start: 0,
            pos: 0,
            trimming: false,
        }
    }
}

impl Iterator for TrimWave {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        let lpn = Lpn((self.start + self.pos) % self.logical_pages);
        let op = if self.trimming {
            WorkloadOp::Trim(lpn)
        } else {
            WorkloadOp::Write(lpn)
        };
        self.pos += 1;
        if self.pos == self.region {
            self.pos = 0;
            if self.trimming {
                // Next extent starts at a random alignment so waves drift
                // across block boundaries.
                self.start = self.rng.gen_range(0..self.logical_pages);
            }
            self.trimming = !self.trimming;
        }
        Some(op)
    }
}

/// Weighted interleave of independent per-tenant streams: each drawn op is
/// tagged with the tenant whose generator produced it, for
/// [`crate::Trace::record_mix`].
pub struct TenantMix {
    rng: StdRng,
    streams: Vec<(TenantId, u32, Box<dyn Iterator<Item = WorkloadOp> + Send>)>,
    total_weight: u32,
}

impl TenantMix {
    /// An interleaver over `(tenant, weight, generator)` streams; each op is
    /// drawn from a stream picked with probability `weight / Σ weights`.
    pub fn new(
        seed: u64,
        streams: Vec<(TenantId, u32, Box<dyn Iterator<Item = WorkloadOp> + Send>)>,
    ) -> Self {
        assert!(!streams.is_empty(), "need at least one stream");
        let total_weight = streams.iter().map(|(_, w, _)| *w).sum();
        assert!(total_weight > 0, "weights must not all be zero");
        TenantMix {
            rng: StdRng::seed_from_u64(seed),
            streams,
            total_weight,
        }
    }
}

impl Iterator for TenantMix {
    type Item = (WorkloadOp, TenantId);

    fn next(&mut self) -> Option<(WorkloadOp, TenantId)> {
        let mut pick = self.rng.gen_range(0..self.total_weight);
        for (tenant, weight, gen) in &mut self.streams {
            if pick < *weight {
                return gen.next().map(|op| (op, *tenant));
            }
            pick -= *weight;
        }
        unreachable!("pick is within the summed weights")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Uniform;
    use crate::trace::Trace;

    #[test]
    fn bursty_diurnal_alternates_phases() {
        let ops: Vec<WorkloadOp> = BurstyDiurnal::new(1, 256, 50, 400).take(153).collect();
        let idles: Vec<usize> = ops
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, WorkloadOp::Idle(_)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(idles, vec![50, 101, 152], "one gap per busy phase");
        assert!(ops.iter().any(|o| matches!(o, WorkloadOp::Read(_))));
    }

    #[test]
    fn scan_sweeps_advance() {
        let ops: Vec<WorkloadOp> = Scan::new(8, 4).take(8).collect();
        let lpns: Vec<u32> = ops
            .iter()
            .map(|o| match o {
                WorkloadOp::Read(l) => l.0,
                other => panic!("scan emitted {other:?}"),
            })
            .collect();
        assert_eq!(lpns, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn overwrite_storm_stays_in_window() {
        let ops: Vec<WorkloadOp> = OverwriteStorm::new(3, 1000, 16, 200).take(200).collect();
        let lpns: Vec<u32> = ops
            .iter()
            .map(|o| match o {
                WorkloadOp::Write(l) => l.0,
                other => panic!("storm emitted {other:?}"),
            })
            .collect();
        let lo = *lpns.iter().min().unwrap();
        for l in &lpns {
            // Window may wrap the space end; span check only for the
            // non-wrapping common case.
            if lo + 16 < 1000 {
                assert!(
                    *l >= lo && *l < lo + 16,
                    "lpn {l} outside [{lo}, {})",
                    lo + 16
                );
            }
        }
    }

    #[test]
    fn trim_wave_discards_what_it_wrote() {
        let t = Trace::record(TrimWave::new(5, 64, 8), 16);
        let writes: Vec<u32> = t
            .iter()
            .filter_map(|o| match o {
                WorkloadOp::Write(l) => Some(l.0),
                _ => None,
            })
            .collect();
        let trims: Vec<u32> = t
            .iter()
            .filter_map(|o| match o {
                WorkloadOp::Trim(l) => Some(l.0),
                _ => None,
            })
            .collect();
        assert_eq!(writes, trims, "each wave trims exactly what it wrote");
        assert_eq!(t.trims(), 8);
    }

    #[test]
    fn tenant_mix_tags_and_weights() {
        let mix = TenantMix::new(
            9,
            vec![
                (1, 3, Box::new(Uniform::new(1, 100))),
                (2, 1, Box::new(Uniform::new(2, 100))),
            ],
        );
        let t = Trace::record_mix(mix, 4000);
        assert_eq!(t.tenant_ids(), vec![1, 2]);
        let t1 = (0..t.len()).filter(|i| t.tenant_of(*i) == 1).count() as f64;
        let share = t1 / 4000.0;
        assert!((0.70..0.80).contains(&share), "tenant 1 share = {share}");
    }

    #[test]
    fn shapes_are_deterministic_per_seed() {
        let a = Trace::record(BurstyDiurnal::new(7, 128, 20, 100), 300);
        let b = Trace::record(BurstyDiurnal::new(7, 128, 20, 100), 300);
        assert_eq!(a, b);
        let a = Trace::record(TrimWave::new(7, 128, 8), 300);
        let b = Trace::record(TrimWave::new(7, 128, 8), 300);
        assert_eq!(a, b);
    }
}
