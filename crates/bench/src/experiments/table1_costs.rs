//! Table 1: per-operation IO costs and RAM requirements of the three
//! page-validity techniques — analytical at paper scale, plus an empirical
//! spot check of the amortized Gecko update cost from simulation.

use crate::harness::{measure_uniform, sim_geometry};
use crate::report::{f3, human_bytes, Table};
use flash_sim::Geometry;
use ftl_baselines::{build_with, BaselineKind};
use geckoftl_core::ftl::FtlConfig;
use geckoftl_core::gecko::analysis::{FlashPvbCostModel, GeckoCostModel};

/// Run the Table-1 reproduction.
pub fn run() -> Vec<Table> {
    let geo = Geometry::paper_2tb();
    let gecko = GeckoCostModel::paper_default(geo);
    let delta = 10.0;

    let mut t = Table::new(
        "Table 1 — per-update / per-GC-query IO and integrated RAM (2 TB device, analytical)",
        &["technique", "upd_reads", "upd_writes", "query_reads", "ram"],
    );
    t.row(vec![
        "RAM-resident PVB".into(),
        "0".into(),
        "0".into(),
        "0".into(),
        human_bytes(geo.total_pages() / 8),
    ]);
    t.row(vec![
        "Flash-resident PVB".into(),
        "1".into(),
        "1".into(),
        "1".into(),
        human_bytes(ftl_models::ram::flash_pvb_dir_bytes(&geo)),
    ]);
    t.row(vec![
        "Logarithmic Gecko".into(),
        f3(gecko.update_reads()),
        f3(gecko.update_writes()),
        f3(gecko.query_reads()),
        human_bytes(
            ftl_models::ram::gecko_run_dir_bytes(&geo) + ftl_models::ram::gecko_buffer_bytes(&geo),
        ),
    ]);

    // Empirical spot check at simulation scale: amortized validity IO per
    // logical update for Gecko vs flash PVB.
    let sim = sim_geometry();
    let cfg = |kind: BaselineKind| FtlConfig {
        cache_entries: FtlConfig::scaled_cache_entries(&sim),
        gc_free_threshold: 8,
        gc_policy: kind.gc_policy(),
        recovery: kind.recovery_policy(),
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let mut e = Table::new(
        "Table 1 (empirical) — measured validity IO per logical update (simulation)",
        &["technique", "reads/update", "writes/update", "validity WA"],
    );
    for kind in [BaselineKind::GeckoFtl, BaselineKind::MuFtl] {
        let mut engine = build_with(kind, sim, cfg(kind));
        let d = measure_uniform(&mut engine, 60_000, 7);
        let mut reads = 0u64;
        let mut writes = 0u64;
        for p in [
            flash_sim::IoPurpose::ValidityUpdate,
            flash_sim::IoPurpose::ValidityQuery,
            flash_sim::IoPurpose::ValidityMerge,
            flash_sim::IoPurpose::ValidityGc,
        ] {
            reads += d.counts(p).page_reads;
            writes += d.counts(p).page_writes;
        }
        let n = d.logical_writes.max(1) as f64;
        e.row(vec![
            (if kind == BaselineKind::GeckoFtl {
                "Logarithmic Gecko"
            } else {
                "Flash-resident PVB"
            })
            .into(),
            f3(reads as f64 / n),
            f3(writes as f64 / n),
            f3(d.wa_breakdown(delta).validity),
        ]);
    }
    // Analytical expectation for the same check.
    let sim_gecko = GeckoCostModel::paper_default(sim);
    e.row(vec![
        "Gecko (model)".into(),
        f3(sim_gecko.update_reads()),
        f3(sim_gecko.update_writes()),
        f3(sim_gecko.update_wa(delta)),
    ]);
    e.row(vec![
        "Flash PVB (model)".into(),
        "1.000".into(),
        "1.000".into(),
        f3(FlashPvbCostModel::update_wa(delta)),
    ]);

    vec![t, e]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn gecko_beats_flash_pvb_empirically() {
        let tables = super::run();
        let emp = &tables[1];
        let gecko_wa: f64 = emp.rows[0][3].parse().unwrap();
        let pvb_wa: f64 = emp.rows[1][3].parse().unwrap();
        assert!(
            gecko_wa < pvb_wa / 5.0,
            "gecko validity WA {gecko_wa} should be ≪ flash PVB {pvb_wa}"
        );
    }
}
