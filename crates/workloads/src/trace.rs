//! Operation-trace record & replay: capture a generated workload once and
//! replay it bit-identically against several FTLs, so comparative
//! experiments (Figure 13/14) feed every system the exact same stream.

use crate::generators::WorkloadOp;
use flash_sim::Lpn;

/// A recorded operation stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<WorkloadOp>,
}

impl Trace {
    /// Record `n` operations from a generator.
    pub fn record(gen: impl Iterator<Item = WorkloadOp>, n: usize) -> Self {
        Trace {
            ops: gen.take(n).collect(),
        }
    }

    /// Build a trace from explicit operations.
    pub fn from_ops(ops: Vec<WorkloadOp>) -> Self {
        Trace { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of writes in the trace.
    pub fn writes(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Write(_)))
            .count()
    }

    /// Iterate the operations.
    pub fn iter(&self) -> impl Iterator<Item = WorkloadOp> + '_ {
        self.ops.iter().copied()
    }

    /// The operations as a slice (for mutation-based fuzzing, which edits
    /// recorded traces op-by-op).
    pub fn ops(&self) -> &[WorkloadOp] {
        &self.ops
    }

    /// Append one operation.
    pub fn push(&mut self, op: WorkloadOp) {
        self.ops.push(op);
    }

    /// Serialize to a compact text form (one op per line: `W <lpn>`,
    /// `R <lpn>` or `I <ticks>`), e.g. for saving alongside experiment
    /// results or committing a minimized fuzz trace to the corpus. Blank
    /// lines and `#`-comments are tolerated by the parser, so corpus files
    /// can carry a provenance header.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.ops.len() * 8);
        for op in &self.ops {
            match op {
                WorkloadOp::Write(l) => s.push_str(&format!("W {}\n", l.0)),
                WorkloadOp::Read(l) => s.push_str(&format!("R {}\n", l.0)),
                WorkloadOp::Idle(n) => s.push_str(&format!("I {n}\n")),
            }
        }
        s
    }

    /// Parse the text form produced by [`Trace::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut ops = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (kind, arg) = line
                .split_once(' ')
                .ok_or_else(|| format!("line {}: expected '<W|R|I> <n>'", i + 1))?;
            let arg: u32 = arg
                .trim()
                .parse()
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            match kind {
                "W" => ops.push(WorkloadOp::Write(Lpn(arg))),
                "R" => ops.push(WorkloadOp::Read(Lpn(arg))),
                "I" => ops.push(WorkloadOp::Idle(arg)),
                other => return Err(format!("line {}: unknown op '{other}'", i + 1)),
            }
        }
        Ok(Trace { ops })
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = WorkloadOp;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, WorkloadOp>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Uniform;

    #[test]
    fn record_and_replay_are_identical() {
        let t1 = Trace::record(Uniform::new(11, 64), 500);
        let t2 = Trace::record(Uniform::new(11, 64), 500);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 500);
        assert_eq!(t1.writes(), 500);
    }

    #[test]
    fn text_round_trip() {
        let t = Trace::from_ops(vec![
            WorkloadOp::Write(Lpn(3)),
            WorkloadOp::Read(Lpn(9)),
            WorkloadOp::Write(Lpn(0)),
        ]);
        let text = t.to_text();
        assert_eq!(text, "W 3\nR 9\nW 0\n");
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }

    #[test]
    fn text_parse_errors_are_reported() {
        assert!(Trace::from_text("X 1").is_err());
        assert!(Trace::from_text("W abc").is_err());
        assert!(Trace::from_text("W").is_err());
        // Blank lines and comments are fine.
        assert_eq!(Trace::from_text("# header\n\nW 1\n\n").unwrap().len(), 1);
    }

    #[test]
    fn idle_gaps_serialize() {
        let t = Trace::from_ops(vec![
            WorkloadOp::Write(Lpn(1)),
            WorkloadOp::Idle(40),
            WorkloadOp::Read(Lpn(1)),
        ]);
        let text = t.to_text();
        assert_eq!(text, "W 1\nI 40\nR 1\n");
        assert_eq!(Trace::from_text(&text).unwrap(), t);
        assert_eq!(t.writes(), 1, "idle gaps are not writes");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_op() -> impl Strategy<Value = WorkloadOp> {
            prop_oneof![
                (0u32..100_000).prop_map(|l| WorkloadOp::Write(Lpn(l))),
                (0u32..100_000).prop_map(|l| WorkloadOp::Read(Lpn(l))),
                (0u32..10_000).prop_map(WorkloadOp::Idle),
            ]
        }

        proptest! {
            /// Any trace survives a text round trip bit-identically — the
            /// property the fuzz corpus depends on.
            #[test]
            fn text_round_trips_any_trace(
                ops in prop::collection::vec(arb_op(), 0..400),
            ) {
                let t = Trace::from_ops(ops);
                let parsed = Trace::from_text(&t.to_text()).unwrap();
                prop_assert_eq!(parsed, t);
            }
        }
    }
}
