//! Figure 10: entry-partitioning makes write-amplification independent of
//! the block size B (§3.3, §5.2). Without partitioning (S=1), WA grows with
//! B because fewer entries fit into the buffer; with the tuning rule
//! S = B/key-bits, it stays flat; over-partitioning re-inflates space.

use crate::harness::measure_uniform;
use crate::report::{f3, Table};
use flash_sim::Geometry;
use ftl_baselines::ftls::build_geckoftl_tuned;
use geckoftl_core::ftl::{FtlConfig, GcPolicy, RecoveryPolicy};
use geckoftl_core::gecko::GeckoConfig;

/// Run the Figure-10 sweep: B ∈ {64,128,256,512} × S ∈ {1,2,4,8,16,32}.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Figure 10 — validity WA vs block size B and partitioning factor S (S*=B/32 is the tuning rule)",
        &["B", "S", "V (buffer entries)", "validity WA"],
    );
    let total_pages: u32 = 1 << 17;
    for b in [64u32, 128, 256, 512] {
        let geo = Geometry::new(total_pages / b, b, 1 << 12, 0.7);
        for s in [1u32, 2, 4, 8, 16, 32] {
            let gecko_cfg = GeckoConfig {
                partitions: s,
                ..GeckoConfig::paper_default(&geo)
            };
            let cfg = FtlConfig {
                cache_entries: FtlConfig::scaled_cache_entries(&geo),
                gc_free_threshold: 8,
                gc_policy: GcPolicy::MetadataAware,
                recovery: RecoveryPolicy::CheckpointDeferred,
                checkpoint_period: None,
                qos_headroom_blocks: 0,
            };
            let mut engine = build_geckoftl_tuned(geo, cfg, gecko_cfg);
            let v = gecko_cfg.entries_per_page(&geo);
            let d = measure_uniform(&mut engine, 40_000, 13);
            let wa = d.wa_breakdown(10.0).validity;
            let star = if s == GeckoConfig::recommended_partitions(&geo, 4) {
                "*"
            } else {
                ""
            };
            t.row(vec![
                b.to_string(),
                format!("{s}{star}"),
                v.to_string(),
                f3(wa),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn unpartitioned_wa_grows_with_b_but_tuned_is_flat() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let wa_of = |b: &str, s_prefix: &str| -> f64 {
            rows.iter()
                .find(|r| r[0] == b && (r[1] == s_prefix || r[1] == format!("{s_prefix}*")))
                .map(|r| r[3].parse().unwrap())
                .expect("row present")
        };
        // S=1: B=512 should cost clearly more than B=64.
        assert!(
            wa_of("512", "1") > 1.5 * wa_of("64", "1"),
            "unpartitioned WA must grow with B: {} vs {}",
            wa_of("64", "1"),
            wa_of("512", "1")
        );
        // Tuned S=B/32: flat across B within a modest factor.
        let tuned: Vec<f64> = [("64", "2"), ("128", "4"), ("256", "8"), ("512", "16")]
            .iter()
            .map(|(b, s)| wa_of(b, s))
            .collect();
        let max = tuned.iter().cloned().fold(0.0f64, f64::max);
        let min = tuned.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max < 2.0 * min,
            "tuned WA should be ≈flat across B: {tuned:?}"
        );
    }
}
