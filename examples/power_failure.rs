//! Power-failure drill: crash GeckoFTL at random points in a write-heavy
//! workload, run GeckoRec, and verify that not a single acknowledged write
//! is lost — repeatedly, like a durability torture test would.
//!
//! ```text
//! cargo run --release --example power_failure
//! ```

use geckoftl::flash_sim::{Geometry, Lpn};
use geckoftl::ftl_workloads::{Uniform, WorkloadOp};
use geckoftl::geckoftl_core::ftl::FtlEngine;
use geckoftl::geckoftl_core::recovery::gecko_recover;
use std::collections::HashMap;

fn main() {
    let geo = Geometry::new(256, 64, 4096, 0.7);
    let logical = geo.logical_pages();
    let mut ftl = FtlEngine::geckoftl(geo);
    let mut oracle: HashMap<u32, u64> = HashMap::new();
    let mut version = 0u64;
    let mut gen = Uniform::new(0xC0FFEE, logical);

    for round in 1..=6u32 {
        // Crash later and later into the workload each round.
        let ops = 2_000 * round as u64;
        for op in (&mut gen).take(ops as usize) {
            let WorkloadOp::Write(lpn) = op else { continue };
            version += 1;
            ftl.write(lpn, version);
            oracle.insert(lpn.0, version);
        }

        let cfg = ftl.config();
        let gecko_cfg = ftl.backend().gecko().expect("gecko").config();
        let dev = ftl.crash(); // ← the plug is pulled here
        let (recovered, report) = gecko_recover(dev, cfg, gecko_cfg);
        ftl = recovered;

        // Verify every acknowledged write.
        let mut checked = 0u64;
        for (&lpn, &want) in &oracle {
            assert_eq!(
                ftl.read(Lpn(lpn)),
                Some(want),
                "round {round}: lost write to L{lpn}"
            );
            checked += 1;
        }
        println!(
            "round {round}: crashed after {ops} ops → recovered in {:.1} sim-ms \
             ({} entries, {} invalidations, {} erase markers rebuilt); {checked} pages verified ✔",
            report.total_secs() * 1e3,
            report.recovered_entries,
            report.recovered_invalidations,
            report.recovered_erases,
        );
    }
    println!("\nsurvived {} crashes with zero data loss", 6);
}
