//! Purpose-tagged IO accounting.
//!
//! Every device operation carries an [`IoPurpose`] so that experiments can
//! decompose write-amplification exactly the way Figure 13 (bottom) of the
//! paper does: (1) application updates + garbage-collection of user data,
//! (2) synchronization operations + garbage-collection of translation
//! metadata, and (3) updates, GC queries and garbage-collection of page
//! validity metadata.
//!
//! Write-amplification follows the paper's §5 definition:
//! `WA = i_writes + i_reads / δ`, where `i_writes`/`i_reads` are internal
//! flash writes/reads per logical page update and `δ` is the write/read
//! latency ratio.

/// Why a flash IO happened. Used to attribute costs to FTL components.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoPurpose {
    /// Application write of a user page (the logical update itself).
    UserWrite,
    /// Application read of a user page.
    UserRead,
    /// Migration of a live user page during garbage-collection.
    GcMigrateUser,
    /// Reading/writing translation pages during synchronization operations.
    TranslationSync,
    /// Reading a translation page to serve an application *read* miss
    /// (read-amplification `RA` in the paper's slowdown formula; not part of
    /// write-amplification).
    TranslationFetch,
    /// Migration of live translation pages during garbage-collection.
    TranslationGc,
    /// Formatting: initial materialization of translation pages.
    TranslationInit,
    /// Updates to page-validity metadata (PVB page rewrites, Gecko buffer
    /// flushes, PVL appends).
    ValidityUpdate,
    /// GC queries against page-validity metadata.
    ValidityQuery,
    /// Merge operations inside Logarithmic Gecko (or PVL cleaning).
    ValidityMerge,
    /// Migration of live validity-metadata pages during garbage-collection.
    ValidityGc,
    /// Wear-leveling scans and migrations.
    WearLevel,
    /// IO performed by recovery algorithms after power failure.
    Recovery,
    /// Preconditioning writes that fill the device before measurement.
    Fill,
}

impl IoPurpose {
    /// All purposes, for iteration in reports.
    pub const ALL: [IoPurpose; 14] = [
        IoPurpose::UserWrite,
        IoPurpose::UserRead,
        IoPurpose::GcMigrateUser,
        IoPurpose::TranslationSync,
        IoPurpose::TranslationFetch,
        IoPurpose::TranslationGc,
        IoPurpose::TranslationInit,
        IoPurpose::ValidityUpdate,
        IoPurpose::ValidityQuery,
        IoPurpose::ValidityMerge,
        IoPurpose::ValidityGc,
        IoPurpose::WearLevel,
        IoPurpose::Recovery,
        IoPurpose::Fill,
    ];

    /// Stable dense index of this purpose (the order of the internal
    /// accounting arrays; also the purpose code telemetry IO events carry).
    pub fn index(self) -> usize {
        match self {
            IoPurpose::UserWrite => 0,
            IoPurpose::UserRead => 1,
            IoPurpose::GcMigrateUser => 2,
            IoPurpose::TranslationSync => 3,
            IoPurpose::TranslationGc => 4,
            IoPurpose::TranslationInit => 5,
            IoPurpose::ValidityUpdate => 6,
            IoPurpose::ValidityQuery => 7,
            IoPurpose::ValidityMerge => 8,
            IoPurpose::ValidityGc => 9,
            IoPurpose::WearLevel => 10,
            IoPurpose::Recovery => 11,
            IoPurpose::Fill => 12,
            IoPurpose::TranslationFetch => 13,
        }
    }

    const COUNT: usize = 14;

    /// Short stable label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            IoPurpose::UserWrite => "user_write",
            IoPurpose::UserRead => "user_read",
            IoPurpose::GcMigrateUser => "gc_migrate_user",
            IoPurpose::TranslationSync => "translation_sync",
            IoPurpose::TranslationFetch => "translation_fetch",
            IoPurpose::TranslationGc => "translation_gc",
            IoPurpose::TranslationInit => "translation_init",
            IoPurpose::ValidityUpdate => "validity_update",
            IoPurpose::ValidityQuery => "validity_query",
            IoPurpose::ValidityMerge => "validity_merge",
            IoPurpose::ValidityGc => "validity_gc",
            IoPurpose::WearLevel => "wear_level",
            IoPurpose::Recovery => "recovery",
            IoPurpose::Fill => "fill",
        }
    }

    /// The Figure-13 category this purpose belongs to, or `None` if it is
    /// excluded from write-amplification (fill, recovery, app reads).
    pub fn wa_category(self) -> Option<WaCategory> {
        match self {
            IoPurpose::UserWrite | IoPurpose::GcMigrateUser => Some(WaCategory::User),
            IoPurpose::TranslationSync | IoPurpose::TranslationGc => Some(WaCategory::Translation),
            IoPurpose::ValidityUpdate
            | IoPurpose::ValidityQuery
            | IoPurpose::ValidityMerge
            | IoPurpose::ValidityGc => Some(WaCategory::Validity),
            IoPurpose::WearLevel => Some(WaCategory::User),
            IoPurpose::UserRead
            | IoPurpose::TranslationFetch
            | IoPurpose::TranslationInit
            | IoPurpose::Recovery
            | IoPurpose::Fill => None,
        }
    }
}

/// The three write-amplification categories of Figure 13 (bottom).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WaCategory {
    /// Application updates and garbage-collection of user data.
    User,
    /// Synchronization operations and GC of translation metadata.
    Translation,
    /// Updates, GC queries and GC of page-validity metadata.
    Validity,
}

impl WaCategory {
    /// All categories in report order.
    pub const ALL: [WaCategory; 3] = [
        WaCategory::User,
        WaCategory::Translation,
        WaCategory::Validity,
    ];

    /// Short stable label used in CSV output.
    pub fn label(self) -> &'static str {
        match self {
            WaCategory::User => "user",
            WaCategory::Translation => "translation",
            WaCategory::Validity => "validity",
        }
    }
}

/// Raw operation counts for one purpose.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoCounts {
    /// Full-page reads.
    pub page_reads: u64,
    /// Full-page writes.
    pub page_writes: u64,
    /// Spare-area reads.
    pub spare_reads: u64,
    /// Block erases.
    pub erases: u64,
}

impl IoCounts {
    fn sub(self, other: IoCounts) -> IoCounts {
        IoCounts {
            page_reads: self.page_reads - other.page_reads,
            page_writes: self.page_writes - other.page_writes,
            spare_reads: self.spare_reads - other.spare_reads,
            erases: self.erases - other.erases,
        }
    }

    fn add_assign(&mut self, other: IoCounts) {
        self.page_reads += other.page_reads;
        self.page_writes += other.page_writes;
        self.spare_reads += other.spare_reads;
        self.erases += other.erases;
    }

    /// Whether no IO at all was recorded.
    pub fn is_zero(&self) -> bool {
        *self == IoCounts::default()
    }
}

/// Accumulated device statistics: per-purpose IO counts, simulated time and
/// the number of logical updates (used as the WA denominator).
#[derive(Clone, Debug, Default)]
pub struct IoStats {
    per_purpose: [IoCounts; IoPurpose::COUNT],
    /// Nominal device busy time accumulated per purpose, in microseconds.
    /// This is the *serial* cost of the IO; when operations overlap across
    /// channels (see [`crate::FlashDevice::begin_overlap`]) the simulated
    /// clock advances by less than the busy time, and the difference is the
    /// parallelism the latency model made visible.
    busy_us: [f64; IoPurpose::COUNT],
    /// Number of logical page updates issued by the application. The FTL is
    /// responsible for bumping this once per application write.
    pub logical_writes: u64,
    /// Number of logical page reads issued by the application.
    pub logical_reads: u64,
}

impl IoStats {
    /// Record a full-page read.
    pub fn record_page_read(&mut self, purpose: IoPurpose) {
        self.per_purpose[purpose.index()].page_reads += 1;
    }

    /// Record a full-page write.
    pub fn record_page_write(&mut self, purpose: IoPurpose) {
        self.per_purpose[purpose.index()].page_writes += 1;
    }

    /// Record a spare-area read.
    pub fn record_spare_read(&mut self, purpose: IoPurpose) {
        self.per_purpose[purpose.index()].spare_reads += 1;
    }

    /// Record a block erase.
    pub fn record_erase(&mut self, purpose: IoPurpose) {
        self.per_purpose[purpose.index()].erases += 1;
    }

    /// Record `us` microseconds of device busy time for one purpose.
    pub fn record_busy_us(&mut self, purpose: IoPurpose, us: f64) {
        self.busy_us[purpose.index()] += us;
    }

    /// Nominal (serial) busy time accumulated for one purpose.
    pub fn busy_us(&self, purpose: IoPurpose) -> f64 {
        self.busy_us[purpose.index()]
    }

    /// Total nominal busy time across all purposes.
    pub fn total_busy_us(&self) -> f64 {
        self.busy_us.iter().sum()
    }

    /// Counts accumulated for one purpose.
    pub fn counts(&self, purpose: IoPurpose) -> IoCounts {
        self.per_purpose[purpose.index()]
    }

    /// Sum of counts across a set of purposes.
    pub fn total(&self) -> IoCounts {
        let mut t = IoCounts::default();
        for c in &self.per_purpose {
            t.add_assign(*c);
        }
        t
    }

    /// Take an immutable snapshot for later differencing (interval metrics,
    /// Figure 9's per-10k-write series).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            per_purpose: self.per_purpose,
            busy_us: self.busy_us,
            logical_writes: self.logical_writes,
            logical_reads: self.logical_reads,
        }
    }

    /// Difference between the current state and an earlier snapshot.
    pub fn since(&self, snap: &StatsSnapshot) -> StatsSnapshot {
        let mut per_purpose = [IoCounts::default(); IoPurpose::COUNT];
        for (i, slot) in per_purpose.iter_mut().enumerate() {
            *slot = self.per_purpose[i].sub(snap.per_purpose[i]);
        }
        let mut busy_us = [0.0; IoPurpose::COUNT];
        for (i, slot) in busy_us.iter_mut().enumerate() {
            *slot = self.busy_us[i] - snap.busy_us[i];
        }
        StatsSnapshot {
            per_purpose,
            busy_us,
            logical_writes: self.logical_writes - snap.logical_writes,
            logical_reads: self.logical_reads - snap.logical_reads,
        }
    }
}

/// A frozen copy of [`IoStats`], also used to represent deltas.
#[derive(Clone, Debug)]
pub struct StatsSnapshot {
    per_purpose: [IoCounts; IoPurpose::COUNT],
    busy_us: [f64; IoPurpose::COUNT],
    /// Logical page updates covered by this snapshot/delta.
    pub logical_writes: u64,
    /// Logical page reads covered by this snapshot/delta.
    pub logical_reads: u64,
}

impl StatsSnapshot {
    /// Counts for one purpose.
    pub fn counts(&self, purpose: IoPurpose) -> IoCounts {
        self.per_purpose[purpose.index()]
    }

    /// Nominal (serial) busy time for one purpose, in microseconds.
    pub fn busy_us(&self, purpose: IoPurpose) -> f64 {
        self.busy_us[purpose.index()]
    }

    /// Aggregate counts for one Figure-13 category.
    pub fn category_counts(&self, cat: WaCategory) -> IoCounts {
        let mut t = IoCounts::default();
        for p in [
            IoPurpose::UserWrite,
            IoPurpose::GcMigrateUser,
            IoPurpose::TranslationSync,
            IoPurpose::TranslationGc,
            IoPurpose::ValidityUpdate,
            IoPurpose::ValidityQuery,
            IoPurpose::ValidityMerge,
            IoPurpose::ValidityGc,
            IoPurpose::WearLevel,
        ] {
            if p.wa_category() == Some(cat) {
                t.add_assign(self.counts(p));
            }
        }
        t
    }

    /// Write-amplification decomposition per the paper's metric
    /// `WA = i_writes + i_reads/δ`, normalized by logical writes.
    pub fn wa_breakdown(&self, delta: f64) -> WaBreakdown {
        let denom = self.logical_writes.max(1) as f64;
        let per_cat = |cat: WaCategory| {
            let c = self.category_counts(cat);
            (c.page_writes as f64 + c.page_reads as f64 / delta) / denom
        };
        WaBreakdown {
            user: per_cat(WaCategory::User),
            translation: per_cat(WaCategory::Translation),
            validity: per_cat(WaCategory::Validity),
            logical_writes: self.logical_writes,
        }
    }

    /// Total simulated IO time in microseconds under a latency model,
    /// excluding nothing (all purposes included).
    pub fn simulated_us(&self, lat: &crate::LatencyModel) -> f64 {
        let mut us = 0.0;
        for c in &self.per_purpose {
            us += c.page_reads as f64 * lat.page_read_us
                + c.page_writes as f64 * lat.page_write_us
                + c.spare_reads as f64 * lat.spare_read_us
                + c.erases as f64 * lat.erase_us;
        }
        us
    }
}

/// Per-category write-amplification, as plotted in Figures 9 and 13.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaBreakdown {
    /// Application updates + GC of user data (includes the 1.0 of the
    /// application write itself).
    pub user: f64,
    /// Synchronization ops + GC of translation metadata.
    pub translation: f64,
    /// Page-validity metadata updates, GC queries, merges and GC.
    pub validity: f64,
    /// Number of logical writes this breakdown is normalized over.
    pub logical_writes: u64,
}

impl WaBreakdown {
    /// Total write-amplification across all categories.
    pub fn total(&self) -> f64 {
        self.user + self.translation + self.validity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reads_back() {
        let mut s = IoStats::default();
        s.record_page_read(IoPurpose::ValidityQuery);
        s.record_page_write(IoPurpose::ValidityUpdate);
        s.record_spare_read(IoPurpose::Recovery);
        s.record_erase(IoPurpose::GcMigrateUser);
        assert_eq!(s.counts(IoPurpose::ValidityQuery).page_reads, 1);
        assert_eq!(s.counts(IoPurpose::ValidityUpdate).page_writes, 1);
        assert_eq!(s.counts(IoPurpose::Recovery).spare_reads, 1);
        assert_eq!(s.counts(IoPurpose::GcMigrateUser).erases, 1);
        assert_eq!(s.total().page_reads, 1);
    }

    #[test]
    fn snapshot_differencing() {
        let mut s = IoStats::default();
        s.record_page_write(IoPurpose::UserWrite);
        s.logical_writes = 1;
        let snap = s.snapshot();
        s.record_page_write(IoPurpose::UserWrite);
        s.record_page_read(IoPurpose::ValidityQuery);
        s.logical_writes = 3;
        let d = s.since(&snap);
        assert_eq!(d.counts(IoPurpose::UserWrite).page_writes, 1);
        assert_eq!(d.counts(IoPurpose::ValidityQuery).page_reads, 1);
        assert_eq!(d.logical_writes, 2);
    }

    #[test]
    fn wa_matches_paper_formula() {
        // A flash-resident PVB costs one page read and one page write per
        // update, i.e. WA ≈ 1 + 1/δ = 1.1 at δ=10 (paper §5.1).
        let mut s = IoStats::default();
        for _ in 0..1000 {
            s.record_page_read(IoPurpose::ValidityUpdate);
            s.record_page_write(IoPurpose::ValidityUpdate);
        }
        s.logical_writes = 1000;
        let wa = s.since(&IoStats::default().snapshot()).wa_breakdown(10.0);
        assert!((wa.validity - 1.1).abs() < 1e-9);
        assert_eq!(wa.user, 0.0);
    }

    #[test]
    fn categories_cover_expected_purposes() {
        assert_eq!(IoPurpose::UserWrite.wa_category(), Some(WaCategory::User));
        assert_eq!(
            IoPurpose::TranslationSync.wa_category(),
            Some(WaCategory::Translation)
        );
        assert_eq!(
            IoPurpose::ValidityMerge.wa_category(),
            Some(WaCategory::Validity)
        );
        assert_eq!(IoPurpose::Fill.wa_category(), None);
        assert_eq!(IoPurpose::Recovery.wa_category(), None);
    }

    #[test]
    fn simulated_time_uses_latency_model() {
        let mut s = IoStats::default();
        s.record_page_read(IoPurpose::UserRead);
        s.record_page_write(IoPurpose::UserWrite);
        s.record_spare_read(IoPurpose::Recovery);
        let us = s.snapshot().simulated_us(&crate::LatencyModel::paper());
        assert!((us - 1103.0).abs() < 1e-9);
    }
}
