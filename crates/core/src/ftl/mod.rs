//! The FTL engine (paper §4): the machinery shared by GeckoFTL and the four
//! baseline FTLs of the evaluation.
//!
//! One engine, three policy axes — exactly the axes along which the paper's
//! §5.3 comparison varies:
//!
//! 1. **Validity store** ([`crate::validity::ValidityStore`]): RAM PVB,
//!    flash PVB, page validity log, or Logarithmic Gecko.
//! 2. **GC victim policy** ([`GcPolicy`]): greedy over all blocks, or
//!    GeckoFTL's metadata-aware policy that never migrates metadata (§4.2).
//! 3. **Recovery scheme** ([`RecoveryPolicy`]): battery-backed (DFTL, µ-FTL),
//!    restricted-dirty-fraction (LazyFTL, IB-FTL), or GeckoFTL's
//!    checkpoint-plus-deferred-synchronization scheme (§4.3).
//!
//! All five FTLs share GeckoFTL's lazy invalid-page identification (the UIP
//! protocol of §4.1): sync-time invalidation uses the translation page that
//! is being read anyway, so no FTL pays a fetch-on-miss read for writes.
//! This normalization is what lets Figure 13/14-style comparisons attribute
//! differences purely to the three axes above (see DESIGN.md).

pub mod block_manager;
pub mod concurrent;
mod engine_gc;
pub mod metrics;

pub use block_manager::{BlockGroup, BlockManager, BlockState};
pub use concurrent::ConcurrentFtl;

use crate::cache::{CacheEntry, MappingCache};
use crate::gecko::{GeckoConfig, LogGecko, ShardedGecko};
use crate::translation::TranslationTable;
use crate::validity::{MetaSink, ValidityStore};
use flash_sim::{
    BlockId, FlashDevice, Geometry, Histogram, IoPurpose, Lpn, PageData, Ppn, SpanKind, SpareInfo,
    Telemetry,
};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Garbage-collection victim-selection policy (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcPolicy {
    /// The state-of-the-art greedy policy: always the block with the fewest
    /// valid pages, regardless of its contents.
    GreedyAll,
    /// GeckoFTL's policy: greedy over user blocks only; metadata blocks are
    /// never migrated, just erased once fully invalid.
    MetadataAware,
}

/// How the FTL bounds the recovery cost of dirty cached mapping entries.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RecoveryPolicy {
    /// A battery synchronizes everything before power runs out (DFTL,
    /// µ-FTL). No runtime bound on dirty entries.
    Battery,
    /// At most `fraction · C` cached entries may be dirty; excess dirty
    /// entries are synchronized eagerly (LazyFTL, IB-FTL). Trades runtime
    /// write-amplification for bounded recovery.
    RestrictedDirty {
        /// Maximum dirty fraction of the cache (the paper's experiments use
        /// 0.1).
        fraction: f64,
    },
    /// GeckoFTL (§4.3): checkpoints every `C` cache operations bound the
    /// recovery scan to `2·C` spare reads, and synchronization of recovered
    /// entries is deferred until after normal operation resumes.
    CheckpointDeferred,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct FtlConfig {
    /// `C`: capacity of the LRU mapping cache, in entries.
    pub cache_entries: usize,
    /// GC triggers when the free pool drops below this many blocks.
    pub gc_free_threshold: usize,
    /// Victim-selection policy.
    pub gc_policy: GcPolicy,
    /// Dirty-entry recovery scheme.
    pub recovery: RecoveryPolicy,
    /// Checkpoint period in cache operations (defaults to `C`); only
    /// meaningful under [`RecoveryPolicy::CheckpointDeferred`]. `None`
    /// disables checkpoints (ablation), removing the recovery-scan bound.
    pub checkpoint_period: Option<u64>,
    /// Multi-tenant QoS budget: when non-zero, a tenant whose writes have
    /// accumulated an above-average share of GC debt prepays collection
    /// until the free pool holds `gc_free_threshold + qos_headroom_blocks`
    /// blocks, so its bursts stop eating the headroom other tenants' p99
    /// depends on. `0` disables the mechanism (byte-identical to the
    /// pre-QoS engine).
    pub qos_headroom_blocks: usize,
}

impl FtlConfig {
    /// The paper's cache-to-capacity ratio: 2¹⁹ entries for a 2 TB device
    /// (4 MB of entries at 8 B each) ≈ 0.14 % of logical pages.
    pub fn scaled_cache_entries(geo: &Geometry) -> usize {
        ((geo.logical_pages() as f64 * (1 << 19) as f64 / 375_809_638.0) as usize).max(64)
    }

    /// GeckoFTL defaults for a geometry.
    pub fn geckoftl(geo: &Geometry) -> Self {
        FtlConfig {
            cache_entries: Self::scaled_cache_entries(geo),
            gc_free_threshold: 8,
            gc_policy: GcPolicy::MetadataAware,
            recovery: RecoveryPolicy::CheckpointDeferred,
            checkpoint_period: None, // filled from cache_entries at build
            qos_headroom_blocks: 0,
        }
    }
}

/// The validity backend: GeckoFTL's Logarithmic Gecko is held concretely so
/// the engine can drive its flush/recovery hooks; baseline stores plug in as
/// trait objects.
// One instance per engine: the size gap between the inline LogGecko (with
// its reusable scratch buffers) and the boxed baselines is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum ValidityBackend {
    /// Logarithmic Gecko (GeckoFTL), one tree for the whole device.
    Gecko(LogGecko),
    /// Logarithmic Gecko split into per-channel trees
    /// ([`crate::gecko::ShardedGecko`]), pumped concurrently.
    Sharded(ShardedGecko),
    /// Any other validity store (RAM/flash PVB, PVL).
    External(Box<dyn ValidityStore>),
}

impl ValidityBackend {
    /// Build the Gecko-family backend `cfg` asks for: a single tree when
    /// `cfg.shards == 1`, a per-channel sharded store otherwise.
    pub fn gecko_for(geo: Geometry, cfg: GeckoConfig) -> Self {
        if cfg.shards > 1 {
            ValidityBackend::Sharded(ShardedGecko::new(geo, cfg))
        } else {
            ValidityBackend::Gecko(LogGecko::new(geo, cfg))
        }
    }

    /// The store as a trait object.
    pub fn store(&mut self) -> &mut dyn ValidityStore {
        match self {
            ValidityBackend::Gecko(g) => g,
            ValidityBackend::Sharded(s) => s,
            ValidityBackend::External(s) => s.as_mut(),
        }
    }

    /// Immutable view for RAM accounting / naming.
    pub fn store_ref(&self) -> &dyn ValidityStore {
        match self {
            ValidityBackend::Gecko(g) => g,
            ValidityBackend::Sharded(s) => s,
            ValidityBackend::External(s) => s.as_ref(),
        }
    }

    /// The single-tree Logarithmic Gecko instance, if this is one.
    pub fn gecko(&self) -> Option<&LogGecko> {
        match self {
            ValidityBackend::Gecko(g) => Some(g),
            _ => None,
        }
    }

    /// The sharded Gecko store, if this is one.
    pub fn sharded(&self) -> Option<&ShardedGecko> {
        match self {
            ValidityBackend::Sharded(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this is a Gecko-family backend (single-tree or sharded) —
    /// the backends with flush watermarks, merge schedulers and the
    /// recovery protocol of Appendix C.
    pub fn is_gecko(&self) -> bool {
        !matches!(self, ValidityBackend::External(_))
    }

    /// The Gecko configuration, for either Gecko-family backend.
    pub fn gecko_config(&self) -> Option<GeckoConfig> {
        match self {
            ValidityBackend::Gecko(g) => Some(g.config()),
            ValidityBackend::Sharded(s) => Some(s.config()),
            ValidityBackend::External(_) => None,
        }
    }

    /// Aggregated Gecko lifetime counters (summed over shards).
    pub fn gecko_stats(&self) -> Option<crate::gecko::GeckoStats> {
        match self {
            ValidityBackend::Gecko(g) => Some(g.stats),
            ValidityBackend::Sharded(s) => Some(s.stats()),
            ValidityBackend::External(_) => None,
        }
    }

    /// The Gecko flush watermark: for a sharded store, the *minimum* over
    /// shards — the conservative bound under which every shard's buffered
    /// reports are durable (protection clearing and recovery both need
    /// all-shards durability, not any-shard).
    pub fn last_flush_seq(&self) -> Option<u64> {
        match self {
            ValidityBackend::Gecko(g) => Some(g.last_flush_seq()),
            ValidityBackend::Sharded(s) => Some(s.last_flush_seq()),
            ValidityBackend::External(_) => None,
        }
    }

    /// Pending incremental merge work in page-IOs (0 for non-Gecko).
    pub fn merge_backlog_pages(&self) -> u64 {
        match self {
            ValidityBackend::Gecko(g) => g.merge_backlog_pages(),
            ValidityBackend::Sharded(s) => s.merge_backlog_pages(),
            ValidityBackend::External(_) => 0,
        }
    }

    /// Merge jobs queued or in flight (0 for non-Gecko).
    pub fn merge_jobs_pending(&self) -> usize {
        match self {
            ValidityBackend::Gecko(g) => g.merge_jobs_pending(),
            ValidityBackend::Sharded(s) => s.merge_jobs_pending(),
            ValidityBackend::External(_) => 0,
        }
    }

    /// Advance pending merge work by one bounded slice (per shard, for a
    /// sharded store — the shards' slices overlap on their channels).
    /// Returns `true` while work remains; `false` for non-Gecko backends.
    pub fn pump_merges(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        budget: u64,
    ) -> bool {
        match self {
            ValidityBackend::Gecko(g) => g.pump_merges(dev, sink, budget),
            ValidityBackend::Sharded(s) => s.pump_merges(dev, sink, budget),
            ValidityBackend::External(_) => false,
        }
    }
}

/// Breakdown of the engine's integrated-RAM footprint, using the paper's
/// per-structure accounting (§2 + Appendix B).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RamReport {
    /// Global Mapping Directory.
    pub gmd: u64,
    /// LRU mapping cache (8 bytes/entry).
    pub cache: u64,
    /// Blocks Validity Counter (2 bytes/block).
    pub bvc: u64,
    /// The validity store's RAM state (PVB bitmap, run directories + merge
    /// buffers, PVL head pointers, ...).
    pub validity: u64,
    /// Telemetry ring buffer + histograms (0 while telemetry is disabled).
    /// Charged like any other engine RAM — an observer that keeps an event
    /// ring in firmware RAM pays for it under a fig14-style budget.
    pub telemetry: u64,
}

impl RamReport {
    /// Total integrated RAM in bytes.
    pub fn total(&self) -> u64 {
        self.gmd + self.cache + self.bvc + self.validity + self.telemetry
    }
}

/// A page-associative FTL instance running on a simulated flash device.
pub struct FtlEngine {
    pub(crate) dev: FlashDevice,
    pub(crate) bm: BlockManager,
    pub(crate) tt: TranslationTable,
    pub(crate) cache: MappingCache,
    pub(crate) backend: ValidityBackend,
    pub(crate) cfg: FtlConfig,
    /// Checkpoint epoch (increments at every checkpoint).
    epoch: u64,
    ops_since_checkpoint: u64,
    /// Gecko flush watermark, to detect flushes and clear protections.
    last_flush_seen: u64,
    /// Pages invalidated since the current GC collection started; guards
    /// against migrating pages that a mid-GC synchronization invalidated
    /// after the GC query snapshot was taken.
    pub(crate) gc_invalidated: HashSet<Ppn>,
    /// Victim bitmaps prefetched by a batched validity query at the start
    /// of a GC burst; consumed (and invalidated) as victims are collected.
    pub(crate) gc_prefetch: HashMap<BlockId, crate::gecko::Bitmap>,
    /// The burst's planned collection order (the clustered ranking of
    /// [`BlockManager::pick_victims`]); consumed by
    /// [`FtlEngine::collect_once`]. Built for every Gecko backend — fast
    /// path and linear-scan baseline alike — so the A/B pair collects the
    /// same victim sequence; the fast path additionally prefetches the
    /// planned victims' bitmaps into `gc_prefetch`. Entries are
    /// re-validated against current eligibility before use.
    pub(crate) gc_plan: std::collections::VecDeque<BlockId>,
    /// Every GC victim collected, in collection order. Cheap simulator
    /// bookkeeping used to pin the fast path and the linear-scan baseline
    /// to identical victim sequences in tests and benches.
    pub gc_victim_log: Vec<BlockId>,
    /// Lifetime op counters.
    pub counters: EngineCounters,
    /// Per-tenant accounting, populated by the `*_for` entry points.
    /// RAM-only observation — it never influences the simulation, so
    /// single-tenant callers using `write`/`read` stay byte-identical.
    /// `BTreeMap` so metric emission order is deterministic.
    tenants: BTreeMap<TenantId, TenantStats>,
    /// Lifetime simulated time spent inside GC (victim selection, queries,
    /// migrations, erases). The `*_for` entry points diff this around each
    /// op to charge GC debt to the tenant whose op triggered it.
    gc_attrib_us: f64,
}

/// A tenant / stream identifier for multi-tenant accounting. Tenant 0 is
/// the default stream the untagged `write`/`read` entry points charge.
pub type TenantId = u8;

/// Per-tenant accounting: op counts, bytes, latency histograms, and the GC
/// debt (simulated µs of garbage collection) this tenant's writes triggered.
#[derive(Clone, Debug, Default)]
pub struct TenantStats {
    /// Writes issued by this tenant.
    pub writes: u64,
    /// Reads issued by this tenant.
    pub reads: u64,
    /// Trims issued by this tenant.
    pub trims: u64,
    /// Logical bytes written by this tenant.
    pub bytes_written: u64,
    /// GC victim collections triggered by this tenant's ops.
    pub gc_operations: u64,
    /// GC page migrations triggered by this tenant's ops.
    pub gc_migrations: u64,
    /// Simulated µs of GC work charged to this tenant (the debt the QoS
    /// budget balances).
    pub gc_debt_us: f64,
    /// End-to-end write latencies (µs).
    pub write_lat: Histogram,
    /// End-to-end read latencies (µs).
    pub read_lat: Histogram,
}

/// Engine-level (non-IO) counters for reports and ablations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Application writes served.
    pub writes: u64,
    /// Application reads served.
    pub reads: u64,
    /// Synchronization operations performed (including aborted ones).
    pub syncs: u64,
    /// Synchronization operations aborted as all-false-alarms (App. C.3.1).
    pub syncs_aborted: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Garbage-collection operations (victims erased).
    pub gc_operations: u64,
    /// Live pages migrated by GC.
    pub gc_migrations: u64,
    /// Pages skipped by GC because the UIP spare-check identified them
    /// (§4.1's garbage-collection policy).
    pub gc_uip_skips: u64,
    /// TRIM/discard operations served.
    pub trims: u64,
}

impl FtlEngine {
    /// Format a fresh device and build an engine on it.
    pub fn format(geo: Geometry, mut cfg: FtlConfig, backend: ValidityBackend) -> Self {
        let dev = FlashDevice::new(geo);
        Self::format_on(dev, &mut cfg, backend)
    }

    /// Build GeckoFTL with paper-default tuning on a fresh device.
    pub fn geckoftl(geo: Geometry) -> Self {
        let gecko = LogGecko::new(geo, GeckoConfig::paper_default(&geo));
        Self::format(
            geo,
            FtlConfig::geckoftl(&geo),
            ValidityBackend::Gecko(gecko),
        )
    }

    fn format_on(mut dev: FlashDevice, cfg: &mut FtlConfig, backend: ValidityBackend) -> Self {
        let geo = dev.geometry();
        if cfg.checkpoint_period.is_none()
            && matches!(cfg.recovery, RecoveryPolicy::CheckpointDeferred)
        {
            cfg.checkpoint_period = Some(cfg.cache_entries as u64);
        }
        assert!(
            (cfg.cache_entries as u64) < geo.overprovisioned_pages() / 2,
            "cache too large: unidentified invalid pages could starve GC"
        );
        let mut bm = BlockManager::new(geo);
        bm.erase_empty_metadata = cfg.gc_policy == GcPolicy::MetadataAware;
        let mut tt = TranslationTable::new(geo);
        tt.format(&mut dev, &mut bm);
        let cache = MappingCache::new(cfg.cache_entries);
        FtlEngine {
            dev,
            bm,
            tt,
            cache,
            backend,
            cfg: *cfg,
            epoch: 1,
            ops_since_checkpoint: 0,
            last_flush_seen: 0,
            gc_invalidated: HashSet::new(),
            gc_prefetch: HashMap::new(),
            gc_plan: std::collections::VecDeque::new(),
            gc_victim_log: Vec::new(),
            counters: EngineCounters::default(),
            tenants: BTreeMap::new(),
            gc_attrib_us: 0.0,
        }
    }

    /// Reassemble an engine from recovered components. Used by GeckoRec and
    /// by the baselines' clean-shutdown restart; not part of the ordinary
    /// API surface.
    #[doc(hidden)]
    pub fn from_parts(
        dev: FlashDevice,
        bm: BlockManager,
        tt: TranslationTable,
        cache: MappingCache,
        backend: ValidityBackend,
        cfg: FtlConfig,
    ) -> Self {
        let last_flush_seen = backend.last_flush_seq().unwrap_or(0);
        FtlEngine {
            dev,
            bm,
            tt,
            cache,
            backend,
            cfg,
            epoch: 1,
            ops_since_checkpoint: 0,
            last_flush_seen,
            gc_invalidated: HashSet::new(),
            gc_prefetch: HashMap::new(),
            gc_plan: std::collections::VecDeque::new(),
            gc_victim_log: Vec::new(),
            counters: EngineCounters::default(),
            tenants: BTreeMap::new(),
            gc_attrib_us: 0.0,
        }
    }

    /// The device geometry.
    pub fn geometry(&self) -> Geometry {
        self.dev.geometry()
    }

    /// The underlying device (stats, clock).
    pub fn device(&self) -> &FlashDevice {
        &self.dev
    }

    /// Engine configuration.
    pub fn config(&self) -> FtlConfig {
        self.cfg
    }

    /// The mapping cache (inspection).
    pub fn cache(&self) -> &MappingCache {
        &self.cache
    }

    /// The block manager (inspection).
    pub fn block_manager(&self) -> &BlockManager {
        &self.bm
    }

    /// The translation table (inspection).
    pub fn translation_table(&self) -> &TranslationTable {
        &self.tt
    }

    /// The validity backend (inspection).
    pub fn backend(&self) -> &ValidityBackend {
        &self.backend
    }

    /// Integrated-RAM footprint breakdown (paper accounting).
    pub fn ram_report(&self) -> RamReport {
        RamReport {
            gmd: self.tt.gmd_ram_bytes(),
            cache: self.cache.ram_bytes(),
            bvc: self.bm.bvc_ram_bytes(),
            validity: self.backend.store_ref().ram_bytes(),
            telemetry: self.dev.telemetry().ram_bytes(),
        }
    }

    /// Telemetry sink carried by the device (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        self.dev.telemetry()
    }

    /// Mutable telemetry sink: enable recording before a measured phase.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        self.dev.telemetry_mut()
    }

    /// Simulate a power failure: all RAM-resident state is lost; only the
    /// flash device survives. Feed the result to
    /// [`crate::recovery::gecko_recover`].
    pub fn crash(self) -> FlashDevice {
        self.dev
    }

    /// Run a closure with mutable access to the device and block manager —
    /// needed to materialize flash-resident baseline stores on the engine's
    /// own device (e.g. µ-FTL's PVB formatting).
    pub fn with_raw_parts<R>(
        &mut self,
        f: impl FnOnce(&mut FlashDevice, &mut BlockManager) -> R,
    ) -> R {
        f(&mut self.dev, &mut self.bm)
    }

    /// Swap the validity backend. Intended for baseline construction only —
    /// swapping mid-workload would discard validity state.
    pub fn replace_backend(&mut self, backend: ValidityBackend) {
        self.backend = backend;
    }

    /// Application write: store a new version of logical page `lpn`.
    pub fn write(&mut self, lpn: Lpn, version: u64) {
        let t0 = self.dev.clock().now_us();
        self.write_inner(lpn, version);
        let now = self.dev.clock().now_us();
        self.dev
            .telemetry_mut()
            .record_span(SpanKind::HostWrite, lpn.0, t0, now);
    }

    fn write_inner(&mut self, lpn: Lpn, version: u64) {
        assert!(
            self.geometry().contains_lpn(lpn),
            "write outside logical space: {lpn:?}"
        );
        self.maybe_gc();
        self.counters.writes += 1;
        // Record the superseded copy's address in the new page's spare area
        // so the immediate invalidation report (§4.1) survives a crash of
        // Gecko's buffer (recovered by the step-6 backwards scan).
        let before = self.cache.lookup(lpn).map(|e| e.ppn);
        let ppn = self.bm.append(
            &mut self.dev,
            BlockGroup::User,
            PageData::User { lpn, version },
            SpareInfo::User { lpn, before },
            IoPurpose::UserWrite,
        );
        self.dev.stats_mut().logical_writes += 1;
        self.tick_checkpoint_clock();
        self.install_write_mapping(lpn, ppn);
        // Piggyback one bounded merge-scheduler slice (§3's incremental
        // merges): instead of occasionally paying a whole Logarithmic Gecko
        // merge inline, every write pays at most `merge_step_pages` of it.
        self.pump_merge_slice();
        self.post_op();
    }

    /// Advance pending incremental Gecko merge work by one bounded step,
    /// charged to the current operation: every host op pays at most
    /// `merge_step_pages` of merge IO inline.
    fn pump_merge_slice(&mut self) {
        if let Some(cfg) = self.backend.gecko_config() {
            if !cfg.sync_merge {
                self.backend
                    .pump_merges(&mut self.dev, &mut self.bm, cfg.merge_step_pages as u64);
            }
        }
    }

    /// Donate one idle-time *quantum* to background maintenance: pump the
    /// due-merge backlog slice by slice until it is drained or the
    /// quantum's page budget (several slices, scaled to the channel count)
    /// is spent. Returns `true` while more background work remains, so
    /// idle loops can keep ticking.
    ///
    /// An idle tick is deliberately bigger than the write path's
    /// piggybacked slice: when idle ticks advanced the scheduler by one
    /// slice each, a workload whose idle gaps were sized in ticks (as the
    /// bench traces are) merely kept pace with newly planned work, and the
    /// deep-merge backlog accumulated during bursts was never drained —
    /// idle-period starvation that concentrated into forced stalls later.
    pub fn idle_tick(&mut self) -> bool {
        if let Some(cfg) = self.backend.gecko_config() {
            if !cfg.sync_merge {
                let slice = cfg.merge_step_pages as u64;
                let budget_slices = 8 * self.dev.geometry().channels.max(1) as u64;
                for _ in 0..budget_slices {
                    if !self.backend.pump_merges(&mut self.dev, &mut self.bm, slice) {
                        return false;
                    }
                }
                return true;
            }
        }
        false
    }

    /// Install the cache entry for a fresh write of `lpn` now at `ppn`
    /// (shared by the write path and GC migrations; §4.1's cache protocol).
    pub(crate) fn install_write_mapping(&mut self, lpn: Lpn, ppn: Ppn) {
        let epoch = self.epoch;
        if let Some(e) = self.cache.lookup(lpn) {
            // Before-image is the currently cached address: report it
            // invalid immediately; the UIP flag (covering the
            // flash-resident entry's before-image) is left as-is.
            // For a recovery-restored entry the same page may be re-reported
            // by the C.3 correction path, so count it leniently.
            let (old, uncertain) = (e.ppn, e.uncertain);
            if uncertain {
                self.invalidate_user_page_lenient(old);
            } else {
                self.invalidate_user_page(old);
            }
            self.cache.update_entry(lpn, |e| {
                e.ppn = ppn;
                e.dirty = true;
                e.written_epoch = epoch;
            });
            self.cache.promote(lpn);
        } else {
            // Unknown before-image: defer identification via the UIP flag.
            self.make_room();
            self.cache.insert(CacheEntry {
                lpn,
                ppn,
                dirty: true,
                uip: true,
                uncertain: false,
                written_epoch: epoch,
            });
        }
    }

    /// Application read: returns the stored version tag, or `None` if the
    /// page was never written.
    pub fn read(&mut self, lpn: Lpn) -> Option<u64> {
        let t0 = self.dev.clock().now_us();
        let version = self.read_inner(lpn);
        let now = self.dev.clock().now_us();
        self.dev
            .telemetry_mut()
            .record_span(SpanKind::HostRead, lpn.0, t0, now);
        version
    }

    fn read_inner(&mut self, lpn: Lpn) -> Option<u64> {
        assert!(
            self.geometry().contains_lpn(lpn),
            "read outside logical space: {lpn:?}"
        );
        self.counters.reads += 1;
        self.dev.stats_mut().logical_reads += 1;
        let ppn = if let Some(e) = self.cache.lookup(lpn) {
            let p = e.ppn;
            self.cache.promote(lpn);
            p
        } else {
            let p = self
                .tt
                .lookup(&mut self.dev, lpn, IoPurpose::TranslationFetch)?;
            self.make_room();
            self.cache.insert(CacheEntry::clean(lpn, p));
            self.post_op();
            p
        };
        let data = self
            .dev
            .read_page(ppn, IoPurpose::UserRead)
            .expect("mapped page readable");
        let (stored_lpn, version) = data.as_user().expect("user block page holds user data");
        debug_assert_eq!(stored_lpn, lpn, "mapping must point at this page's data");
        // Reads also donate a bounded merge slice (after the data is
        // served): they never flush or schedule merges themselves, so this
        // is pure background capacity that can never concentrate into a
        // forced drain.
        self.pump_merge_slice();
        Some(version)
    }

    /// Host TRIM/discard: declare logical page `lpn`'s contents dead. The
    /// mapping is durably removed (subsequent reads return `None`, even
    /// across a crash) and the physical copy is reported invalid, so GC can
    /// reclaim it without migration — the workload GeckoFTL's erase markers
    /// handle without any cleaning writes. Returns `true` if a mapping
    /// existed.
    pub fn trim(&mut self, lpn: Lpn) -> bool {
        let t0 = self.dev.clock().now_us();
        let had = self.trim_inner(lpn);
        let now = self.dev.clock().now_us();
        self.dev
            .telemetry_mut()
            .record_span(SpanKind::HostTrim, lpn.0, t0, now);
        had
    }

    fn trim_inner(&mut self, lpn: Lpn) -> bool {
        assert!(
            self.geometry().contains_lpn(lpn),
            "trim outside logical space: {lpn:?}"
        );
        self.maybe_gc();
        self.counters.trims += 1;
        let tpage = self.tt.tpage_of(lpn);
        // Push this translation page's dirty cached state down first: the
        // unmap below must supersede a version that already reflects the
        // cache, so the before-image it returns is the true newest copy and
        // recovery's version-chain diff (App. C.2.2) sees one coherent
        // mapped → unmapped transition.
        self.sync_tpage(tpage);
        self.cache.remove(lpn);
        // Keep the pre-unmap version findable for recovery's diffs, exactly
        // as sync_tpage protects the pre-sync version.
        if self.backend.is_gecko() {
            if let Some(old) = self.tt.tpage_location(tpage) {
                self.bm.protect(self.geometry().block_of(old));
            }
            if self.bm.protected_count() > 8 {
                self.backend.store().flush(&mut self.dev, &mut self.bm);
                self.after_validity_op();
            }
        }
        let before = self.tt.unmap(&mut self.dev, &mut self.bm, lpn);
        if let Some(ppn) = before {
            self.invalidate_user_page(ppn);
        }
        self.pump_merge_slice();
        self.post_op();
        before.is_some()
    }

    /// [`FtlEngine::write`] with the op charged to `tenant`.
    pub fn write_for(&mut self, tenant: TenantId, lpn: Lpn, version: u64) {
        let t0 = self.dev.clock().now_us();
        let gc0 = self.gc_attrib_us;
        let ops0 = self.counters.gc_operations;
        let mig0 = self.counters.gc_migrations;
        if self.qos_should_prepay(tenant) {
            self.gc_prepay();
        }
        self.write(lpn, version);
        let dt = self.dev.clock().now_us() - t0;
        let gc = self.gc_attrib_us - gc0;
        let (ops, mig) = (
            self.counters.gc_operations - ops0,
            self.counters.gc_migrations - mig0,
        );
        let page_bytes = self.geometry().page_bytes as u64;
        let s = self.tenants.entry(tenant).or_default();
        s.writes += 1;
        s.bytes_written += page_bytes;
        s.gc_operations += ops;
        s.gc_migrations += mig;
        s.gc_debt_us += gc;
        s.write_lat.record(dt);
    }

    /// [`FtlEngine::read`] with the op charged to `tenant`.
    pub fn read_for(&mut self, tenant: TenantId, lpn: Lpn) -> Option<u64> {
        let t0 = self.dev.clock().now_us();
        let version = self.read(lpn);
        let dt = self.dev.clock().now_us() - t0;
        let s = self.tenants.entry(tenant).or_default();
        s.reads += 1;
        s.read_lat.record(dt);
        version
    }

    /// [`FtlEngine::trim`] with the op charged to `tenant`.
    pub fn trim_for(&mut self, tenant: TenantId, lpn: Lpn) -> bool {
        let gc0 = self.gc_attrib_us;
        let ops0 = self.counters.gc_operations;
        let mig0 = self.counters.gc_migrations;
        let had = self.trim(lpn);
        let s = self.tenants.entry(tenant).or_default();
        s.trims += 1;
        s.gc_operations += self.counters.gc_operations - ops0;
        s.gc_migrations += self.counters.gc_migrations - mig0;
        s.gc_debt_us += self.gc_attrib_us - gc0;
        had
    }

    /// Per-tenant accounting collected by the `*_for` entry points.
    pub fn tenant_stats(&self) -> &BTreeMap<TenantId, TenantStats> {
        &self.tenants
    }

    /// Accumulate simulated GC time for tenant-debt attribution (called by
    /// the GC paths in `engine_gc`).
    pub(crate) fn note_gc_time(&mut self, us: f64) {
        self.gc_attrib_us += us;
    }

    /// Whether `tenant` should prepay garbage collection before its next
    /// write: the QoS budget is on, the free pool is below the headroom
    /// target, and this tenant carries a strictly above-average share of
    /// the GC debt.
    fn qos_should_prepay(&self, tenant: TenantId) -> bool {
        let headroom = self.cfg.qos_headroom_blocks;
        if headroom == 0 {
            return false;
        }
        if self.bm.free_blocks() >= self.cfg.gc_free_threshold + headroom {
            return false;
        }
        let mine = self.tenants.get(&tenant).map_or(0.0, |s| s.gc_debt_us);
        let total: f64 = self.tenants.values().map(|s| s.gc_debt_us).sum();
        let n = self.tenants.len().max(1) as f64;
        mine * n > total
    }

    /// Collect up to two victims toward the QoS headroom target, charged to
    /// the caller (a debt-heavy tenant's write path). Bounded so one prepay
    /// never becomes a forced-drain stall of its own.
    fn gc_prepay(&mut self) {
        let t0 = self.dev.clock().now_us();
        let target = self.cfg.gc_free_threshold + self.cfg.qos_headroom_blocks;
        let mut budget = 2;
        while self.bm.free_blocks() < target && budget > 0 {
            if !self.collect_once() {
                break;
            }
            budget -= 1;
            self.maybe_checkpoint();
            self.pump_merge_slice();
        }
        self.gc_attrib_us += self.dev.clock().now_us() - t0;
    }

    /// The engine's current belief about where `lpn` lives: the cached
    /// mapping if present, else the flash-resident translation table.
    /// Unlike [`FtlEngine::read`], does not touch the cache (useful for
    /// invariant checks in tests; charges a `TranslationFetch` read on
    /// cache misses).
    pub fn current_mapping(&mut self, lpn: Lpn) -> Option<Ppn> {
        if let Some(e) = self.cache.lookup(lpn) {
            return Some(e.ppn);
        }
        self.tt
            .lookup(&mut self.dev, lpn, IoPurpose::TranslationFetch)
    }

    /// Ask the validity store for a block's invalid bitmap without running a
    /// GC operation (test/debug introspection; charges query IO).
    pub fn debug_validity(&mut self, block: flash_sim::BlockId) -> crate::gecko::Bitmap {
        self.backend
            .store()
            .gc_query(&mut self.dev, &mut self.bm, block)
    }

    /// Report a user page invalid to the validity store and to BVC.
    pub(crate) fn invalidate_user_page(&mut self, ppn: Ppn) {
        self.gc_invalidated.insert(ppn);
        self.backend
            .store()
            .mark_invalid(&mut self.dev, &mut self.bm, ppn);
        self.bm.page_obsolete(&mut self.dev, ppn);
        self.after_validity_op();
    }

    /// As [`FtlEngine::invalidate_user_page`], but tolerant of BVC
    /// double-counting — the App. C.3.2 re-report case.
    pub(crate) fn invalidate_user_page_lenient(&mut self, ppn: Ppn) {
        self.gc_invalidated.insert(ppn);
        self.backend
            .store()
            .mark_invalid(&mut self.dev, &mut self.bm, ppn);
        self.bm.page_obsolete_lenient(&mut self.dev, ppn);
        self.after_validity_op();
    }

    /// Evict (syncing as needed) until the cache has room for one insert.
    pub(crate) fn make_room(&mut self) {
        while self.cache.is_full() {
            let victim = *self.cache.peek_lru().expect("full cache has an LRU entry");
            if victim.dirty {
                self.sync_tpage(self.tt.tpage_of(victim.lpn));
            }
            // The sync may have been aborted (recovery false alarm), in
            // which case the entry is now clean; drop it either way.
            self.cache.remove(victim.lpn);
        }
    }

    /// Synchronization operation (§4): push every dirty cached entry of one
    /// translation page to flash, identify before-images (UIP protocol) and
    /// correct recovered flags (App. C.3).
    pub(crate) fn sync_tpage(&mut self, tpage: u32) {
        let (lo, hi) = self.tt.lpn_range(tpage);
        let lpns = self.cache.dirty_lpns_in_range(lo, hi);
        if lpns.is_empty() {
            return;
        }
        self.counters.syncs += 1;
        let updates: Vec<(Lpn, Ppn)> = lpns
            .iter()
            .map(|&lpn| {
                let e = self.cache.lookup(lpn).expect("dirty entry cached");
                (lpn, e.ppn)
            })
            .collect();
        // Keep the previous translation-page version findable for GeckoRec's
        // buffer recovery (App. C.2.2). The protection must be in place
        // *before* the synchronize call marks the old version obsolete —
        // otherwise its block can become empty and be erased on the spot,
        // leaving a gap in the version chain recovery diffs.
        if self.backend.is_gecko() {
            if let Some(old) = self.tt.tpage_location(tpage) {
                self.bm.protect(self.geometry().block_of(old));
            }
            // Bound the protected set: when it grows past a handful of
            // blocks, force a Gecko flush — this makes every buffered report
            // durable, advances the recovery threshold, and lifts all
            // protections (the paper bounds its recovery structures the same
            // way, cf. C.2.2's cap on buffer absorption).
            if self.bm.protected_count() > 8 {
                self.backend.store().flush(&mut self.dev, &mut self.bm);
                self.after_validity_op();
            }
        }
        let outcome = self
            .tt
            .synchronize(&mut self.dev, &mut self.bm, tpage, &updates);
        if outcome.aborted {
            self.counters.syncs_aborted += 1;
        }
        // Collect every before-image to report, then submit them as one
        // atomic batch: a sync's reports must not straddle a Gecko buffer
        // flush, or a crash would lose the tail while recovery's C.2.2 diff
        // skips this sync (its translation page predates the flush).
        let mut reports: Vec<(Ppn, bool)> = Vec::new();
        for (lpn, before) in &outcome.before_images {
            let e = *self.cache.lookup(*lpn).expect("synced entry cached");
            if e.uip {
                if let Some(before_ppn) = *before {
                    if e.uncertain {
                        // App. C.3.2: the before-image may have been erased
                        // and rewritten before the crash; only report it if
                        // its spare area still names this logical page.
                        let still_before = self
                            .dev
                            .read_spare(before_ppn, IoPurpose::TranslationSync)
                            .is_ok_and(
                                |s| matches!(s.info, SpareInfo::User { lpn: l, .. } if l == *lpn),
                            );
                        if still_before {
                            reports.push((before_ppn, true));
                        }
                    } else {
                        reports.push((before_ppn, false));
                    }
                }
            }
            self.cache.update_entry(*lpn, |e| {
                e.dirty = false;
                e.uip = false;
                e.uncertain = false;
            });
        }
        if !reports.is_empty() {
            for &(ppn, lenient) in &reports {
                self.gc_invalidated.insert(ppn);
                if lenient {
                    self.bm.page_obsolete_lenient(&mut self.dev, ppn);
                } else {
                    self.bm.page_obsolete(&mut self.dev, ppn);
                }
            }
            let ppns: Vec<Ppn> = reports.iter().map(|(p, _)| *p).collect();
            self.backend
                .store()
                .mark_invalid_batch(&mut self.dev, &mut self.bm, &ppns);
            self.after_validity_op();
        }
        for lpn in &outcome.already_synced {
            // The entry already matches flash: either a recovered entry that
            // was never dirty (App. C.3.1) or an ABA physical-address-reuse
            // cycle (see `TranslationTable::synchronize`) — clear the
            // assumed flags without writing anything.
            self.cache.update_entry(*lpn, |e| {
                e.dirty = false;
                e.uip = false;
                e.uncertain = false;
            });
        }
    }

    /// Verify recovery-recreated entries that did not fit into the cache:
    /// pass each through a synchronization operation (App. C.3 corrections)
    /// and drop it again. Used only by [`crate::recovery::gecko_recover`].
    pub(crate) fn resolve_recovered_overflow(&mut self, entries: Vec<CacheEntry>) {
        for e in entries {
            self.make_room();
            self.cache.insert(e);
            self.sync_tpage(self.tt.tpage_of(e.lpn));
            self.cache.remove(e.lpn);
        }
    }

    /// Synchronize every dirty entry (clean shutdown; GC fallback).
    pub fn sync_all_dirty(&mut self) {
        while let Some(e) = self.cache.oldest_dirty() {
            let tpage = self.tt.tpage_of(e.lpn);
            self.sync_tpage(tpage);
        }
    }

    /// Clean shutdown: synchronize all dirty entries, persist validity
    /// buffers and settle any background merge work. Models the
    /// battery-backed pre-shutdown work of DFTL/µ-FTL.
    pub fn shutdown_clean(&mut self) {
        self.sync_all_dirty();
        self.backend.store().flush(&mut self.dev, &mut self.bm);
        // The flush may itself have scheduled a merge; finish it so the
        // device is fully quiescent at power-off.
        while self.idle_tick() {}
        self.after_validity_op();
    }

    /// Count a user-page write toward the checkpoint period. GC migrations
    /// tick too: they create dirty entries and emit user pages, and the
    /// recovery scan's `2·C`-page bound is only sound if the period counts
    /// every page the backwards scan will have to walk over.
    pub(crate) fn tick_checkpoint_clock(&mut self) {
        if matches!(self.cfg.recovery, RecoveryPolicy::CheckpointDeferred) {
            self.ops_since_checkpoint += 1;
        }
    }

    /// Take a checkpoint if the period has elapsed.
    pub(crate) fn maybe_checkpoint(&mut self) {
        if matches!(self.cfg.recovery, RecoveryPolicy::CheckpointDeferred) {
            if let Some(period) = self.cfg.checkpoint_period {
                if self.ops_since_checkpoint >= period {
                    self.checkpoint();
                }
            }
        }
    }

    /// Bookkeeping after each application-level operation.
    fn post_op(&mut self) {
        match self.cfg.recovery {
            RecoveryPolicy::CheckpointDeferred => {
                self.maybe_checkpoint();
            }
            RecoveryPolicy::RestrictedDirty { fraction } => {
                let max_dirty = ((self.cfg.cache_entries as f64 * fraction) as usize).max(1);
                while self.cache.dirty_count() > max_dirty {
                    let lpn = self.cache.oldest_dirty().expect("dirty entries exist").lpn;
                    self.sync_tpage(self.tt.tpage_of(lpn));
                }
            }
            RecoveryPolicy::Battery => {}
        }
        self.after_validity_op();
    }

    /// Runtime checkpoint (§4.3): synchronize dirty entries not written
    /// since the previous checkpoint, bounding recovery's backwards scan to
    /// `2·C` spare reads.
    pub fn checkpoint(&mut self) {
        self.counters.checkpoints += 1;
        self.ops_since_checkpoint = 0;
        let stale = self.cache.dirty_written_before(self.epoch);
        for lpn in stale {
            // May already have been cleaned by an earlier batched sync.
            if self.cache.lookup(lpn).is_some_and(|e| e.dirty) {
                self.sync_tpage(self.tt.tpage_of(lpn));
            }
        }
        self.epoch += 1;
    }

    /// Static wear-leveling (Appendix D): forcibly relocate the live pages
    /// of an unworn, cold block so it returns to the allocation pool and
    /// starts absorbing writes. The victim is typically chosen by
    /// [`crate::wear::WearLeveler::pick_static_victim`].
    ///
    /// Returns the number of pages migrated, or `None` if the block is not
    /// an eligible (sealed, user-group) victim.
    pub fn wear_level_block(&mut self, block: flash_sim::BlockId) -> Option<u32> {
        if self.bm.group_of(block) != Some(BlockGroup::User)
            || self.bm.is_active(block)
            || !self.dev.block_is_full(block)
        {
            return None;
        }
        let migrated_before = self.counters.gc_migrations;
        // Reuse the GC collection machinery: it migrates exactly the live
        // pages (wear-leveling migrations are GC migrations with a
        // hand-picked victim) and erases the block.
        self.collect_user_block(block);
        Some((self.counters.gc_migrations - migrated_before) as u32)
    }

    /// Detect Gecko buffer flushes and lift translation-block protections
    /// (App. C.2.2: "When Logarithmic Gecko's buffer is flushed, we clear
    /// the list").
    fn after_validity_op(&mut self) {
        let Some(flushed) = self.backend.last_flush_seq() else {
            return;
        };
        if flushed > self.last_flush_seen {
            self.last_flush_seen = flushed;
            for block in self.bm.clear_protection() {
                let empty = self.bm.valid_pages(block) == 0;
                let erasable = self.bm.erase_empty_metadata
                    && !self.bm.is_active(block)
                    && self.bm.group_of(block).is_some_and(BlockGroup::is_metadata);
                if empty && erasable {
                    self.bm
                        .erase_and_free(&mut self.dev, block, IoPurpose::TranslationGc);
                }
            }
        }
    }
}
