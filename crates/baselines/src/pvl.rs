//! The Page Validity Log of IB-FTL (paper §6 "Page Validity Metadata" and
//! Appendix E).
//!
//! IB-FTL logs the addresses of invalidated pages in flash. Entries carry a
//! timestamp (the paper's Appendix E extension) so the log can be *cleaned*:
//! when it grows past `X = 2·D` entries (`D` = over-provisioned pages, an
//! upper bound on simultaneously-invalid pages), the oldest log page is
//! reclaimed — entries newer than their block's last erase are reinserted,
//! the rest discarded. Each entry is reinserted on average once, so cleaning
//! costs `O(1/V)` writes per update.
//!
//! The original design chains log entries of the same block with linked-list
//! pointers whose heads live in RAM. We keep the RAM *accounting* of that
//! design (two words per block: chain head + erase timestamp) but index the
//! chains as per-block sets of log pages, which reads the same pages a chain
//! walk would while avoiding the dangling-pointer problem the paper's
//! cleaning extension leaves open (see DESIGN.md).

use flash_sim::{BlockId, FlashDevice, Geometry, IoPurpose, MetaKind, PageData, Ppn};
use geckoftl_core::gecko::Bitmap;
use geckoftl_core::validity::{MetaSink, ValidityStore};
use std::collections::{BTreeSet, HashMap};

/// One log record: a page that became invalid, and when.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PvlEntry {
    /// The invalidated physical page.
    pub ppn: Ppn,
    /// Device sequence number of the invalidation report.
    pub ts: u64,
}

/// Payload of one log page in flash.
#[derive(Clone, Debug)]
pub struct PvlPagePayload {
    /// Monotonic log-page sequence number.
    pub index: u64,
    /// The packed log records.
    pub entries: Vec<PvlEntry>,
}

/// The flash-resident page validity log with its RAM-resident index.
#[derive(Debug)]
pub struct PvlStore {
    geo: Geometry,
    /// RAM write buffer (one page worth of entries).
    buffer: Vec<PvlEntry>,
    /// Entries per log page.
    entries_per_page: u32,
    /// Flash-resident log pages, oldest first: `(index, ppn, live entries)`.
    pages: Vec<(u64, Ppn)>,
    next_index: u64,
    /// Per-block: which log pages hold entries for the block (the chain).
    chains: HashMap<BlockId, BTreeSet<u64>>,
    /// Per-block last-erase timestamp (RAM, per Appendix E).
    erase_ts: Vec<u64>,
    /// Cleaning threshold in entries (`X = 2·D`).
    max_entries: u64,
    /// Entries currently in flash (excluding the buffer).
    flash_entries: u64,
}

impl PvlStore {
    /// An empty log for a device geometry, with the Appendix-E bound
    /// `X = 2·D`.
    pub fn new(geo: Geometry) -> Self {
        let entry_bytes = 16; // 4B ppn + 8B timestamp + 4B chain pointer
        let entries_per_page = (geo.page_bytes - 32) / entry_bytes;
        PvlStore {
            geo,
            buffer: Vec::new(),
            entries_per_page,
            pages: Vec::new(),
            next_index: 0,
            chains: HashMap::new(),
            erase_ts: vec![0; geo.blocks as usize],
            max_entries: 2 * geo.overprovisioned_pages(),
            flash_entries: 0,
        }
    }

    /// Reassemble the store by scanning surviving log pages in order (clean
    /// restart; the paper's IB-FTL recovery scans the whole log).
    pub(crate) fn assemble_from_log(
        geo: Geometry,
        dev: &mut FlashDevice,
        pages: Vec<(u64, Ppn)>,
    ) -> Self {
        let mut store = PvlStore::new(geo);
        // The per-block erase timestamps live in spare areas (Appendix D)
        // and survive power-off; without them, pre-erase log entries would
        // resurface and mark rewritten live pages invalid.
        for b in geo.iter_blocks() {
            store.erase_ts[b.0 as usize] = dev.erase_seq(b);
        }
        for (index, ppn) in pages {
            let payload = dev
                .read_page(ppn, IoPurpose::Recovery)
                .expect("log page readable")
                .blob::<PvlPagePayload>()
                .expect("pvl payload")
                .clone();
            store.flash_entries += payload.entries.len() as u64;
            for e in &payload.entries {
                store
                    .chains
                    .entry(store.geo.block_of(e.ppn))
                    .or_default()
                    .insert(index);
            }
            store.next_index = store.next_index.max(index + 1);
            store.pages.push((index, ppn));
        }
        store
    }

    /// Entries per log page (`V` for the log).
    pub fn entries_per_page(&self) -> u32 {
        self.entries_per_page
    }

    /// Total live entries (flash + buffer).
    pub fn len(&self) -> u64 {
        self.flash_entries + self.buffer.len() as u64
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, entry: PvlEntry) {
        self.buffer.push(entry);
        if self.buffer.len() >= self.entries_per_page as usize {
            self.flush_buffer(dev, sink);
            self.maybe_clean(dev, sink);
        }
    }

    fn flush_buffer(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        if self.buffer.is_empty() {
            return;
        }
        let index = self.next_index;
        self.next_index += 1;
        let entries = std::mem::take(&mut self.buffer);
        self.flash_entries += entries.len() as u64;
        for e in &entries {
            self.chains
                .entry(self.geo.block_of(e.ppn))
                .or_default()
                .insert(index);
        }
        let ppn = sink.append_meta(
            dev,
            MetaKind::Pvl,
            index,
            PageData::blob_of(PvlPagePayload { index, entries }),
            IoPurpose::ValidityUpdate,
        );
        self.pages.push((index, ppn));
    }

    /// Appendix-E cleaning: reclaim the oldest log page while over budget.
    ///
    /// Bounded to one pass over the log per invocation: if nothing in the
    /// scanned pages is obsolete (fewer erases than the X = 2·D sizing
    /// assumes), reinsertion makes no net progress and the loop must yield
    /// rather than churn forever.
    fn maybe_clean(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        let mut budget = self.pages.len();
        while self.flash_entries > self.max_entries && self.pages.len() > 1 && budget > 0 {
            budget -= 1;
            let (index, ppn) = self.pages.remove(0);
            let payload = dev
                .read_page(ppn, IoPurpose::ValidityMerge)
                .expect("log page readable")
                .blob::<PvlPagePayload>()
                .expect("pvl payload")
                .clone();
            self.flash_entries -= payload.entries.len() as u64;
            for e in &payload.entries {
                let block = self.geo.block_of(e.ppn);
                if let Some(chain) = self.chains.get_mut(&block) {
                    chain.remove(&index);
                    if chain.is_empty() {
                        self.chains.remove(&block);
                    }
                }
                // Reinsert entries newer than their block's last erase; the
                // rest are obsolete.
                if e.ts > self.erase_ts[block.0 as usize] {
                    self.buffer.push(*e);
                }
            }
            sink.meta_page_obsolete(dev, ppn);
            if self.buffer.len() >= self.entries_per_page as usize {
                self.flush_buffer(dev, sink);
            }
        }
    }
}

impl ValidityStore for PvlStore {
    fn mark_invalid(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppn: Ppn) {
        let ts = dev.now_seq();
        self.push(dev, sink, PvlEntry { ppn, ts });
    }

    fn note_erase(&mut self, dev: &mut FlashDevice, _sink: &mut dyn MetaSink, block: BlockId) {
        // Drop the chain head (RAM) and remember the erase time so cleaning
        // can discard the block's stale records.
        self.erase_ts[block.0 as usize] = dev.now_seq();
        self.chains.remove(&block);
        self.buffer.retain(|e| self.geo.block_of(e.ppn) != block);
    }

    fn gc_query(
        &mut self,
        dev: &mut FlashDevice,
        _sink: &mut dyn MetaSink,
        block: BlockId,
    ) -> Bitmap {
        let b = self.geo.pages_per_block;
        let mut bm = Bitmap::new(b);
        let erase_ts = self.erase_ts[block.0 as usize];
        for e in &self.buffer {
            if self.geo.block_of(e.ppn) == block && e.ts > erase_ts {
                bm.set(self.geo.offset_of(e.ppn).0);
            }
        }
        let Some(chain) = self.chains.get(&block) else {
            return bm;
        };
        let page_of: HashMap<u64, Ppn> = self.pages.iter().copied().collect();
        for index in chain.iter().rev() {
            let ppn = page_of[index];
            let data = dev
                .read_page(ppn, IoPurpose::ValidityQuery)
                .expect("log page readable");
            let payload = data.blob::<PvlPagePayload>().expect("pvl payload");
            for e in &payload.entries {
                if self.geo.block_of(e.ppn) == block && e.ts > erase_ts {
                    bm.set(self.geo.offset_of(e.ppn).0);
                }
            }
        }
        bm
    }

    fn ram_bytes(&self) -> u64 {
        // Paper accounting: one chain-head pointer plus one erase timestamp
        // per block.
        8 * self.geo.blocks as u64
    }

    fn name(&self) -> &'static str {
        "pvl"
    }

    fn flush(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        self.flush_buffer(dev, sink);
        self.maybe_clean(dev, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geckoftl_core::validity::FlatMetaSink;

    fn setup() -> (FlashDevice, FlatMetaSink, PvlStore, Geometry) {
        let geo = Geometry::tiny();
        (
            FlashDevice::new(geo),
            FlatMetaSink::new((40..64).map(BlockId).collect()),
            PvlStore::new(geo),
            geo,
        )
    }

    #[test]
    fn logged_invalidations_are_queryable() {
        let (mut dev, mut sink, mut pvl, _geo) = setup();
        for p in [3u32, 17, 18, 100] {
            pvl.mark_invalid(&mut dev, &mut sink, Ppn(p));
        }
        // Force everything to flash and query.
        geckoftl_core::validity::ValidityStore::flush(&mut pvl, &mut dev, &mut sink);
        let bm = pvl.gc_query(&mut dev, &mut sink, BlockId(1));
        assert!(bm.get(1) && bm.get(2));
        assert!(!bm.get(3));
        assert!(pvl.gc_query(&mut dev, &mut sink, BlockId(0)).get(3));
    }

    #[test]
    fn erase_supersedes_older_entries() {
        let (mut dev, mut sink, mut pvl, _geo) = setup();
        pvl.mark_invalid(&mut dev, &mut sink, Ppn(16));
        geckoftl_core::validity::ValidityStore::flush(&mut pvl, &mut dev, &mut sink);
        pvl.note_erase(&mut dev, &mut sink, BlockId(1));
        dev.erase_block(BlockId(1), IoPurpose::GcMigrateUser)
            .unwrap();
        assert!(pvl.gc_query(&mut dev, &mut sink, BlockId(1)).is_empty());
        // A page must be rewritten (advancing the device clock) before it
        // can become invalid again; such invalidations are visible.
        dev.write_page(
            BlockId(1),
            PageData::User {
                lpn: flash_sim::Lpn(9),
                version: 1,
            },
            flash_sim::SpareInfo::User {
                lpn: flash_sim::Lpn(9),
                before: None,
            },
            IoPurpose::UserWrite,
        )
        .unwrap();
        pvl.mark_invalid(&mut dev, &mut sink, Ppn(16));
        assert!(pvl.gc_query(&mut dev, &mut sink, BlockId(1)).get(0));
    }

    #[test]
    fn cleaning_bounds_log_size() {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        let mut sink = FlatMetaSink::new((32..64).map(BlockId).collect());
        let mut pvl = PvlStore::new(geo);
        // Shrink the budget so cleaning kicks in quickly.
        pvl.max_entries = 64;
        // Repeatedly invalidate and "erase" so most entries become obsolete.
        for round in 0..50u32 {
            let block = BlockId(round % 8);
            for off in 0..8 {
                pvl.mark_invalid(&mut dev, &mut sink, Ppn(block.0 * 16 + off));
            }
            pvl.note_erase(&mut dev, &mut sink, block);
        }
        assert!(
            pvl.len() <= pvl.max_entries + pvl.entries_per_page() as u64,
            "log holds {} entries (budget {})",
            pvl.len(),
            pvl.max_entries
        );
    }

    #[test]
    fn cleaning_terminates_when_nothing_is_obsolete() {
        // No erases ever: every entry is live, so cleaning can make no
        // progress; it must yield instead of looping forever.
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        let mut sink = FlatMetaSink::new((32..64).map(BlockId).collect());
        let mut pvl = PvlStore::new(geo);
        pvl.max_entries = 8; // far below the live count we create
        for p in 0..512u32 {
            pvl.mark_invalid(&mut dev, &mut sink, Ppn(p));
        }
        assert!(pvl.len() >= 512, "nothing was discardable");
    }

    #[test]
    fn buffered_updates_amortize_writes() {
        let (mut dev, mut sink, mut pvl, _geo) = setup();
        let v = pvl.entries_per_page();
        for p in 0..v - 1 {
            pvl.mark_invalid(&mut dev, &mut sink, Ppn(p % 512));
        }
        assert_eq!(dev.stats().counts(IoPurpose::ValidityUpdate).page_writes, 0);
        pvl.mark_invalid(&mut dev, &mut sink, Ppn(0));
        assert_eq!(dev.stats().counts(IoPurpose::ValidityUpdate).page_writes, 1);
    }
}
