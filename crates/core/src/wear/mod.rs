//! Wear-leveling (paper Appendix D).
//!
//! GeckoFTL deliberately keeps almost no wear-leveling metadata in
//! integrated RAM: per-block erase counts and erase timestamps are persisted
//! in spare areas (the simulator models them as block attributes surviving
//! erases, per the paper's citation of Marshall & Manning), and only a few
//! bytes of *global statistics* live in RAM. A gradual scan — one spare-area
//! read per application flash write — keeps those statistics fresh and
//! spots outliers:
//!
//! * a block with an exceptionally **low erase count** relative to the
//!   global maximum holds static data and is a candidate for forced
//!   migration (static wear-leveling);
//! * allocation prefers less-worn free blocks (dynamic wear-leveling).
//!
//! The appendix shows the scan keeps up as long as the fraction of non-static
//! blocks `1/X` satisfies `X < B`, and degrades gracefully beyond.

use flash_sim::{BlockId, FlashDevice, Geometry, IoPurpose, SpanKind};

/// Global wear statistics (the only RAM-resident wear state, ≈30–40 bytes).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WearStats {
    /// Smallest erase count seen in the current scan window.
    pub min_erases: u32,
    /// Largest erase count seen in the current scan window.
    pub max_erases: u32,
    /// Mean erase count over the last completed scan.
    pub avg_erases: f64,
    /// Number of full device scans completed.
    pub scans_completed: u64,
}

impl WearStats {
    /// Spread between the most and least worn blocks.
    pub fn spread(&self) -> u32 {
        self.max_erases.saturating_sub(self.min_erases)
    }
}

/// The gradual-scan wear-leveler.
#[derive(Clone, Debug)]
pub struct WearLeveler {
    geo: Geometry,
    cursor: u32,
    /// Statistics being accumulated by the in-progress scan.
    acc_min: u32,
    acc_max: u32,
    acc_sum: u64,
    /// Last completed scan's statistics.
    stats: WearStats,
    /// How many spare areas to inspect per flash write (1 in the appendix;
    /// raised when `X >> B`).
    pub scan_rate: u32,
    /// A block this much less worn than the average is a static-data
    /// candidate.
    pub static_threshold: u32,
}

impl WearLeveler {
    /// A leveler for a device geometry with the appendix's defaults.
    pub fn new(geo: Geometry) -> Self {
        WearLeveler {
            geo,
            cursor: 0,
            acc_min: u32::MAX,
            acc_max: 0,
            acc_sum: 0,
            stats: WearStats::default(),
            scan_rate: 1,
            static_threshold: 8,
        }
    }

    /// RAM cost of wear-leveling state: the global erase counter plus
    /// min/max/avg statistics (paper: "30–40 bytes at most").
    pub fn ram_bytes(&self) -> u64 {
        40
    }

    /// Statistics from the last completed scan.
    pub fn stats(&self) -> WearStats {
        self.stats
    }

    /// Advance the gradual scan: called once per application flash write,
    /// inspecting `scan_rate` blocks' spare areas (3 µs each).
    pub fn on_flash_write(&mut self, dev: &mut FlashDevice) {
        let span_t0 = dev.clock().now_us();
        let span_from = self.cursor;
        for _ in 0..self.scan_rate {
            let block = BlockId(self.cursor);
            // Reading the per-block wear attributes is a spare-area read.
            if dev.written_pages(block) > 0 {
                let _ = dev.read_spare(self.geo.first_page(block), IoPurpose::WearLevel);
            }
            let erases = dev.erase_count(block);
            self.acc_min = self.acc_min.min(erases);
            self.acc_max = self.acc_max.max(erases);
            self.acc_sum += erases as u64;
            self.cursor += 1;
            if self.cursor == self.geo.blocks {
                self.stats = WearStats {
                    min_erases: if self.acc_min == u32::MAX {
                        0
                    } else {
                        self.acc_min
                    },
                    max_erases: self.acc_max,
                    avg_erases: self.acc_sum as f64 / self.geo.blocks as f64,
                    scans_completed: self.stats.scans_completed + 1,
                };
                self.cursor = 0;
                self.acc_min = u32::MAX;
                self.acc_max = 0;
                self.acc_sum = 0;
            }
        }
        let now = dev.clock().now_us();
        dev.telemetry_mut()
            .record_span(SpanKind::WearScan, span_from, span_t0, now);
    }

    /// Find a static-data candidate: a fully-written block whose erase count
    /// lags the current maximum by more than the threshold and whose last
    /// erase is the oldest among candidates (large "age").
    pub fn pick_static_victim(
        &self,
        dev: &FlashDevice,
        eligible: impl Fn(BlockId) -> bool,
    ) -> Option<BlockId> {
        let max = self.stats.max_erases;
        let mut best: Option<(u64, BlockId)> = None;
        for b in self.geo.iter_blocks() {
            if !eligible(b) || !dev.block_is_full(b) {
                continue;
            }
            if dev.erase_count(b) + self.static_threshold > max {
                continue;
            }
            let age_key = dev.erase_seq(b);
            if best.is_none_or(|(a, _)| age_key < a) {
                best = Some((age_key, b));
            }
        }
        best.map(|(_, b)| b)
    }

    /// Among free blocks, the least worn one — dynamic wear-leveling's
    /// preferred allocation target for hot data.
    pub fn least_worn(&self, dev: &FlashDevice, candidates: &[BlockId]) -> Option<BlockId> {
        candidates
            .iter()
            .copied()
            .min_by_key(|b| dev.erase_count(*b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::Geometry;

    #[test]
    fn scan_completes_and_reports_stats() {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        // Wear block 0 five times, block 1 once.
        for _ in 0..5 {
            dev.erase_block(BlockId(0), IoPurpose::WearLevel).unwrap();
        }
        dev.erase_block(BlockId(1), IoPurpose::WearLevel).unwrap();
        let mut wl = WearLeveler::new(geo);
        for _ in 0..geo.blocks {
            wl.on_flash_write(&mut dev);
        }
        let s = wl.stats();
        assert_eq!(s.scans_completed, 1);
        assert_eq!(s.max_erases, 5);
        assert_eq!(s.min_erases, 0);
        assert!(s.avg_erases > 0.0 && s.avg_erases < 1.0);
        assert_eq!(s.spread(), 5);
    }

    #[test]
    fn scan_cost_is_spare_reads_only() {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        dev.write_page(
            BlockId(0),
            flash_sim::PageData::User {
                lpn: flash_sim::Lpn(0),
                version: 1,
            },
            flash_sim::SpareInfo::User {
                lpn: flash_sim::Lpn(0),
                before: None,
            },
            IoPurpose::UserWrite,
        )
        .unwrap();
        let mut wl = WearLeveler::new(geo);
        wl.on_flash_write(&mut dev); // inspects block 0, which has a page
        let c = dev.stats().counts(IoPurpose::WearLevel);
        assert_eq!(c.spare_reads, 1);
        assert_eq!(c.page_reads, 0);
        assert_eq!(c.page_writes, 0);
    }

    #[test]
    fn static_victim_is_old_and_unworn() {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        // Block 5: written full, never erased (static). Others: worn.
        for b in 0..geo.blocks {
            if b == 5 {
                continue;
            }
            for _ in 0..10 {
                dev.erase_block(BlockId(b), IoPurpose::WearLevel).unwrap();
            }
        }
        for i in 0..geo.pages_per_block {
            dev.write_page(
                BlockId(5),
                flash_sim::PageData::User {
                    lpn: flash_sim::Lpn(i),
                    version: 1,
                },
                flash_sim::SpareInfo::User {
                    lpn: flash_sim::Lpn(i),
                    before: None,
                },
                IoPurpose::UserWrite,
            )
            .unwrap();
        }
        let mut wl = WearLeveler::new(geo);
        for _ in 0..geo.blocks {
            wl.on_flash_write(&mut dev);
        }
        assert_eq!(wl.pick_static_victim(&dev, |_| true), Some(BlockId(5)));
        assert_eq!(wl.pick_static_victim(&dev, |b| b != BlockId(5)), None);
    }

    #[test]
    fn least_worn_allocation() {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        for _ in 0..3 {
            dev.erase_block(BlockId(0), IoPurpose::WearLevel).unwrap();
        }
        dev.erase_block(BlockId(1), IoPurpose::WearLevel).unwrap();
        let wl = WearLeveler::new(geo);
        assert_eq!(
            wl.least_worn(&dev, &[BlockId(0), BlockId(1), BlockId(2)]),
            Some(BlockId(2))
        );
    }
}
