//! Shared simulation drivers for the experiments.

use flash_sim::{Geometry, StatsSnapshot};
use ftl_workloads::{Trace, Uniform, WorkloadOp};
use geckoftl_core::ftl::FtlEngine;

/// The default simulation geometry for write-amplification experiments:
/// 1024 blocks of 128 × 4 KB pages (512 MB) at the paper's R = 0.7.
///
/// Keeps the paper's B, P and R; only K is scaled down so a full experiment
/// sweep runs in seconds. Figures that vary a parameter (B, K, R) derive
/// their geometries from this one.
pub fn sim_geometry() -> Geometry {
    Geometry::new(1 << 10, 1 << 7, 1 << 12, 0.7)
}

/// Write every logical page once (sequentially) so the device reaches its
/// steady-state fill level before measurements start.
pub fn fill_sequential(engine: &mut FtlEngine) {
    let logical = engine.geometry().logical_pages();
    for lpn in 0..logical {
        engine.write(flash_sim::Lpn(lpn as u32), lpn);
    }
}

/// Apply `n` operations from a workload generator.
pub fn drive(engine: &mut FtlEngine, gen: impl Iterator<Item = WorkloadOp>, n: u64) {
    let mut version = 1u64 << 32;
    for op in gen.take(n as usize) {
        match op {
            WorkloadOp::Write(lpn) => {
                version += 1;
                engine.write(lpn, version);
            }
            WorkloadOp::Read(lpn) => {
                let _ = engine.read(lpn);
            }
            WorkloadOp::Trim(lpn) => {
                engine.trim(lpn);
            }
            WorkloadOp::Idle(ticks) => {
                for _ in 0..ticks {
                    engine.idle_tick();
                }
            }
        }
    }
}

/// Replay a recorded [`Trace`] against an engine, routing each op through
/// the per-tenant entry points (`write_for`/`read_for`/`trim_for`) so
/// tenant accounting and QoS apply. `version` threads a monotonically
/// increasing write payload across multiple replay calls; start it at any
/// value and pass the same variable back in for a continuation.
pub fn replay_trace(engine: &mut FtlEngine, trace: &Trace, version: &mut u64) {
    for (op, tenant) in trace.iter_with_tenants() {
        match op {
            WorkloadOp::Write(lpn) => {
                *version += 1;
                engine.write_for(tenant, lpn, *version);
            }
            WorkloadOp::Read(lpn) => {
                let _ = engine.read_for(tenant, lpn);
            }
            WorkloadOp::Trim(lpn) => {
                engine.trim_for(tenant, lpn);
            }
            WorkloadOp::Idle(ticks) => {
                for _ in 0..ticks {
                    engine.idle_tick();
                }
            }
        }
    }
}

/// One measured interval of a workload (Figure 9's per-10k-write rows).
#[derive(Clone, Debug)]
pub struct MeasuredInterval {
    /// Interval index.
    pub index: usize,
    /// IO delta over the interval.
    pub delta: StatsSnapshot,
}

/// Driver: precondition an engine, then measure `intervals` intervals of
/// `interval_writes` uniformly random updates each.
pub struct Driver {
    /// RNG seed for the uniform workload.
    pub seed: u64,
    /// Number of measured intervals.
    pub intervals: usize,
    /// Updates per interval.
    pub interval_writes: u64,
}

impl Default for Driver {
    fn default() -> Self {
        Driver {
            seed: 42,
            intervals: 10,
            interval_writes: 10_000,
        }
    }
}

impl Driver {
    /// Run the preconditioning fill plus a warm-up, then measure.
    pub fn measure(&self, engine: &mut FtlEngine) -> Vec<MeasuredInterval> {
        fill_sequential(engine);
        let logical = engine.geometry().logical_pages();
        // Warm-up: reach GC steady state before measuring.
        let mut gen = Uniform::new(self.seed, logical);
        drive(engine, &mut gen, logical / 2);
        let mut out = Vec::with_capacity(self.intervals);
        for index in 0..self.intervals {
            let snap = engine.device().stats().snapshot();
            drive(engine, &mut gen, self.interval_writes);
            out.push(MeasuredInterval {
                index,
                delta: engine.device().stats().since(&snap),
            });
        }
        out
    }
}

/// Measure one engine under the default driver and return the aggregate
/// delta over all intervals.
pub fn measure_uniform(engine: &mut FtlEngine, writes: u64, seed: u64) -> StatsSnapshot {
    fill_sequential(engine);
    let logical = engine.geometry().logical_pages();
    let mut gen = Uniform::new(seed, logical);
    drive(engine, &mut gen, logical / 2); // warm-up
    let snap = engine.device().stats().snapshot();
    drive(engine, &mut gen, writes);
    engine.device().stats().since(&snap)
}
