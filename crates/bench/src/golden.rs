//! Golden-trace regression corpus: committed workload traces with pinned
//! expected statistics.
//!
//! Each scenario in `traces/golden/` is a recorded [`Trace`] (the
//! `ftl-workloads` text format) replayed against a GeckoFTL engine on the
//! tiny simulation geometry, under both the single-tree validity store and
//! the 4-way sharded one. The replay's key statistics — op counts, write
//! amplification, reads per GC query, per-tenant splits, latency tails and
//! a full-device content fingerprint — are serialized to a `key = value`
//! text block and compared **byte-identically** against the committed
//! `<name>.shard<N>.expect` file.
//!
//! The point is drift detection: any change to the engine, the validity
//! store, GC victim picking, TRIM handling or the trace format that alters
//! observable behaviour shows up as a precise metric delta in CI, not as a
//! vague downstream benchmark shift. Deliberate behaviour changes re-bless
//! the corpus with `GOLDEN_BLESS=1 cargo test -p gecko-bench --test
//! golden_traces` (see `docs/WORKLOADS.md`).

use crate::harness::{fill_sequential, replay_trace};
use flash_sim::Geometry;
use ftl_workloads::{
    BurstyDiurnal, Mixed, OverwriteStorm, Scan, TenantMix, Trace, TrimWave, Uniform, WorkloadOp,
};
use geckoftl_core::ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend};
use geckoftl_core::gecko::GeckoConfig;
use std::path::PathBuf;

/// The committed golden-trace directory, anchored to the workspace root so
/// `reproduce`, `cargo test` and CI all resolve the same files.
pub fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../traces/golden")
}

/// The replay engine: tiny geometry (64 blocks × 16 pages, 716 logical
/// pages), the same tuning the fuzzer uses, with the validity store split
/// `shards` ways. QoS headroom stays 0 here — the corpus pins the *default*
/// engine; the QoS path is exercised by the `multi_tenant` experiment.
pub fn golden_engine(shards: u32) -> FtlEngine {
    let geo = Geometry::tiny();
    let cfg = FtlConfig {
        cache_entries: 64,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko_cfg = GeckoConfig {
        page_header_bytes: geo.page_bytes - 64, // force real flush/merge activity
        shards,
        ..GeckoConfig::paper_default(&geo)
    };
    FtlEngine::format(geo, cfg, ValidityBackend::gecko_for(geo, gecko_cfg))
}

/// FNV-1a over the final logical content: every mapped page's `(lpn,
/// version)` plus the set of unmapped pages, so both lost writes and
/// resurrected trims change the fingerprint.
fn content_fingerprint(engine: &mut FtlEngine) -> u64 {
    let logical = engine.geometry().logical_pages() as u32;
    let mut h: u64 = 0xcbf29ce484222325;
    let mut step = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for lpn in 0..logical {
        match engine.read(flash_sim::Lpn(lpn)) {
            Some(v) => {
                step(lpn as u64);
                step(v);
            }
            None => step(u64::MAX ^ lpn as u64),
        }
    }
    h
}

/// Replay one trace and serialize its pinned statistics. Deterministic:
/// the same trace and shard count produce byte-identical text on every
/// run, platform and build profile (all floats derive from exact integer
/// simulation state through a fixed expression order).
pub fn replay_stats(trace: &Trace, shards: u32) -> String {
    let mut engine = golden_engine(shards);
    fill_sequential(&mut engine);
    let before = engine.metrics();
    let mut version = 1u64 << 40;
    replay_trace(&mut engine, trace, &mut version);
    let delta = engine.metrics().since(&before);

    let mut out = String::new();
    let mut kv = |k: &str, v: String| {
        out.push_str(k);
        out.push_str(" = ");
        out.push_str(&v);
        out.push('\n');
    };
    kv("ops", trace.len().to_string());
    kv("shards", shards.to_string());
    kv("engine.writes", delta.counter("engine.writes").to_string());
    kv("engine.reads", delta.counter("engine.reads").to_string());
    kv("engine.trims", delta.counter("engine.trims").to_string());
    kv(
        "engine.gc_operations",
        delta.counter("engine.gc_operations").to_string(),
    );
    kv(
        "engine.gc_migrations",
        delta.counter("engine.gc_migrations").to_string(),
    );
    kv(
        "io.user_write.page_writes",
        delta.counter("io.user_write.page_writes").to_string(),
    );
    kv(
        "io.validity_query.page_reads",
        delta.counter("io.validity_query.page_reads").to_string(),
    );
    kv("gecko.queries", delta.counter("gecko.queries").to_string());
    kv(
        "wa_total",
        format!("{:.6}", geckoftl_core::ftl::metrics::wa_total(&delta, 10.0)),
    );
    let rpq = delta.counter("io.validity_query.page_reads") as f64
        / delta.counter("gecko.queries").max(1) as f64;
    kv("reads_per_query", format!("{rpq:.6}"));

    // Per-tenant splits and latency tails, straight from the engine's
    // tenant accounting (the replay routes every op through `*_for`, so
    // untagged traces appear as tenant 0).
    for (id, s) in engine.tenant_stats() {
        let p = format!("tenant.{id}");
        kv(&format!("{p}.writes"), s.writes.to_string());
        kv(&format!("{p}.reads"), s.reads.to_string());
        kv(&format!("{p}.trims"), s.trims.to_string());
        kv(&format!("{p}.gc_operations"), s.gc_operations.to_string());
        kv(&format!("{p}.gc_debt_us"), format!("{:.3}", s.gc_debt_us));
        if s.writes > 0 {
            kv(
                &format!("{p}.write_p99_us"),
                format!("{:.3}", s.write_lat.quantile(0.99)),
            );
            kv(
                &format!("{p}.write_max_us"),
                format!("{:.3}", s.write_lat.max()),
            );
        }
        if s.reads > 0 {
            kv(
                &format!("{p}.read_p99_us"),
                format!("{:.3}", s.read_lat.quantile(0.99)),
            );
        }
    }
    kv(
        "content_fingerprint",
        format!("{:016x}", content_fingerprint(&mut engine)),
    );
    out
}

/// The corpus scenarios, regenerated deterministically from fixed seeds.
/// Every shape stresses a different engine path; `trim_wave` and
/// `multi_tenant` are required by the corpus regression test.
pub fn scenarios() -> Vec<(&'static str, Trace)> {
    let logical = Geometry::tiny().logical_pages(); // 716
    let mut out: Vec<(&'static str, Trace)> = Vec::new();

    // Uniform updates + 25 % reads: the baseline WA workload.
    out.push((
        "uniform_mixed",
        Trace::record(
            Mixed::new(11, Uniform::new(13, logical), 0.25, logical),
            3_000,
        ),
    ));

    // A storm preconditioning phase followed by sequential backup scans.
    let mut t = Trace::record(OverwriteStorm::new(17, logical, 24, 250), 1_800);
    for op in Scan::new(logical, 64).take(1_200) {
        t.push(op);
    }
    out.push(("seq_scan", t));

    out.push((
        "overwrite_storm",
        Trace::record(OverwriteStorm::new(19, logical, 16, 300), 3_000),
    ));

    out.push((
        "bursty_diurnal",
        Trace::record(BurstyDiurnal::new(23, logical, 150, 400), 3_000),
    ));

    out.push((
        "trim_wave",
        Trace::record(TrimWave::new(29, logical, 32), 3_000),
    ));

    // Two tenants on one device: tenant 1 light and read-heavy, tenant 2 an
    // overwrite storm that generates nearly all the GC debt.
    let mix = TenantMix::new(
        31,
        vec![
            (
                1,
                1,
                Box::new(Mixed::new(37, Uniform::new(41, logical), 0.5, logical))
                    as Box<dyn Iterator<Item = WorkloadOp> + Send>,
            ),
            (2, 3, Box::new(OverwriteStorm::new(43, logical, 16, 200))),
        ],
    );
    out.push(("multi_tenant", Trace::record_mix(mix, 3_000)));

    out
}

/// Write (or rewrite) the committed corpus traces. Called by the bless path
/// of the golden-trace test; scenario generation is seed-deterministic, so
/// a re-bless only changes `.trace` files when a shape generator changed.
pub fn write_corpus() -> Result<(), String> {
    let dir = golden_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {dir:?}: {e}"))?;
    for (name, trace) in scenarios() {
        trace.save(dir.join(format!("{name}.trace")))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_cover_required_shapes() {
        let a = scenarios();
        let b = scenarios();
        assert_eq!(a.len(), b.len());
        for ((na, ta), (nb, tb)) in a.iter().zip(&b) {
            assert_eq!(na, nb);
            assert_eq!(
                ta.to_text(),
                tb.to_text(),
                "{na} must regenerate identically"
            );
        }
        assert!(a.len() >= 6, "corpus floor is six scenarios");
        let trim = a
            .iter()
            .find(|(n, _)| *n == "trim_wave")
            .expect("trim_wave");
        assert!(trim.1.trims() > 0);
        let mt = a
            .iter()
            .find(|(n, _)| *n == "multi_tenant")
            .expect("multi_tenant");
        assert_eq!(mt.1.tenant_ids(), vec![1, 2]);
    }

    #[test]
    fn replay_stats_are_repeatable_in_process() {
        let trace = Trace::record(TrimWave::new(5, Geometry::tiny().logical_pages(), 16), 400);
        assert_eq!(replay_stats(&trace, 1), replay_stats(&trace, 1));
    }
}
