//! Empirical GeckoRec: run a workload, pull the plug, recover, and report
//! the measured per-step IO — the executable counterpart of the Appendix-C
//! cost model (and the proof that recovery really restores all data).

use crate::harness::{drive, fill_sequential, sim_geometry};
use crate::report::{f3, Table};
use ftl_baselines::ftls::build_geckoftl_tuned;
use ftl_workloads::Uniform;
use geckoftl_core::ftl::{FtlConfig, GcPolicy, RecoveryPolicy};
use geckoftl_core::gecko::GeckoConfig;
use geckoftl_core::recovery::gecko_recover;

/// Run the crash-recovery experiment.
pub fn run() -> Vec<Table> {
    let geo = sim_geometry();
    let cfg = FtlConfig {
        cache_entries: FtlConfig::scaled_cache_entries(&geo),
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko_cfg = GeckoConfig::paper_default(&geo);
    let mut engine = build_geckoftl_tuned(geo, cfg, gecko_cfg);
    fill_sequential(&mut engine);
    let logical = geo.logical_pages();
    drive(&mut engine, Uniform::new(3, logical), logical);

    let cfg = engine.config();
    let dev = engine.crash();
    let (recovered, report) = gecko_recover(dev, cfg, gecko_cfg);

    let mut t = Table::new(
        "GeckoRec (empirical) — per-step IO on the simulated device after a mid-workload crash",
        &["step", "spare reads", "page reads", "sim ms"],
    );
    for (step, cost) in &report.steps {
        t.row(vec![
            format!("{step:?}"),
            cost.spare_reads.to_string(),
            cost.page_reads.to_string(),
            f3(cost.sim_us / 1000.0),
        ]);
    }
    let mut s = Table::new("GeckoRec (empirical) — summary", &["metric", "value"]);
    s.row(vec![
        "total recovery (ms)".into(),
        f3(report.total_secs() * 1000.0),
    ]);
    s.row(vec![
        "total spare reads".into(),
        report.total_spare_reads().to_string(),
    ]);
    s.row(vec![
        "total page reads".into(),
        report.total_page_reads().to_string(),
    ]);
    s.row(vec![
        "recreated cache entries".into(),
        report.recovered_entries.to_string(),
    ]);
    s.row(vec![
        "recovered erase markers".into(),
        report.recovered_erases.to_string(),
    ]);
    s.row(vec![
        "recovered invalidations".into(),
        report.recovered_invalidations.to_string(),
    ]);
    s.row(vec![
        "brute-force alternative (ms)".into(),
        f3(
            ftl_models::recovery::brute_force_scan_seconds(&geo, &flash_sim::LatencyModel::paper())
                * 1000.0,
        ),
    ]);
    let _ = recovered;
    vec![s, t]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn recovery_is_far_cheaper_than_brute_force() {
        let tables = super::run();
        let s = &tables[0];
        let total: f64 = s.rows[0][1].parse().unwrap();
        let brute: f64 = s.rows[6][1].parse().unwrap();
        assert!(
            total < brute / 2.0,
            "GeckoRec {total} ms vs brute force {brute} ms"
        );
        let entries: u64 = s.rows[3][1].parse().unwrap();
        assert!(entries > 0);
    }
}
