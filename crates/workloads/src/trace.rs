//! Operation-trace record & replay: capture a generated workload once and
//! replay it bit-identically against several FTLs, so comparative
//! experiments (Figure 13/14) feed every system the exact same stream.
//!
//! Traces are multi-tenant aware: every operation carries a [`TenantId`]
//! (stream id). Single-stream traces pay nothing for this — the tenant
//! vector stays empty and every op implicitly belongs to tenant 0, and the
//! text form only annotates ops of non-zero tenants (`W 5 @2`), so legacy
//! trace files parse unchanged and round trips stay byte-stable.

use crate::generators::WorkloadOp;
use flash_sim::Lpn;
use std::path::Path;

/// A tenant / stream identifier. Tenant 0 is the default stream that all
/// untagged operations belong to.
pub type TenantId = u8;

/// A recorded operation stream.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    ops: Vec<WorkloadOp>,
    /// Per-op tenant ids. Invariant: either empty (every op is tenant 0) or
    /// exactly `ops.len()` long. Kept normalized — an all-zero vector is
    /// stored as empty — so `PartialEq` and text round trips are canonical.
    tenants: Vec<TenantId>,
}

impl Trace {
    /// Record `n` operations from a generator.
    pub fn record(gen: impl Iterator<Item = WorkloadOp>, n: usize) -> Self {
        Trace {
            ops: gen.take(n).collect(),
            tenants: Vec::new(),
        }
    }

    /// Record `n` tagged operations from a multi-tenant generator (e.g.
    /// [`crate::shapes::TenantMix`]).
    pub fn record_mix(gen: impl Iterator<Item = (WorkloadOp, TenantId)>, n: usize) -> Self {
        let mut t = Trace::default();
        for (op, tenant) in gen.take(n) {
            t.push_for(op, tenant);
        }
        t
    }

    /// Build a trace from explicit operations (all tenant 0).
    pub fn from_ops(ops: Vec<WorkloadOp>) -> Self {
        Trace {
            ops,
            tenants: Vec::new(),
        }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of writes in the trace.
    pub fn writes(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Write(_)))
            .count()
    }

    /// Number of trims in the trace.
    pub fn trims(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Trim(_)))
            .count()
    }

    /// Iterate the operations.
    pub fn iter(&self) -> impl Iterator<Item = WorkloadOp> + '_ {
        self.ops.iter().copied()
    }

    /// Iterate `(op, tenant)` pairs.
    pub fn iter_with_tenants(&self) -> impl Iterator<Item = (WorkloadOp, TenantId)> + '_ {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (*op, self.tenant_of(i)))
    }

    /// The tenant of operation `i`.
    pub fn tenant_of(&self, i: usize) -> TenantId {
        self.tenants.get(i).copied().unwrap_or(0)
    }

    /// The distinct tenants appearing in the trace, ascending.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        let mut ids: Vec<TenantId> = if self.tenants.is_empty() {
            if self.ops.is_empty() {
                vec![]
            } else {
                vec![0]
            }
        } else {
            self.tenants.clone()
        };
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// The operations as a slice (for mutation-based fuzzing, which edits
    /// recorded traces op-by-op).
    pub fn ops(&self) -> &[WorkloadOp] {
        &self.ops
    }

    /// Append one operation (tenant 0).
    pub fn push(&mut self, op: WorkloadOp) {
        self.push_for(op, 0);
    }

    /// Append one operation for `tenant`.
    pub fn push_for(&mut self, op: WorkloadOp, tenant: TenantId) {
        if tenant != 0 || !self.tenants.is_empty() {
            if self.tenants.is_empty() {
                self.tenants = vec![0; self.ops.len()];
            }
            self.tenants.push(tenant);
        }
        self.ops.push(op);
    }

    /// Re-normalize after edits: drop the tenant vector if all zero.
    fn normalize(&mut self) {
        if self.tenants.iter().all(|t| *t == 0) {
            self.tenants.clear();
        }
    }

    /// Serialize to a compact text form, one op per line: `W <lpn>`,
    /// `R <lpn>`, `T <lpn>` or `I <ticks>`, with ops of a non-zero tenant
    /// suffixed `@<tenant>` (e.g. `W 5 @2`). Blank lines and `#`-comments
    /// are tolerated by the parser, so corpus files can carry a provenance
    /// header.
    pub fn to_text(&self) -> String {
        let mut s = String::with_capacity(self.ops.len() * 8);
        for (i, op) in self.ops.iter().enumerate() {
            match op {
                WorkloadOp::Write(l) => s.push_str(&format!("W {}", l.0)),
                WorkloadOp::Read(l) => s.push_str(&format!("R {}", l.0)),
                WorkloadOp::Trim(l) => s.push_str(&format!("T {}", l.0)),
                WorkloadOp::Idle(n) => s.push_str(&format!("I {n}")),
            }
            let tenant = self.tenant_of(i);
            if tenant != 0 {
                s.push_str(&format!(" @{tenant}"));
            }
            s.push('\n');
        }
        s
    }

    /// Parse the text form produced by [`Trace::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut t = Trace::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().expect("non-empty line has a first token");
            let arg = parts
                .next()
                .ok_or_else(|| format!("line {}: expected '<W|R|T|I> <n> [@tenant]'", i + 1))?;
            let arg: u32 = arg.parse().map_err(|e| format!("line {}: {e}", i + 1))?;
            let tenant = match parts.next() {
                None => 0,
                Some(tag) => {
                    let digits = tag.strip_prefix('@').ok_or_else(|| {
                        format!("line {}: expected '@<tenant>', got '{tag}'", i + 1)
                    })?;
                    digits
                        .parse::<TenantId>()
                        .map_err(|e| format!("line {}: tenant: {e}", i + 1))?
                }
            };
            if let Some(extra) = parts.next() {
                return Err(format!("line {}: trailing token '{extra}'", i + 1));
            }
            let op = match kind {
                "W" => WorkloadOp::Write(Lpn(arg)),
                "R" => WorkloadOp::Read(Lpn(arg)),
                "T" => WorkloadOp::Trim(Lpn(arg)),
                "I" => WorkloadOp::Idle(arg),
                other => return Err(format!("line {}: unknown op '{other}'", i + 1)),
            };
            t.push_for(op, tenant);
        }
        t.normalize();
        Ok(t)
    }

    /// Load a trace from a text file written by [`Trace::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_text(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Save the trace to a text file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        std::fs::write(path, self.to_text()).map_err(|e| format!("{}: {e}", path.display()))
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = WorkloadOp;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, WorkloadOp>>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Uniform;

    #[test]
    fn record_and_replay_are_identical() {
        let t1 = Trace::record(Uniform::new(11, 64), 500);
        let t2 = Trace::record(Uniform::new(11, 64), 500);
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 500);
        assert_eq!(t1.writes(), 500);
    }

    #[test]
    fn text_round_trip() {
        let t = Trace::from_ops(vec![
            WorkloadOp::Write(Lpn(3)),
            WorkloadOp::Read(Lpn(9)),
            WorkloadOp::Write(Lpn(0)),
        ]);
        let text = t.to_text();
        assert_eq!(text, "W 3\nR 9\nW 0\n");
        assert_eq!(Trace::from_text(&text).unwrap(), t);
    }

    #[test]
    fn trim_and_tenant_round_trip() {
        let mut t = Trace::default();
        t.push_for(WorkloadOp::Write(Lpn(3)), 1);
        t.push_for(WorkloadOp::Trim(Lpn(3)), 1);
        t.push_for(WorkloadOp::Read(Lpn(7)), 0);
        let text = t.to_text();
        assert_eq!(text, "W 3 @1\nT 3 @1\nR 7\n");
        assert_eq!(Trace::from_text(&text).unwrap(), t);
        assert_eq!(t.trims(), 1);
        assert_eq!(t.tenant_ids(), vec![0, 1]);
    }

    #[test]
    fn all_zero_tenants_normalize_to_untagged() {
        // A parsed trace whose tags are all @0-equivalent must equal the
        // untagged trace bit-for-bit, so corpus files stay canonical.
        let untagged = Trace::from_text("W 1\nR 1\n").unwrap();
        let tagged = Trace::from_text("W 1 @0\nR 1 @0\n").unwrap();
        assert_eq!(untagged, tagged);
        assert_eq!(tagged.to_text(), "W 1\nR 1\n");
    }

    #[test]
    fn text_parse_errors_are_reported() {
        assert!(Trace::from_text("X 1").is_err());
        assert!(Trace::from_text("W abc").is_err());
        assert!(Trace::from_text("W").is_err());
        assert!(Trace::from_text("W 1 2").is_err());
        assert!(Trace::from_text("W 1 @x").is_err());
        assert!(Trace::from_text("W 1 @2 z").is_err());
        // Blank lines and comments are fine.
        assert_eq!(Trace::from_text("# header\n\nW 1\n\n").unwrap().len(), 1);
    }

    #[test]
    fn idle_gaps_serialize() {
        let t = Trace::from_ops(vec![
            WorkloadOp::Write(Lpn(1)),
            WorkloadOp::Idle(40),
            WorkloadOp::Read(Lpn(1)),
        ]);
        let text = t.to_text();
        assert_eq!(text, "W 1\nI 40\nR 1\n");
        assert_eq!(Trace::from_text(&text).unwrap(), t);
        assert_eq!(t.writes(), 1, "idle gaps are not writes");
    }

    #[test]
    fn file_round_trip() {
        let mut t = Trace::default();
        t.push_for(WorkloadOp::Write(Lpn(5)), 2);
        t.push(WorkloadOp::Trim(Lpn(5)));
        let dir = std::env::temp_dir().join("ftl_workloads_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        t.save(&path).unwrap();
        assert_eq!(Trace::load(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        fn arb_op() -> impl Strategy<Value = WorkloadOp> {
            prop_oneof![
                (0u32..100_000).prop_map(|l| WorkloadOp::Write(Lpn(l))),
                (0u32..100_000).prop_map(|l| WorkloadOp::Read(Lpn(l))),
                (0u32..100_000).prop_map(|l| WorkloadOp::Trim(Lpn(l))),
                (0u32..10_000).prop_map(WorkloadOp::Idle),
            ]
        }

        proptest! {
            /// Any trace survives a text round trip bit-identically — the
            /// property the fuzz corpus depends on.
            #[test]
            fn text_round_trips_any_trace(
                ops in prop::collection::vec(arb_op(), 0..400),
            ) {
                let t = Trace::from_ops(ops);
                let parsed = Trace::from_text(&t.to_text()).unwrap();
                prop_assert_eq!(parsed, t);
            }

            /// Tenant-tagged traces round trip too, including the canonical
            /// empty-vs-all-zero tenant representation.
            #[test]
            fn text_round_trips_tenant_traces(
                ops in prop::collection::vec((arb_op(), 0u8..4), 0..400),
            ) {
                let mut t = Trace::default();
                for (op, tenant) in ops {
                    t.push_for(op, tenant);
                }
                let parsed = Trace::from_text(&t.to_text()).unwrap();
                prop_assert_eq!(parsed, t);
            }
        }
    }
}
