//! # geckoftl-core
//!
//! The paper's primary contribution: **Logarithmic Gecko** (a write-optimized
//! flash-resident replacement for the Page Validity Bitmap) and **GeckoFTL**,
//! the page-associative flash translation layer built around it
//! (Dayan, Bonnet, Idreos: *GeckoFTL: Scalable Flash Translation Techniques
//! For Very Large Flash Devices*, SIGMOD 2016).
//!
//! Layering, bottom-up:
//!
//! * [`gecko`] — the Logarithmic Gecko structure (§3): buffer, runs, levels,
//!   merges, GC queries, entry-partitioning and its cost model.
//! * [`validity`] — the [`validity::ValidityStore`] abstraction that lets the
//!   same FTL engine run on a RAM/flash PVB, a page validity log, or
//!   Logarithmic Gecko (how the paper's five FTLs are compared).
//! * [`cache`] — the RAM-resident LRU mapping cache with dirty / UIP /
//!   uncertainty flags and epoch checkpoints (§4, §4.3).
//! * [`translation`] — the flash-resident translation table + Global Mapping
//!   Directory, with batched synchronization operations (§4, DFTL-style).
//! * [`ftl`] — the FTL engine: block groups, BVC, garbage collection with
//!   either the greedy or the metadata-aware victim policy (§4.2).
//! * [`recovery`] — GeckoRec, the 8-step power-failure recovery algorithm
//!   (§4.3 + Appendix C), including deferred synchronization and flag
//!   correction.
//! * [`wear`] — spare-area-based wear-leveling (Appendix D).
//!
//! The ready-made GeckoFTL configuration lives in [`ftl::FtlEngine`] via
//! [`ftl::FtlConfig::geckoftl`]; baseline FTLs (DFTL, LazyFTL, µ-FTL,
//! IB-FTL) are assembled from the same engine in the `ftl-baselines` crate.

pub mod cache;
pub mod ftl;
pub mod gecko;
pub mod recovery;
pub mod translation;
pub mod validity;
pub mod wear;

pub use cache::{CacheEntry, MappingCache};
pub use ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, TenantId, TenantStats};
pub use gecko::{Bitmap, GeckoConfig, GeckoEntry, GeckoKey, LogGecko};
pub use recovery::{RecoveryReport, RecoveryStep};
pub use translation::TranslationTable;
pub use validity::{MetaSink, ValidityStore};
