//! Offline stand-in for the `proptest` crate, covering the subset this
//! workspace's property tests use: range/tuple/`any` strategies,
//! `prop_map`, weighted `prop_oneof!`, `prop::collection::vec`, the
//! `proptest!` test macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence (reproducible across runs), and failing
//! inputs are **not shrunk** — the panic message carries the case number so
//! a failure is still reproducible by rerunning the same binary.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// RNG handed to strategies while generating one case.
pub struct TestRunner {
    rng: StdRng,
}

impl TestRunner {
    /// Runner for case number `case` of test `test_name`.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index, so every
        // test gets its own deterministic stream.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E3779B97F4A7C15)),
        }
    }

    /// Raw uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen::<u64>()
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.rng.gen_range(0u64..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }
}

/// A generator of values of one type (object-safe; no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Box the strategy (used by `prop_oneof!` to unify arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy trait object.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        (**self).generate(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.generate(runner))
    }
}

/// Strategy producing one fixed (cloned) value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + runner.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, runner: &mut TestRunner) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + runner.below(self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, runner: &mut TestRunner) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + runner.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Types with a canonical "any value" strategy (subset of `Arbitrary`).
pub trait ArbitraryShim: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

impl ArbitraryShim for bool {
    fn arbitrary(runner: &mut TestRunner) -> bool {
        runner.next_u64() & 1 == 1
    }
}

impl ArbitraryShim for u64 {
    fn arbitrary(runner: &mut TestRunner) -> u64 {
        runner.next_u64()
    }
}

impl ArbitraryShim for u32 {
    fn arbitrary(runner: &mut TestRunner) -> u32 {
        (runner.next_u64() >> 32) as u32
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: ArbitraryShim> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

/// Strategy for an arbitrary value of `T`.
pub fn any<T: ArbitraryShim>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Weighted union used by `prop_oneof!`.
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from weighted boxed arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty());
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof: all weights zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, runner: &mut TestRunner) -> V {
        let mut pick = runner.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(runner);
            }
            pick -= *w as u64;
        }
        unreachable!("weights summed to total")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRunner};
    use std::ops::Range;

    /// Strategy for a `Vec` of `inner` values with length drawn from `len`.
    pub fn vec<S: Strategy>(inner: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { inner, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        inner: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let n = self.len.start + runner.below((self.len.end - self.len.start) as u64) as usize;
            (0..n).map(|_| self.inner.generate(runner)).collect()
        }
    }
}

/// Per-test configuration (subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for API compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Weighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert inside a proptest body (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            // Callers write `#[test]` themselves (captured in $meta), as
            // with real proptest.
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut runner = $crate::TestRunner::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)+
                    let run = move || { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "proptest shim: test '{}' failed at case {} (deterministic seed; rerun reproduces it)",
                            stringify!($name), case
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Op {
        A(u32),
        B(bool),
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_oneof_compose(ops in prop::collection::vec(prop_oneof![
            3 => (0u32..10).prop_map(Op::A),
            1 => any::<bool>().prop_map(Op::B),
        ], 1..50)) {
            prop_assert!(!ops.is_empty() && ops.len() < 50);
            for op in ops {
                if let Op::A(v) = op { prop_assert!(v < 10); }
            }
        }

        #[test]
        fn tuples_generate(pair in (0u32..5, any::<u64>()), trip in (0u32..2, 0u32..2, any::<bool>())) {
            prop_assert!(pair.0 < 5);
            prop_assert!(trip.0 < 2 && trip.1 < 2);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let gen = |case| {
            let mut r = crate::TestRunner::for_case("det", case);
            (0u32..1000).generate(&mut r)
        };
        assert_eq!(gen(5), gen(5));
    }
}
