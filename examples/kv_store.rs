//! A miniature database page store on top of GeckoFTL — the kind of
//! "very large database application" the paper's introduction motivates.
//!
//! A fixed-size table of 4 KB database pages is mapped 1:1 onto logical
//! flash pages; a buffer-pool-like writer dirties pages with a skewed
//! (zipfian) access pattern and flushes them through the FTL. The demo
//! compares the flash-level write-amplification GeckoFTL and µ-FTL induce
//! for the same database workload.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use geckoftl::flash_sim::{Geometry, Lpn};
use geckoftl::ftl_baselines::{build, BaselineKind};
use geckoftl::ftl_workloads::{WorkloadOp, Zipfian};

/// A trivial page-granular "database": page id → record count, persisted
/// through an FTL.
struct PageStore {
    ftl: geckoftl::geckoftl_core::ftl::FtlEngine,
    commits: u64,
}

impl PageStore {
    fn new(kind: BaselineKind, geo: Geometry) -> Self {
        PageStore {
            ftl: build(kind, geo),
            commits: 0,
        }
    }

    /// "Commit" a database page: encode its new version and write it.
    fn commit_page(&mut self, page_id: u32, row_count: u64) {
        self.commits += 1;
        // Version tag doubles as the page's content checksum here.
        self.ftl.write(Lpn(page_id), row_count);
    }

    /// Point lookup of a page's stored version.
    fn read_page(&mut self, page_id: u32) -> Option<u64> {
        self.ftl.read(Lpn(page_id))
    }
}

fn main() {
    let geo = Geometry::new(512, 128, 4096, 0.7);
    let table_pages = geo.logical_pages() as u32;
    println!(
        "database: {table_pages} pages of 4 KB ({} MB table)",
        (table_pages as u64 * 4096) >> 20
    );

    for kind in [BaselineKind::GeckoFtl, BaselineKind::MuFtl] {
        let mut store = PageStore::new(kind, geo);

        // Load phase: populate the whole table.
        for p in 0..table_pages {
            store.commit_page(p, 100);
        }

        // OLTP-ish phase: zipfian updates (hot pages commit constantly),
        // interleaved with lookups.
        let mut row_version = 101u64;
        let snap = store.ftl.device().stats().snapshot();
        for op in Zipfian::new(2024, table_pages as u64, 0.9).take(100_000) {
            let WorkloadOp::Write(lpn) = op else { continue };
            row_version += 1;
            store.commit_page(lpn.0, row_version);
            if row_version.is_multiple_of(64) {
                let _ = store.read_page(lpn.0);
            }
        }
        let delta = store.ftl.device().stats().since(&snap);
        let wa = delta.wa_breakdown(10.0);
        let us = delta.simulated_us(&store.ftl.device().latency());
        println!(
            "{:>9}: {} commits | WA user {:.2} translation {:.2} validity {:.2} → total {:.2} | {:.2} simulated s",
            kind.name(),
            store.commits,
            wa.user,
            wa.translation,
            wa.validity,
            wa.total(),
            us / 1e6,
        );
    }
    println!("\nLower validity WA means more device lifetime for the same database workload.");
}
