//! Plain-text and CSV reporting (no serde: results are simple tables).

use std::fmt::Write as _;
use std::path::Path;

/// A simple named table: header row + data rows of strings.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (figure/table id plus description).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column names.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// CSV form (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# {}", self.title);
        let _ = writeln!(s, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(s, "{}", row.join(","));
        }
        s
    }
}

/// Render a table as aligned monospace text.
pub fn format_table(t: &Table) -> String {
    let mut widths: Vec<usize> = t.columns.iter().map(|c| c.len()).collect();
    for row in &t.rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "== {} ==", t.title);
    let head: Vec<String> = t
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
        .collect();
    let _ = writeln!(s, "{}", head.join("  "));
    let _ = writeln!(
        s,
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in &t.rows {
        let cells: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        let _ = writeln!(s, "{}", cells.join("  "));
    }
    s
}

/// Write a set of tables as CSV files into a directory (one file per table,
/// named from the slug).
pub fn write_csv(dir: &Path, slug: &str, tables: &[Table]) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (i, t) in tables.iter().enumerate() {
        let name = if tables.len() == 1 {
            format!("{slug}.csv")
        } else {
            format!("{slug}_{i}.csv")
        };
        std::fs::write(dir.join(name), t.to_csv())?;
    }
    Ok(())
}

/// Format a float with 3 decimal places (the tables' standard precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a byte count in human units.
pub fn human_bytes(b: u64) -> String {
    const KB: f64 = 1024.0;
    let b = b as f64;
    if b >= KB * KB * KB {
        format!("{:.2} GB", b / KB / KB / KB)
    } else if b >= KB * KB {
        format!("{:.2} MB", b / KB / KB)
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{b:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000".into()]);
        let s = format_table(&t);
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_column"));
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("x", &["c1", "c2"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "# x\nc1,c2\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(4096), "4.0 KB");
        assert_eq!(human_bytes(64 << 20), "64.00 MB");
        assert_eq!(human_bytes(2 << 30), "2.00 GB");
    }
}
