//! Named metrics registry with snapshot/delta semantics.
//!
//! Unifies the ad-hoc stats structs (`IoStats`, `GeckoStats`, `FaultStats`,
//! `WearStats`, engine counters) behind one namespace of counters and
//! gauges, generalizing the snapshot/`since` pattern `IoStats` already
//! uses. Producers *collect into* a [`MetricsSnapshot`]; consumers diff
//! two snapshots and read named values.
//!
//! Naming scheme (`docs/OBSERVABILITY.md`): dotted lowercase paths,
//! `<component>.<metric>`, e.g. `io.user_write.page_writes`,
//! `gecko.merge_stall_drains`, `span.host_write.max_us`.

use std::collections::BTreeMap;

/// One registered value: a monotone counter or a point-in-time gauge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing integer (diffs by subtraction).
    Counter(u64),
    /// Instantaneous floating-point reading (diffs by subtraction).
    Gauge(f64),
}

/// A frozen set of named metrics; also used to represent deltas between
/// two snapshots (the `IoStats::since` pattern).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot for producers to collect into.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Register/overwrite a counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.entries
            .insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Register/overwrite a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.entries
            .insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Counter value by name (0 when absent or registered as a gauge).
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by name (0.0 when absent; counters read as their value
    /// cast to `f64` so reports can treat everything as numeric).
    pub fn gauge(&self, name: &str) -> f64 {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            Some(MetricValue::Counter(v)) => *v as f64,
            None => 0.0,
        }
    }

    /// Whether a metric of any type is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Delta of this snapshot relative to an `earlier` one: counters
    /// subtract saturating, gauges subtract; names absent from `earlier`
    /// diff against zero. Name order is stable (sorted), so reports built
    /// from a delta are deterministic.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (name, value) in &self.entries {
            let diffed = match (value, earlier.entries.get(name)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    MetricValue::Counter(now.saturating_sub(*then))
                }
                (MetricValue::Gauge(now), Some(MetricValue::Gauge(then))) => {
                    MetricValue::Gauge(now - then)
                }
                (v, _) => *v,
            };
            out.entries.insert(name.clone(), diffed);
        }
        out
    }

    /// Iterate `(name, value)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_matches_io_stats_pattern() {
        let mut t0 = MetricsSnapshot::new();
        t0.set_counter("io.user_write.page_writes", 10);
        t0.set_gauge("io.user_write.busy_us", 10_000.0);
        let mut t1 = MetricsSnapshot::new();
        t1.set_counter("io.user_write.page_writes", 25);
        t1.set_gauge("io.user_write.busy_us", 25_000.0);
        t1.set_counter("bm.retired_blocks", 1);
        let d = t1.since(&t0);
        assert_eq!(d.counter("io.user_write.page_writes"), 15);
        assert_eq!(d.gauge("io.user_write.busy_us"), 15_000.0);
        assert_eq!(d.counter("bm.retired_blocks"), 1, "absent diffs vs zero");
        assert_eq!(d.counter("no.such.metric"), 0);
    }

    #[test]
    fn iteration_is_name_sorted() {
        let mut m = MetricsSnapshot::new();
        m.set_counter("z.last", 1);
        m.set_counter("a.first", 2);
        let names: Vec<&str> = m.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }
}
