//! Corpus regression tests: every scenario committed under `fuzz/corpus/`
//! replays clean, forever.
//!
//! The corpus has two kinds of entries. Handcrafted scenarios pin one fault
//! kind each (torn data page, torn spare, program fail, erase fail, crash
//! inside an erase, boundary power cut), so a regression in any single
//! fault-handling path fails a named entry. `fuzz_found_*` entries are
//! minimized reproducers of bugs the fuzz campaign actually caught — they
//! failed once, were fixed, and must never fail again. See
//! `crates/bench/src/fuzz/` and fuzz/README.md for the format and tooling.

use gecko_bench::fuzz::replay_corpus;

#[test]
fn every_corpus_scenario_replays_clean() {
    let results = replay_corpus();
    assert!(
        !results.is_empty(),
        "fuzz/corpus/ is empty — the regression corpus went missing"
    );
    let mut delivered_any_fault = false;
    for (name, out) in &results {
        assert!(
            out.ok,
            "corpus scenario {name} regressed: {}",
            out.failure.as_deref().unwrap_or("unknown failure")
        );
        let f = out.faults;
        if f.torn_writes + f.program_failures + f.erase_failures + f.erase_crashes > 0 {
            delivered_any_fault = true;
        }
    }
    // Guard against the corpus silently rotting into no-ops (e.g. fault
    // indices that execution never reaches after a scheduler change).
    assert!(
        delivered_any_fault,
        "no corpus scenario delivered a device fault — indices are stale"
    );
}
