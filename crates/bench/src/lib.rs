//! # gecko-bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation, shared simulation drivers, and plain-text/CSV reporting.
//!
//! Run everything with the `reproduce` binary:
//!
//! ```text
//! cargo run --release -p gecko-bench --bin reproduce -- all
//! ```
//!
//! Experiments use scaled-down device geometries (see DESIGN.md): RAM and
//! recovery comparisons come from the analytical models at full paper scale
//! (as in the paper), write-amplification comparisons from simulation.

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{
    drive, fill_sequential, measure_uniform, sim_geometry, Driver, MeasuredInterval,
};
pub use report::{format_table, write_csv, Table};
