//! The flash-resident page-associative translation table, its RAM-resident
//! Global Mapping Directory (GMD), and synchronization operations (paper §2,
//! §4 — the DFTL-style scheme GeckoFTL adopts).
//!
//! The translation table is an array of 4-byte physical addresses indexed by
//! LPN, stored across *translation pages* of `P/4` entries each. Translation
//! pages are updated out-of-place; the GMD maps each translation-page index
//! to its current flash location.
//!
//! A *synchronization operation* batches all dirty cached mapping entries
//! that belong to one translation page: it reads the page, applies the
//! updates, writes the new version, repoints the GMD and reports the old
//! version obsolete. It returns the *before-images* (the physical addresses
//! the table held before the update) so the caller can report invalidated
//! user pages to the validity store (§4.1's UIP protocol).

use crate::ftl::block_manager::{BlockGroup, BlockManager};
use flash_sim::{FlashDevice, Geometry, IoPurpose, Lpn, PageData, Ppn, SpareInfo};

/// Sentinel for "logical page never written".
const UNMAPPED: u32 = u32::MAX;

/// Payload of one translation page in flash.
#[derive(Clone, Debug)]
pub struct TranslationPagePayload {
    /// Which slice of the table this page holds.
    pub tpage: u32,
    /// `entries[i]` is the physical address of LPN `tpage·per + i`, or
    /// `UNMAPPED`.
    pub entries: Vec<u32>,
}

impl TranslationPagePayload {
    /// Look up the mapping for an in-range LPN offset.
    pub fn get(&self, offset: u32) -> Option<Ppn> {
        match self.entries[offset as usize] {
            UNMAPPED => None,
            p => Some(Ppn(p)),
        }
    }
}

/// Outcome of a synchronization operation.
#[derive(Clone, Debug, Default)]
pub struct SyncOutcome {
    /// `(lpn, before-image)` for every entry whose mapping actually changed;
    /// `None` before-image means the LPN was previously unmapped.
    pub before_images: Vec<(Lpn, Option<Ppn>)>,
    /// LPNs whose cached value already matched the flash-resident entry
    /// (recovery false-alarms, Appendix C.3.1).
    pub already_synced: Vec<Lpn>,
    /// Whether the write was skipped because every update was a false alarm
    /// ("GeckoFTL aborts the synchronization operation thereby saving one
    /// flash write").
    pub aborted: bool,
}

/// The translation table: GMD in RAM, translation pages in flash.
#[derive(Clone, Debug)]
pub struct TranslationTable {
    geo: Geometry,
    /// GMD: current flash location of every translation page.
    gmd: Vec<Option<Ppn>>,
}

impl TranslationTable {
    /// An unformatted table (all GMD slots empty).
    pub fn new(geo: Geometry) -> Self {
        TranslationTable {
            geo,
            gmd: vec![None; geo.translation_pages() as usize],
        }
    }

    /// Rebuild from a recovered GMD (Appendix C step 2).
    pub fn from_recovered(geo: Geometry, gmd: Vec<Option<Ppn>>) -> Self {
        assert_eq!(gmd.len(), geo.translation_pages() as usize);
        TranslationTable { geo, gmd }
    }

    /// Materialize every translation page with all-unmapped entries.
    /// Performed once at device format time; charged to `TranslationInit`.
    pub fn format(&mut self, dev: &mut FlashDevice, bm: &mut BlockManager) {
        let per = self.geo.entries_per_translation_page();
        for tpage in 0..self.gmd.len() as u32 {
            let payload = TranslationPagePayload {
                tpage,
                entries: vec![UNMAPPED; per as usize],
            };
            let ppn = bm.append(
                dev,
                BlockGroup::Translation,
                PageData::blob_of(payload),
                SpareInfo::Translation { tpage },
                IoPurpose::TranslationInit,
            );
            self.gmd[tpage as usize] = Some(ppn);
        }
    }

    /// Number of translation pages.
    pub fn num_tpages(&self) -> u32 {
        self.gmd.len() as u32
    }

    /// Translation page covering an LPN.
    pub fn tpage_of(&self, lpn: Lpn) -> u32 {
        lpn.0 / self.geo.entries_per_translation_page()
    }

    /// The LPN range `[lo, hi)` a translation page covers.
    pub fn lpn_range(&self, tpage: u32) -> (Lpn, Lpn) {
        let per = self.geo.entries_per_translation_page();
        (Lpn(tpage * per), Lpn((tpage + 1) * per))
    }

    /// Current flash location of a translation page.
    pub fn tpage_location(&self, tpage: u32) -> Option<Ppn> {
        self.gmd[tpage as usize]
    }

    /// GMD RAM footprint: 4 bytes per translation page (`4·TT/P`, §2).
    pub fn gmd_ram_bytes(&self) -> u64 {
        4 * self.gmd.len() as u64
    }

    /// Read the mapping for `lpn` from flash (one translation-page read,
    /// charged to `purpose`).
    pub fn lookup(&self, dev: &mut FlashDevice, lpn: Lpn, purpose: IoPurpose) -> Option<Ppn> {
        let tpage = self.tpage_of(lpn);
        let loc = self.gmd[tpage as usize]?;
        let data = dev
            .read_page(loc, purpose)
            .expect("GMD points at a written page");
        let payload = data
            .blob::<TranslationPagePayload>()
            .expect("translation block page holds a translation payload");
        payload.get(lpn.0 % self.geo.entries_per_translation_page())
    }

    /// Synchronization operation: apply `updates` (cached dirty mappings) to
    /// the translation page `tpage`.
    ///
    /// An update equal to the flash-resident entry is reported in
    /// [`SyncOutcome::already_synced`] instead of being written — this
    /// covers both *uncertain* recovered entries whose assumed dirtiness
    /// was a false alarm (Appendix C.3) and live entries closing an ABA
    /// physical-address-reuse cycle. If **no** update changes anything the
    /// write is aborted.
    pub fn synchronize(
        &mut self,
        dev: &mut FlashDevice,
        bm: &mut BlockManager,
        tpage: u32,
        updates: &[(Lpn, Ppn)],
    ) -> SyncOutcome {
        let per = self.geo.entries_per_translation_page();
        let old_loc = self.gmd[tpage as usize].expect("synchronize against a formatted table");
        let data = dev
            .read_page(old_loc, IoPurpose::TranslationSync)
            .expect("GMD points at a written page");
        let payload = data
            .blob::<TranslationPagePayload>()
            .expect("translation page payload");
        let mut entries = payload.entries.clone();

        let mut outcome = SyncOutcome::default();
        let mut changed = false;
        for &(lpn, new_ppn) in updates {
            debug_assert_eq!(self.tpage_of(lpn), tpage, "update belongs to another tpage");
            let off = (lpn.0 % per) as usize;
            let old = entries[off];
            if old == new_ppn.0 {
                // Equal-to-flash dirty entries are not only recovery false
                // alarms (`verify`): physical-address reuse can produce them
                // legitimately. If flash maps L→P and L is then rewritten
                // P→Q→…, the block holding P can be erased, reallocated and
                // hit by a later rewrite of L at exactly offset P — an ABA
                // cycle leaving the dirty cache entry equal to the flash
                // entry. Nothing needs writing or reporting: every
                // intermediate copy was invalidated at write time, and the
                // caller clears the entry's flags via `already_synced`.
                outcome.already_synced.push(lpn);
                continue;
            }
            entries[off] = new_ppn.0;
            changed = true;
            let before = (old != UNMAPPED).then_some(Ppn(old));
            outcome.before_images.push((lpn, before));
        }

        if !changed {
            outcome.aborted = true;
            return outcome;
        }

        let new_payload = TranslationPagePayload { tpage, entries };
        let new_loc = bm.append(
            dev,
            BlockGroup::Translation,
            PageData::blob_of(new_payload),
            SpareInfo::Translation { tpage },
            IoPurpose::TranslationSync,
        );
        self.gmd[tpage as usize] = Some(new_loc);
        bm.page_obsolete(dev, old_loc);
        outcome
    }

    /// Unmap `lpn` (host TRIM): write a new translation-page version with
    /// the entry reset to the unmapped sentinel and return the before-image,
    /// so the caller can report the discarded physical page invalid. Returns
    /// `None` without writing when the entry is already unmapped — trimming
    /// a never-written page only costs the verification read.
    pub fn unmap(&mut self, dev: &mut FlashDevice, bm: &mut BlockManager, lpn: Lpn) -> Option<Ppn> {
        let tpage = self.tpage_of(lpn);
        let per = self.geo.entries_per_translation_page();
        let old_loc = self.gmd[tpage as usize].expect("unmap against a formatted table");
        let data = dev
            .read_page(old_loc, IoPurpose::TranslationSync)
            .expect("GMD points at a written page");
        let payload = data
            .blob::<TranslationPagePayload>()
            .expect("translation page payload");
        let mut entries = payload.entries.clone();

        let off = (lpn.0 % per) as usize;
        let old = entries[off];
        if old == UNMAPPED {
            return None;
        }
        entries[off] = UNMAPPED;

        let new_payload = TranslationPagePayload { tpage, entries };
        let new_loc = bm.append(
            dev,
            BlockGroup::Translation,
            PageData::blob_of(new_payload),
            SpareInfo::Translation { tpage },
            IoPurpose::TranslationSync,
        );
        self.gmd[tpage as usize] = Some(new_loc);
        bm.page_obsolete(dev, old_loc);
        Some(Ppn(old))
    }

    /// Migrate a live translation page during greedy garbage-collection
    /// (baseline FTLs): rewrite it verbatim at a new location.
    pub fn migrate_tpage(&mut self, dev: &mut FlashDevice, bm: &mut BlockManager, tpage: u32) {
        let old_loc = self.gmd[tpage as usize].expect("migrating an unmaterialized tpage");
        let data = dev
            .read_page(old_loc, IoPurpose::TranslationGc)
            .expect("live tpage readable");
        let payload = data
            .blob::<TranslationPagePayload>()
            .expect("translation page payload")
            .clone();
        let new_loc = bm.append(
            dev,
            BlockGroup::Translation,
            PageData::blob_of(payload),
            SpareInfo::Translation { tpage },
            IoPurpose::TranslationGc,
        );
        self.gmd[tpage as usize] = Some(new_loc);
        // The caller is responsible for the victim block's bookkeeping; the
        // old page is inside a block about to be erased.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FlashDevice, BlockManager, TranslationTable) {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        let mut bm = BlockManager::new(geo);
        let mut tt = TranslationTable::new(geo);
        tt.format(&mut dev, &mut bm);
        (dev, bm, tt)
    }

    #[test]
    fn format_materializes_every_tpage() {
        let (mut dev, _bm, tt) = setup();
        assert!(tt.num_tpages() >= 1);
        for t in 0..tt.num_tpages() {
            assert!(tt.tpage_location(t).is_some());
        }
        assert_eq!(
            tt.lookup(&mut dev, Lpn(0), IoPurpose::TranslationFetch),
            None
        );
    }

    #[test]
    fn synchronize_updates_mapping_and_returns_before_images() {
        let (mut dev, mut bm, mut tt) = setup();
        let out = tt.synchronize(&mut dev, &mut bm, 0, &[(Lpn(3), Ppn(77))]);
        assert_eq!(out.before_images, vec![(Lpn(3), None)]);
        assert!(!out.aborted);
        assert_eq!(
            tt.lookup(&mut dev, Lpn(3), IoPurpose::TranslationFetch),
            Some(Ppn(77))
        );

        let out2 = tt.synchronize(&mut dev, &mut bm, 0, &[(Lpn(3), Ppn(99))]);
        assert_eq!(out2.before_images, vec![(Lpn(3), Some(Ppn(77)))]);
        assert_eq!(
            tt.lookup(&mut dev, Lpn(3), IoPurpose::TranslationFetch),
            Some(Ppn(99))
        );
    }

    #[test]
    fn old_translation_page_reported_obsolete() {
        let (mut dev, mut bm, mut tt) = setup();
        let old_loc = tt.tpage_location(0).unwrap();
        let old_block = dev.geometry().block_of(old_loc);
        let bvc_before = bm.valid_pages(old_block);
        tt.synchronize(&mut dev, &mut bm, 0, &[(Lpn(0), Ppn(5))]);
        let new_loc = tt.tpage_location(0).unwrap();
        assert_ne!(new_loc, old_loc);
        // The new version lands in the same active translation block: one
        // page became obsolete (−1) and one new page was appended (+1).
        let appended_here = (dev.geometry().block_of(new_loc) == old_block) as u32;
        assert_eq!(bm.valid_pages(old_block), bvc_before - 1 + appended_here);
    }

    #[test]
    fn equal_to_flash_update_is_reported_already_synced_and_aborts() {
        let (mut dev, mut bm, mut tt) = setup();
        tt.synchronize(&mut dev, &mut bm, 0, &[(Lpn(1), Ppn(50))]);
        let stats_before = dev.stats().counts(IoPurpose::TranslationSync);
        // A recovered entry whose mapping is actually clean.
        let out = tt.synchronize(&mut dev, &mut bm, 0, &[(Lpn(1), Ppn(50))]);
        assert!(out.aborted);
        assert_eq!(out.already_synced, vec![Lpn(1)]);
        assert!(out.before_images.is_empty());
        let stats_after = dev.stats().counts(IoPurpose::TranslationSync);
        assert_eq!(
            stats_after.page_writes, stats_before.page_writes,
            "aborted sync must not write"
        );
        assert_eq!(
            stats_after.page_reads,
            stats_before.page_reads + 1,
            "aborted sync still pays the read"
        );
    }

    #[test]
    fn mixed_false_alarm_and_genuine_update() {
        let (mut dev, mut bm, mut tt) = setup();
        tt.synchronize(&mut dev, &mut bm, 0, &[(Lpn(1), Ppn(50))]);
        let out = tt.synchronize(
            &mut dev,
            &mut bm,
            0,
            &[(Lpn(1), Ppn(50)), (Lpn(2), Ppn(60))],
        );
        assert!(!out.aborted);
        assert_eq!(out.already_synced, vec![Lpn(1)]);
        assert_eq!(out.before_images, vec![(Lpn(2), None)]);
        assert_eq!(
            tt.lookup(&mut dev, Lpn(2), IoPurpose::TranslationFetch),
            Some(Ppn(60))
        );
    }

    #[test]
    fn unmap_clears_entry_and_returns_before_image() {
        let (mut dev, mut bm, mut tt) = setup();
        tt.synchronize(&mut dev, &mut bm, 0, &[(Lpn(2), Ppn(41))]);
        assert_eq!(tt.unmap(&mut dev, &mut bm, Lpn(2)), Some(Ppn(41)));
        assert_eq!(
            tt.lookup(&mut dev, Lpn(2), IoPurpose::TranslationFetch),
            None
        );
        // Unmapping an already-unmapped entry is read-only.
        let writes_before = dev.stats().counts(IoPurpose::TranslationSync).page_writes;
        assert_eq!(tt.unmap(&mut dev, &mut bm, Lpn(2)), None);
        assert_eq!(tt.unmap(&mut dev, &mut bm, Lpn(3)), None);
        assert_eq!(
            dev.stats().counts(IoPurpose::TranslationSync).page_writes,
            writes_before,
            "no-op unmaps must not write"
        );
    }

    #[test]
    fn migration_preserves_contents() {
        let (mut dev, mut bm, mut tt) = setup();
        tt.synchronize(&mut dev, &mut bm, 0, &[(Lpn(4), Ppn(123))]);
        let old = tt.tpage_location(0).unwrap();
        tt.migrate_tpage(&mut dev, &mut bm, 0);
        assert_ne!(tt.tpage_location(0), Some(old));
        assert_eq!(
            tt.lookup(&mut dev, Lpn(4), IoPurpose::TranslationFetch),
            Some(Ppn(123))
        );
    }

    #[test]
    fn tpage_math() {
        let (_dev, _bm, tt) = setup();
        let per = Geometry::tiny().entries_per_translation_page();
        assert_eq!(tt.tpage_of(Lpn(0)), 0);
        assert_eq!(tt.tpage_of(Lpn(per - 1)), 0);
        let (lo, hi) = tt.lpn_range(0);
        assert_eq!(lo, Lpn(0));
        assert_eq!(hi, Lpn(per));
    }
}
