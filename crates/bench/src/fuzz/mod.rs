//! Feedback-driven worst-case & crash-point fuzzing harness.
//!
//! The fuzzer searches the space of (workload trace, device fault plan,
//! crash point) triples — [`Scenario`]s — for two kinds of trouble:
//!
//! 1. **Correctness failures**: an acknowledged write that does not read
//!    back after a fault or recovery, or a byte-level translation/validity
//!    audit mismatch ([`oracle::audit_state`]). These are bugs; the failing
//!    scenario is [`minimize`]d and written to `fuzz/corpus/` as a
//!    regression test (`tests/fuzz_corpus.rs` replays every entry).
//! 2. **Worst-case behaviour**: scenarios maximizing tail write latency,
//!    write amplification, recovery cost or retired blocks. The search
//!    keeps a hall of fame per signal and mutates the current worst case
//!    ([`mutate`]), hill-climbing toward heavier stress.
//!
//! Everything is driven from one fixed seed, so a campaign — including CI's
//! time-bounded `reproduce fuzz --smoke` — is reproducible bit for bit.

pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod replay;
pub mod scenario;

pub use minimize::minimize;
pub use mutate::{
    crossover, mutate, seed_bursty, seed_storm, seed_trim_wave, seed_uniform, MutateBounds,
};
pub use replay::{replay, replay_corpus, Fitness, Outcome};
pub use scenario::Scenario;

use crate::report::{f3, Table};
use rand::{rngs::StdRng, SeedableRng};
use std::path::PathBuf;

/// The committed corpus of minimized scenarios (regression tests).
pub fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

/// Campaign size knobs.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Mutate-and-replay rounds after the seed population.
    pub rounds: usize,
    /// Ops per seed trace.
    pub trace_ops: usize,
}

/// The fixed campaign seed: `reproduce fuzz` is deterministic by design, so
/// CI failures reproduce locally from the committed code alone.
pub const CAMPAIGN_SEED: u64 = 0x6ECC0F77;

const SIGNALS: [&str; 4] = ["max_write_us", "wa", "recovery_us", "retired_blocks"];

fn signal_value(f: &Fitness, signal: usize) -> f64 {
    match signal {
        0 => f.max_write_us,
        1 => f.wa,
        2 => f.recovery_us,
        _ => f.retired_blocks as f64,
    }
}

/// One fuzzing campaign. Returns the report tables; failing scenarios are
/// minimized and written to [`corpus_dir`] as they are found.
pub fn campaign(seed: u64, budget: Budget) -> Vec<Table> {
    // Tiny geometry has 716 logical pages; stay inside it.
    let bounds = MutateBounds {
        logical_pages: 700,
        max_ops: budget.trace_ops * 4,
    };
    let mut rng = StdRng::seed_from_u64(seed);

    // Seed population: four workload shapes, clean and faulty. The faulty
    // triplet schedules every fault kind at attempt indices a trace of this
    // size is certain to reach, so each campaign exercises torn writes,
    // program/erase failures, erase crashes and a boundary power cut even
    // before mutation gets a vote. The trim-wave seed stresses the
    // erase-marker / durable-unmap path from round zero.
    let mut seeds = vec![
        seed_uniform(&mut rng, &bounds, budget.trace_ops),
        seed_storm(&mut rng, &bounds, budget.trace_ops),
        seed_bursty(&mut rng, &bounds, budget.trace_ops),
        seed_trim_wave(&mut rng, &bounds, budget.trace_ops),
    ];
    let writes = |sc: &Scenario| sc.trace.writes() as u64;
    let mut faulty = seeds[0].clone();
    faulty
        .write_faults
        .push((writes(&faulty) / 2, flash_sim::WriteFault::TornData));
    faulty.erase_faults.push((2, flash_sim::EraseFault::Fail));
    seeds.push(faulty);
    let mut faulty = seeds[1].clone();
    faulty
        .write_faults
        .push((writes(&faulty) / 3, flash_sim::WriteFault::ProgramFail));
    faulty
        .write_faults
        .push((writes(&faulty) / 2, flash_sim::WriteFault::TornSpare));
    seeds.push(faulty);
    let mut faulty = seeds[2].clone();
    faulty.erase_faults.push((1, flash_sim::EraseFault::Crash));
    faulty.crash_after = Some(faulty.op_count() * 3 / 4);
    seeds.push(faulty);

    let mut scenarios = 0usize;
    let mut crashes = 0usize;
    let mut failures: Vec<(String, String)> = Vec::new(); // (file, message)
    let mut totals = flash_sim::FaultStats::default();
    // Hall of fame: the best (scenario, fitness) seen per signal.
    let mut hall: Vec<(Scenario, Fitness)> = Vec::new();

    let mut absorb = |sc: Scenario,
                      out: Outcome,
                      hall: &mut Vec<(Scenario, Fitness)>,
                      failures: &mut Vec<(String, String)>| {
        totals.program_failures += out.faults.program_failures;
        totals.erase_failures += out.faults.erase_failures;
        totals.torn_writes += out.faults.torn_writes;
        totals.erase_crashes += out.faults.erase_crashes;
        if out.crashed {
            crashes += 1;
        }
        if !out.ok {
            let msg = out.failure.clone().unwrap_or_default();
            let small = minimize(&sc, |c| !replay(c).ok);
            let name = format!("fuzz_found_{seed:08x}_{:03}.scenario", failures.len());
            let dir = corpus_dir();
            let _ = std::fs::create_dir_all(&dir);
            let text = format!(
                "# found by fuzz campaign seed {seed:#x}\n# failure: {msg}\n{}",
                small.to_text()
            );
            let _ = std::fs::write(dir.join(&name), text);
            failures.push((name, msg));
            return;
        }
        if hall.is_empty() {
            for _ in SIGNALS {
                hall.push((sc.clone(), out.fitness));
            }
            return;
        }
        for (s, slot) in hall.iter_mut().enumerate() {
            if signal_value(&out.fitness, s) > signal_value(&slot.1, s) {
                *slot = (sc.clone(), out.fitness);
            }
        }
    };

    for sc in seeds {
        let out = replay(&sc);
        scenarios += 1;
        absorb(sc, out, &mut hall, &mut failures);
    }
    for round in 0..budget.rounds {
        if hall.is_empty() {
            break; // every seed failed; the failure table tells the story
        }
        // Rotate the optimization target so every signal gets search effort.
        let signal = round % SIGNALS.len();
        let parent = hall[signal].0.clone();
        // Every few rounds, splice the target's champion with another
        // signal's champion instead of point-mutating: crossover jumps the
        // search between basins separate lineages found.
        let child = if round % 5 == 4 && hall.len() > 1 {
            let donor = &hall[(signal + 1 + round % (hall.len() - 1)) % hall.len()].0;
            crossover(&parent, donor, &mut rng, &bounds)
        } else {
            mutate(&parent, &mut rng, &bounds)
        };
        let out = replay(&child);
        scenarios += 1;
        absorb(child, out, &mut hall, &mut failures);
    }

    let mut summary = Table::new(
        "fuzz: campaign summary (fixed seed; failures are minimized into fuzz/corpus/)",
        &[
            "seed",
            "scenarios",
            "crashes",
            "torn_writes",
            "program_fails",
            "erase_fails",
            "erase_crashes",
            "failures",
        ],
    );
    summary.row(vec![
        format!("{seed:#x}"),
        scenarios.to_string(),
        crashes.to_string(),
        totals.torn_writes.to_string(),
        totals.program_failures.to_string(),
        totals.erase_failures.to_string(),
        totals.erase_crashes.to_string(),
        failures.len().to_string(),
    ]);

    let mut frontier = Table::new(
        "fuzz: worst-case frontier (hall of fame per fitness signal)",
        &["signal", "value", "scenario"],
    );
    for (s, (sc, fit)) in hall.iter().enumerate() {
        frontier.row(vec![
            SIGNALS[s].to_string(),
            f3(signal_value(fit, s)),
            sc.summary(),
        ]);
    }

    let mut tables = vec![summary, frontier];
    if !failures.is_empty() {
        let mut t = Table::new(
            "fuzz: FAILURES (bugs — corpus entries written)",
            &["file", "failure"],
        );
        for (file, msg) in &failures {
            t.row(vec![file.clone(), msg.clone()]);
        }
        tables.push(t);
    }

    // Corpus regression sweep rides along: every committed scenario must pass.
    let mut corpus = Table::new(
        "fuzz: corpus replay (committed regression scenarios)",
        &["entry", "ok", "crashed", "max_write_us", "wa"],
    );
    for (name, out) in replay_corpus() {
        corpus.row(vec![
            name,
            out.ok.to_string(),
            out.crashed.to_string(),
            f3(out.fitness.max_write_us),
            f3(out.fitness.wa),
        ]);
    }
    tables.push(corpus);
    tables
}

/// The `fuzz` experiment: time-bounded fixed-seed campaign. `--smoke`
/// shrinks it to CI size (a few seconds); the full run digs deeper.
pub fn run() -> Vec<Table> {
    let budget = if crate::smoke::on() {
        Budget {
            rounds: 40,
            trace_ops: 800,
        }
    } else {
        Budget {
            rounds: 200,
            trace_ops: 2_000,
        }
    };
    campaign(CAMPAIGN_SEED, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The engine must survive a miniature campaign with zero correctness
    /// failures, and the campaign must be deterministic per seed.
    #[test]
    fn mini_campaign_finds_no_failures_and_is_deterministic() {
        let budget = Budget {
            rounds: 6,
            trace_ops: 120,
        };
        let digest = |tables: &[Table]| {
            tables
                .iter()
                .map(|t| t.to_csv())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = campaign(7, budget);
        let b = campaign(7, budget);
        assert_eq!(
            digest(&a),
            digest(&b),
            "campaign must be seed-deterministic"
        );
        let summary = &a[0];
        let failures: usize = summary.rows[0].last().unwrap().parse().unwrap();
        assert_eq!(
            failures,
            0,
            "fuzzer found correctness failures: {:?}",
            a.last()
        );
    }
}
