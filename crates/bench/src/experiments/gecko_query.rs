//! GC-query engine A/B: the Bloom-filter + fence-pointer + batched fast
//! path against the pre-optimization baseline (linear run-directory scans,
//! no filters, one query round trip per victim).
//!
//! Both engines run the same mixed read/write workload (§5's
//! generalization workload) on identical geometry and Gecko tuning; the
//! only difference is [`GeckoConfig::fast_path`] / `bloom_bits_per_key`.
//! The headline metric is **mean flash reads per GC query** taken from the
//! device's purpose-tagged [`IoPurpose::ValidityQuery`] counter — the cost
//! Table 1 bounds at one read per run. Results are also emitted as
//! `BENCH_gecko_query.json` so the repo carries a machine-readable baseline.

use crate::harness::{drive, fill_sequential};
use crate::report::{f3, Table};
use flash_sim::{Geometry, IoPurpose, LatencyModel};
use ftl_baselines::ftls::build_geckoftl_tuned;
use ftl_workloads::{Mixed, Uniform};
use geckoftl_core::ftl::{FtlConfig, GcPolicy, RecoveryPolicy};
use geckoftl_core::gecko::GeckoConfig;
use std::time::Instant;

/// Measured outcome of one engine variant.
struct VariantResult {
    name: &'static str,
    validity_query_reads: u64,
    gc_queries: u64,
    gc_operations: u64,
    batch_queries: u64,
    bloom_skips: u64,
    fence_probes: u64,
    wall_secs: f64,
    sim_secs: f64,
    wa_total: f64,
}

impl VariantResult {
    fn reads_per_query(&self) -> f64 {
        self.validity_query_reads as f64 / self.gc_queries.max(1) as f64
    }

    /// Simulated device time spent on GC-query flash reads alone — the
    /// component this optimization targets (total simulated time is
    /// dominated by the application writes themselves).
    fn vq_sim_ms(&self) -> f64 {
        self.validity_query_reads as f64 * LatencyModel::paper().page_read_us / 1e3
    }
}

fn geometry() -> Geometry {
    // 128 MB simulated device: big enough for a ~6-level Gecko tree under
    // the shrunken page budget below, small enough to measure in seconds.
    Geometry::new(256, 128, 4096, 0.7)
}

fn gecko_cfg(fast: bool) -> GeckoConfig {
    GeckoConfig {
        // Shrink usable page space so flushes/merges build a real multi-level
        // tree at simulation scale (V ≈ 31 entries ⇒ ~6 levels for 1024 keys).
        page_header_bytes: 4096 - 256,
        bloom_bits_per_key: if fast { 8 } else { 0 },
        fast_path: fast,
        ..GeckoConfig::paper_default(&geometry())
    }
}

fn run_variant(name: &'static str, fast: bool, measured_ops: u64) -> VariantResult {
    let geo = geometry();
    let cfg = FtlConfig {
        cache_entries: FtlConfig::scaled_cache_entries(&geo),
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let mut engine = build_geckoftl_tuned(geo, cfg, gecko_cfg(fast));
    fill_sequential(&mut engine);
    let logical = geo.logical_pages();
    let mut gen = Mixed::new(7, Uniform::new(13, logical), 0.25, logical);
    drive(&mut engine, &mut gen, logical / 2); // warm-up to GC steady state

    let snap = engine.device().stats().snapshot();
    let gecko_before = engine.backend().gecko().expect("gecko backend").stats;
    let counters_before = engine.counters;
    let started = Instant::now();
    drive(&mut engine, &mut gen, measured_ops);
    let wall_secs = started.elapsed().as_secs_f64();
    let delta = engine.device().stats().since(&snap);
    let gecko_after = engine.backend().gecko().expect("gecko backend").stats;

    VariantResult {
        name,
        validity_query_reads: delta.counts(IoPurpose::ValidityQuery).page_reads,
        gc_queries: gecko_after.queries - gecko_before.queries,
        gc_operations: engine.counters.gc_operations - counters_before.gc_operations,
        batch_queries: gecko_after.batch_queries - gecko_before.batch_queries,
        bloom_skips: gecko_after.bloom_skips - gecko_before.bloom_skips,
        fence_probes: gecko_after.fence_probes - gecko_before.fence_probes,
        wall_secs,
        sim_secs: delta.simulated_us(&LatencyModel::paper()) / 1e6,
        wa_total: delta.wa_breakdown(10.0).total(),
    }
}

fn json_escape_free(v: &VariantResult) -> String {
    // Hand-rolled JSON (no serde in the offline container); every field is
    // numeric or a known-safe identifier, so no escaping is needed. Only
    // simulation-derived numbers go in — wall-clock stays in the console
    // table — so regenerating the committed baseline is byte-identical
    // whenever behaviour is unchanged.
    format!(
        concat!(
            "{{\n",
            "      \"validity_query_reads\": {},\n",
            "      \"gc_queries\": {},\n",
            "      \"gc_operations\": {},\n",
            "      \"batch_queries\": {},\n",
            "      \"bloom_skips\": {},\n",
            "      \"fence_probes\": {},\n",
            "      \"reads_per_query\": {:.4},\n",
            "      \"vq_sim_ms\": {:.3},\n",
            "      \"simulated_io_secs\": {:.4},\n",
            "      \"wa_total\": {:.4}\n",
            "    }}"
        ),
        v.validity_query_reads,
        v.gc_queries,
        v.gc_operations,
        v.batch_queries,
        v.bloom_skips,
        v.fence_probes,
        v.reads_per_query(),
        v.vq_sim_ms(),
        v.sim_secs,
        v.wa_total,
    )
}

/// Write the machine-readable baseline next to the working directory.
fn emit_json(baseline: &VariantResult, fast: &VariantResult, measured_ops: u64) {
    let reduction = 100.0 * (1.0 - fast.reads_per_query() / baseline.reads_per_query().max(1e-9));
    let body = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"gecko_query\",\n",
            "  \"workload\": \"mixed 25% reads, uniform updates, {} measured ops\",\n",
            "  \"geometry\": \"K=256 B=128 P=4096 R=0.7\",\n",
            "  \"metric\": \"flash reads per GC query (IoPurpose::ValidityQuery)\",\n",
            "  \"variants\": {{\n",
            "    \"baseline_linear_scan\": {},\n",
            "    \"fast_path_bloom_fence_batch\": {}\n",
            "  }},\n",
            "  \"reads_per_query_reduction_pct\": {:.2}\n",
            "}}\n"
        ),
        measured_ops,
        json_escape_free(baseline),
        json_escape_free(fast),
        reduction,
    );
    // Anchor to the workspace root regardless of the process cwd, so
    // `reproduce` and `cargo test` refresh the same committed artifact.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gecko_query.json");
    match std::fs::write(path, body) {
        Ok(()) => eprintln!("   wrote {path}"),
        Err(e) => eprintln!("   could not write {path}: {e}"),
    }
}

/// Run the GC-query fast-path A/B and emit `BENCH_gecko_query.json`.
pub fn run() -> Vec<Table> {
    let measured_ops = 40_000;
    let baseline = run_variant("baseline (linear scan)", false, measured_ops);
    let fast = run_variant("fast path (bloom+fence+batch)", true, measured_ops);

    let mut t = Table::new(
        "GC query engine — flash reads per query, baseline vs fast path",
        &[
            "variant",
            "VQ reads",
            "GC queries",
            "reads/query",
            "batch passes",
            "bloom skips",
            "fence probes",
            "WA",
            "VQ sim (ms)",
            "sim IO (s)",
            "wall (s)",
        ],
    );
    for v in [&baseline, &fast] {
        t.row(vec![
            v.name.into(),
            v.validity_query_reads.to_string(),
            v.gc_queries.to_string(),
            f3(v.reads_per_query()),
            v.batch_queries.to_string(),
            v.bloom_skips.to_string(),
            v.fence_probes.to_string(),
            f3(v.wa_total),
            f3(v.vq_sim_ms()),
            f3(v.sim_secs),
            f3(v.wall_secs),
        ]);
    }
    emit_json(&baseline, &fast, measured_ops);
    vec![t]
}

#[cfg(test)]
mod tests {
    /// Two identical in-process runs must agree on every simulation-derived
    /// number (only wall-clock may differ). This pins the determinism the
    /// committed `BENCH_gecko_query.json` baseline depends on: the engine
    /// takes no input from time, addresses, or iteration order of unordered
    /// containers.
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn fast_path_run_is_repeatable_in_process() {
        let a = super::run_variant("first", true, 8_000);
        let b = super::run_variant("second", true, 8_000);
        assert_eq!(a.validity_query_reads, b.validity_query_reads);
        assert_eq!(a.gc_queries, b.gc_queries);
        assert_eq!(a.gc_operations, b.gc_operations);
        assert_eq!(a.batch_queries, b.batch_queries);
        assert_eq!(a.bloom_skips, b.bloom_skips);
        assert_eq!(a.fence_probes, b.fence_probes);
        assert_eq!(
            a.wa_total.to_bits(),
            b.wa_total.to_bits(),
            "WA must be bit-identical across runs: {} vs {}",
            a.wa_total,
            b.wa_total
        );
        assert_eq!(a.sim_secs.to_bits(), b.sim_secs.to_bits());
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn fast_path_reduces_reads_per_query() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let reads_per_query = |name_frag: &str| -> f64 {
            rows.iter()
                .find(|r| r[0].contains(name_frag))
                .expect("variant row")[3]
                .parse()
                .unwrap()
        };
        let base = reads_per_query("baseline");
        let fast = reads_per_query("fast path");
        assert!(
            fast < base,
            "fast path must reduce mean flash reads per GC query: {fast} vs {base}"
        );
    }
}
