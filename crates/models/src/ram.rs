//! Integrated-RAM models (paper §2 + Appendix B, Figure 13 top).

use crate::FtlName;
use flash_sim::Geometry;

/// One RAM-resident data structure and its size.
#[derive(Clone, Debug, PartialEq)]
pub struct RamComponent {
    /// Structure name as labelled in Figure 13 (top).
    pub name: &'static str,
    /// Size in bytes.
    pub bytes: u64,
}

/// Full RAM breakdown for one FTL.
#[derive(Clone, Debug, PartialEq)]
pub struct RamModel {
    /// Which FTL this models.
    pub ftl: FtlName,
    /// Per-structure sizes.
    pub components: Vec<RamComponent>,
}

impl RamModel {
    /// Total integrated RAM in bytes.
    pub fn total(&self) -> u64 {
        self.components.iter().map(|c| c.bytes).sum()
    }

    /// Size of one named component (0 if absent).
    pub fn component(&self, name: &str) -> u64 {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.bytes)
    }
}

/// `TT`: flash-resident translation-table size in bytes (`4·K·B·R`).
pub fn translation_table_bytes(geo: &Geometry) -> u64 {
    geo.translation_table_bytes()
}

/// GMD size: one 4-byte pointer per translation page (`4·TT/P`).
pub fn gmd_bytes(geo: &Geometry) -> u64 {
    4 * (translation_table_bytes(geo).div_ceil(geo.page_bytes as u64))
}

/// RAM-resident PVB size: one bit per physical page (`B·K/8`).
pub fn pvb_bytes(geo: &Geometry) -> u64 {
    geo.total_pages() / 8
}

/// BVC size: 2 bytes per block (Appendix B).
pub fn bvc_bytes(geo: &Geometry) -> u64 {
    2 * geo.blocks as u64
}

/// LRU mapping-cache size: 8 bytes per entry (paper §5 default assumption).
pub fn cache_bytes(cache_entries: u64) -> u64 {
    8 * cache_entries
}

/// Number of entries in one Gecko flash page under the paper tuning
/// (`S = B/key-bits`, 32-bit keys): `V ≈ P·8 / (32 + B/S + 1)`.
pub fn gecko_entries_per_page(geo: &Geometry) -> u64 {
    let key_bits = 32u64;
    let s = (geo.pages_per_block as u64 / key_bits).max(1);
    let sub_bits = geo.pages_per_block as u64 / s;
    ((geo.page_bytes as u64 - 32) * 8) / (key_bits + sub_bits + 1)
}

/// Flash pages occupied by Logarithmic Gecko: the largest run holds one
/// entry per (block, part); smaller runs at most double it (Appendix B).
pub fn gecko_pages(geo: &Geometry) -> u64 {
    let key_bits = 32u64;
    let s = (geo.pages_per_block as u64 / key_bits).max(1);
    let entries = geo.blocks as u64 * s;
    2 * entries.div_ceil(gecko_entries_per_page(geo))
}

/// Gecko run-directory RAM: two 4-byte words per Gecko page (Appendix B).
pub fn gecko_run_dir_bytes(geo: &Geometry) -> u64 {
    8 * gecko_pages(geo)
}

/// Gecko buffer RAM: the insert buffer plus `L` multi-way-merge input
/// buffers and one output buffer: `P · (2 + L)` (Appendix B).
pub fn gecko_buffer_bytes(geo: &Geometry) -> u64 {
    let v = gecko_entries_per_page(geo) as f64;
    let s = (geo.pages_per_block as u64 / 32).max(1);
    let max_pages = (geo.blocks as u64 * s) as f64 / v;
    let levels = max_pages.log2().ceil().max(1.0) as u64; // T = 2
    geo.page_bytes as u64 * (2 + levels)
}

/// Flash-PVB segment directory: one 4-byte pointer per PVB flash page.
pub fn flash_pvb_dir_bytes(geo: &Geometry) -> u64 {
    4 * pvb_bytes(geo).div_ceil(geo.page_bytes as u64)
}

/// IB-FTL chain metadata: a chain-head pointer and an erase timestamp per
/// block (Appendix E extension).
pub fn pvl_ram_bytes(geo: &Geometry) -> u64 {
    8 * geo.blocks as u64
}

/// A B-tree-structured translation table keeps only its root resident
/// (µ-FTL, IB-FTL): one page.
pub fn btree_root_bytes(geo: &Geometry) -> u64 {
    geo.page_bytes as u64
}

/// Full RAM model for one FTL at a geometry and cache size.
pub fn ram_model(ftl: FtlName, geo: &Geometry, cache_entries: u64) -> RamModel {
    let cache = RamComponent {
        name: "LRU cache",
        bytes: cache_bytes(cache_entries),
    };
    let components = match ftl {
        FtlName::Dftl | FtlName::LazyFtl => vec![
            RamComponent {
                name: "GMD",
                bytes: gmd_bytes(geo),
            },
            RamComponent {
                name: "PVB",
                bytes: pvb_bytes(geo),
            },
            cache,
        ],
        FtlName::MuFtl => vec![
            RamComponent {
                name: "B-tree root",
                bytes: btree_root_bytes(geo),
            },
            RamComponent {
                name: "PVB directory",
                bytes: flash_pvb_dir_bytes(geo),
            },
            RamComponent {
                name: "BVC",
                bytes: bvc_bytes(geo),
            },
            cache,
        ],
        FtlName::IbFtl => vec![
            RamComponent {
                name: "B-tree root",
                bytes: btree_root_bytes(geo),
            },
            RamComponent {
                name: "PVL chains",
                bytes: pvl_ram_bytes(geo),
            },
            RamComponent {
                name: "BVC",
                bytes: bvc_bytes(geo),
            },
            cache,
        ],
        FtlName::GeckoFtl => vec![
            RamComponent {
                name: "GMD",
                bytes: gmd_bytes(geo),
            },
            RamComponent {
                name: "run directories",
                bytes: gecko_run_dir_bytes(geo),
            },
            RamComponent {
                name: "gecko buffers",
                bytes: gecko_buffer_bytes(geo),
            },
            RamComponent {
                name: "BVC",
                bytes: bvc_bytes(geo),
            },
            cache,
        ],
    };
    RamModel { ftl, components }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    fn paper() -> Geometry {
        Geometry::paper_2tb()
    }

    /// Cache size in the paper's default configuration: 4 MB / 8 B = 2¹⁹.
    const C: u64 = 1 << 19;

    #[test]
    fn paper_constants() {
        let g = paper();
        // TT ≈ 1.4–1.5 GB, GMD ≈ 1.4 MB, PVB = 64 MB.
        assert!((1_400 * MB..1_500 * MB).contains(&translation_table_bytes(&g)));
        let gmd = gmd_bytes(&g);
        assert!((1_300_000..1_600_000).contains(&gmd), "GMD = {gmd}");
        assert_eq!(pvb_bytes(&g), 64 * MB);
        assert_eq!(cache_bytes(C), 4 * MB);
    }

    #[test]
    fn pvb_dominates_dftl_ram() {
        let m = ram_model(FtlName::Dftl, &paper(), C);
        // "PVB accounts for 95% of all RAM-resident metadata" (metadata =
        // everything except the cache, whose size is a free choice).
        let metadata = m.total() - m.component("LRU cache");
        let share = m.component("PVB") as f64 / metadata as f64;
        assert!(share > 0.9, "PVB share = {share:.3}");
    }

    #[test]
    fn geckoftl_reduces_ram_by_95_percent() {
        let g = paper();
        let dftl = ram_model(FtlName::Dftl, &g, C);
        let gecko = ram_model(FtlName::GeckoFtl, &g, C);
        // Compare the *validity metadata* (the component Gecko replaces):
        // PVB (64 MB) vs run directories + buffers + BVC.
        let dftl_validity = dftl.component("PVB");
        let gecko_validity = gecko.component("run directories")
            + gecko.component("gecko buffers")
            + gecko.component("BVC");
        let reduction = 1.0 - gecko_validity as f64 / dftl_validity as f64;
        assert!(reduction > 0.80, "validity-RAM reduction = {reduction:.3}");
        // And the overall footprint (cache excluded) drops by ≥90 %.
        let dftl_meta = dftl.total() - dftl.component("LRU cache");
        let gecko_meta = gecko.total() - gecko.component("LRU cache");
        assert!(
            (gecko_meta as f64) < 0.25 * dftl_meta as f64,
            "gecko metadata = {gecko_meta}, dftl = {dftl_meta}"
        );
    }

    #[test]
    fn mu_ftl_is_smallest_geckoftl_close_behind() {
        let g = paper();
        let mu = ram_model(FtlName::MuFtl, &g, C).total();
        let gecko = ram_model(FtlName::GeckoFtl, &g, C).total();
        let dftl = ram_model(FtlName::Dftl, &g, C).total();
        let ib = ram_model(FtlName::IbFtl, &g, C).total();
        // Paper: µ-FTL slightly smaller than GeckoFTL (B-tree root vs GMD);
        // both far below DFTL/LazyFTL; IB-FTL in between.
        assert!(mu < gecko, "mu = {mu}, gecko = {gecko}");
        assert!(gecko < ib, "gecko = {gecko}, ib = {ib}");
        assert!(ib < dftl, "ib = {ib}, dftl = {dftl}");
        assert!((gecko as f64) < 0.3 * dftl as f64);
    }

    #[test]
    fn bvc_is_bottleneck_for_gecko_and_mu() {
        let g = paper();
        for ftl in [FtlName::GeckoFtl, FtlName::MuFtl] {
            let m = ram_model(ftl, &g, C);
            let bvc = m.component("BVC");
            let other_meta: u64 = m
                .components
                .iter()
                .filter(|c| c.name != "LRU cache" && c.name != "BVC" && c.name != "GMD")
                .map(|c| c.bytes)
                .sum();
            assert!(
                bvc > other_meta,
                "{:?}: BVC {bvc} vs rest {other_meta}",
                ftl
            );
        }
    }

    #[test]
    fn ram_scales_linearly_with_capacity_for_pvb_ftls() {
        let small = ram_model(FtlName::LazyFtl, &Geometry::paper_scaled(1 << 20), C);
        let big = ram_model(FtlName::LazyFtl, &Geometry::paper_scaled(1 << 22), C);
        let ratio = (big.total() - big.component("LRU cache")) as f64
            / (small.total() - small.component("LRU cache")) as f64;
        assert!(
            (3.5..4.5).contains(&ratio),
            "4× capacity → ~4× metadata RAM, got {ratio:.2}"
        );
    }
}
