//! Error type for device operations.

use crate::geometry::{BlockId, Ppn};
use std::fmt;

/// Convenience alias for device results.
pub type Result<T> = std::result::Result<T, FlashError>;

/// Ways a device operation can fail.
///
/// Two families share this type. `BlockFull`, `PageNotWritten`,
/// `OutOfRange` and `BlockOutOfRange` model *firmware bugs*: a correct FTL
/// never triggers them, and the simulator surfaces them loudly instead of
/// silently corrupting state. `ProgramFailed`, `EraseFailed` and
/// `BlockWornOut` model *recoverable hardware faults* (injected via
/// [`crate::FaultPlan`] or an erase budget): real devices exhibit them at
/// scale, and a robust FTL handles them — retry the write on a fresh block,
/// retire the bad block — instead of crashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlashError {
    /// Write issued to a block whose write pointer has reached the end.
    BlockFull(BlockId),
    /// Read of a page that has not been programmed since the last erase.
    PageNotWritten(Ppn),
    /// Address outside the device geometry.
    OutOfRange(Ppn),
    /// Block id outside the device geometry.
    BlockOutOfRange(BlockId),
    /// The device has worn out this block past its configured erase budget
    /// (only reported when an erase budget is configured).
    BlockWornOut(BlockId),
    /// The program operation failed (hardware fault): nothing was persisted
    /// and the block is now marked bad. Recoverable — retry on another
    /// block.
    ProgramFailed(BlockId),
    /// The erase operation failed (hardware fault): block contents are
    /// unchanged and the block is now marked bad. Recoverable — retire the
    /// block.
    EraseFailed(BlockId),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::BlockFull(b) => write!(f, "write to full block {b:?}"),
            FlashError::PageNotWritten(p) => write!(f, "read of unwritten page {p:?}"),
            FlashError::OutOfRange(p) => write!(f, "page address {p:?} out of range"),
            FlashError::BlockOutOfRange(b) => write!(f, "block address {b:?} out of range"),
            FlashError::BlockWornOut(b) => write!(f, "block {b:?} exceeded its erase budget"),
            FlashError::ProgramFailed(b) => write!(f, "program operation failed on bad {b:?}"),
            FlashError::EraseFailed(b) => write!(f, "erase operation failed on bad {b:?}"),
        }
    }
}

impl std::error::Error for FlashError {}
