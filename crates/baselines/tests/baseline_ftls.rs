//! Every baseline FTL must preserve data under garbage-collection pressure:
//! the paper's comparisons are only meaningful if all five are correct.

use flash_sim::{Geometry, Lpn};
use ftl_baselines::{build, BaselineKind};
use std::collections::HashMap;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn exercise(kind: BaselineKind) {
    let geo = Geometry::tiny();
    let mut engine = build(kind, geo);
    let mut oracle: HashMap<u32, u64> = HashMap::new();
    let mut rng = Lcg(kind as u64 + 1);
    let logical = geo.logical_pages() as u32;
    for i in 0..6000u64 {
        let lpn = (rng.next() % logical as u64) as u32;
        engine.write(Lpn(lpn), i);
        oracle.insert(lpn, i);
        if rng.next().is_multiple_of(5) {
            let r = (rng.next() % logical as u64) as u32;
            assert_eq!(
                engine.read(Lpn(r)),
                oracle.get(&r).copied(),
                "{}: read-your-writes for L{r} at i={i}",
                kind.name()
            );
        }
    }
    assert!(
        engine.counters.gc_operations > 10,
        "{}: GC must run",
        kind.name()
    );
    for lpn in 0..logical {
        assert_eq!(
            engine.read(Lpn(lpn)),
            oracle.get(&lpn).copied(),
            "{}: post-check L{lpn}",
            kind.name()
        );
    }
}

#[test]
fn dftl_preserves_data() {
    exercise(BaselineKind::Dftl);
}

#[test]
fn lazyftl_preserves_data() {
    exercise(BaselineKind::LazyFtl);
}

#[test]
fn mu_ftl_preserves_data() {
    exercise(BaselineKind::MuFtl);
}

#[test]
fn ib_ftl_preserves_data() {
    exercise(BaselineKind::IbFtl);
}

#[test]
fn geckoftl_preserves_data() {
    exercise(BaselineKind::GeckoFtl);
}

#[test]
fn validity_wa_ordering_matches_table_1() {
    // Steady-state validity-metadata WA: RAM PVB < Gecko < flash PVB.
    let geo = Geometry::tiny();
    let mut wa = HashMap::new();
    for kind in [
        BaselineKind::Dftl,
        BaselineKind::GeckoFtl,
        BaselineKind::MuFtl,
    ] {
        let mut engine = build(kind, geo);
        let mut rng = Lcg(99);
        let logical = geo.logical_pages() as u32;
        // Precondition.
        for i in 0..4000u64 {
            engine.write(Lpn((rng.next() % logical as u64) as u32), i);
        }
        let snap = engine.device().stats().snapshot();
        for i in 0..4000u64 {
            engine.write(Lpn((rng.next() % logical as u64) as u32), i);
        }
        let delta = engine.device().stats().since(&snap);
        wa.insert(kind, delta.wa_breakdown(10.0).validity);
    }
    let ram = wa[&BaselineKind::Dftl];
    let gecko = wa[&BaselineKind::GeckoFtl];
    let flash = wa[&BaselineKind::MuFtl];
    assert!(
        ram < gecko,
        "RAM PVB ({ram:.3}) must beat Gecko ({gecko:.3}) on IO"
    );
    assert!(
        gecko < flash,
        "Gecko ({gecko:.3}) must beat flash PVB ({flash:.3})"
    );
    assert!(flash > 0.9, "flash PVB WA ≈ 1 + 1/δ, got {flash:.3}");
}

#[test]
fn battery_ftls_have_unbounded_dirty_entries() {
    let geo = Geometry::tiny();
    let mut engine = build(BaselineKind::Dftl, geo);
    let logical = geo.logical_pages() as u32;
    let c = engine.config().cache_entries;
    let mut rng = Lcg(5);
    let mut max_dirty = 0;
    for i in 0..3000u64 {
        engine.write(Lpn((rng.next() % logical as u64) as u32), i);
        max_dirty = max_dirty.max(engine.cache().dirty_count());
    }
    assert!(
        max_dirty > c / 2,
        "battery FTL should let dirty entries accumulate (saw {max_dirty} of {c})"
    );
}

#[test]
fn restricted_ftls_bound_dirty_entries() {
    let geo = Geometry::tiny();
    for kind in [BaselineKind::LazyFtl, BaselineKind::IbFtl] {
        let mut engine = build(kind, geo);
        let c = engine.config().cache_entries;
        let logical = geo.logical_pages() as u32;
        let mut rng = Lcg(6);
        for i in 0..3000u64 {
            engine.write(Lpn((rng.next() % logical as u64) as u32), i);
            assert!(
                engine.cache().dirty_count() <= (c / 10).max(1),
                "{}: dirty {} exceeds 10% of {c}",
                kind.name(),
                engine.cache().dirty_count()
            );
        }
    }
}
