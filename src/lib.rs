//! # geckoftl — facade over the reproduction workspace
//!
//! One-stop re-export of every crate in the GeckoFTL reproduction
//! (Dayan, Bonnet, Idreos: *GeckoFTL: Scalable Flash Translation Techniques
//! For Very Large Flash Devices*, SIGMOD 2016):
//!
//! * [`flash_sim`] — the NAND flash device simulator substrate;
//! * [`geckoftl_core`] — Logarithmic Gecko, the FTL engine, GeckoRec
//!   recovery, wear-leveling;
//! * [`ftl_baselines`] — DFTL, LazyFTL, µ-FTL, IB-FTL and their validity
//!   stores;
//! * [`ftl_workloads`] — workload generators and trace record/replay;
//! * [`ftl_models`] — the analytical RAM / recovery-time models.
//!
//! ```
//! use geckoftl::flash_sim::{Geometry, Lpn};
//! use geckoftl::geckoftl_core::ftl::FtlEngine;
//! use geckoftl::geckoftl_core::recovery::gecko_recover;
//!
//! // A 32 MB simulated device at the paper's R = 0.7.
//! let geo = Geometry::new(128, 64, 4096, 0.7);
//! let mut ftl = FtlEngine::geckoftl(geo);
//! ftl.write(Lpn(7), 1234);
//! assert_eq!(ftl.read(Lpn(7)), Some(1234));
//!
//! // Power failure + GeckoRec: the write survives.
//! let (cfg, gcfg) = (ftl.config(), ftl.backend().gecko().unwrap().config());
//! let (mut recovered, report) = gecko_recover(ftl.crash(), cfg, gcfg);
//! assert_eq!(recovered.read(Lpn(7)), Some(1234));
//! assert!(report.total_secs() > 0.0);
//! ```

pub use flash_sim;
pub use ftl_baselines;
pub use ftl_models;
pub use ftl_workloads;
pub use geckoftl_core;
