//! Page Validity Bitmaps: the two baseline stores of Table 1.
//!
//! * [`RamPvb`] keeps one bit per physical page in integrated RAM (DFTL,
//!   LazyFTL). Zero IO, `O(B·K)` bits of RAM: the scalability bottleneck the
//!   paper identifies (64 MB for a 2 TB device).
//! * [`FlashPvb`] keeps the bitmap in flash (µ-FTL): every update is a
//!   read-modify-write of one PVB page (`1 + 1/δ` write-amplification), a GC
//!   query is one page read, and only a small segment directory stays in
//!   RAM.

use flash_sim::{BlockId, FlashDevice, Geometry, IoPurpose, MetaKind, PageData, PageOffset, Ppn};
use geckoftl_core::gecko::Bitmap;
use geckoftl_core::validity::{MetaSink, ValidityStore};

/// RAM-resident Page Validity Bitmap.
#[derive(Clone, Debug)]
pub struct RamPvb {
    geo: Geometry,
    /// One bit per physical page, grouped by block (bit set ⇒ invalid).
    words: Vec<u64>,
}

impl RamPvb {
    /// An all-valid bitmap for a device geometry.
    pub fn new(geo: Geometry) -> Self {
        let bits = geo.total_pages();
        RamPvb {
            geo,
            words: vec![0; bits.div_ceil(64) as usize],
        }
    }

    fn set(&mut self, ppn: Ppn) {
        self.words[(ppn.0 / 64) as usize] |= 1 << (ppn.0 % 64);
    }

    fn get(&self, ppn: Ppn) -> bool {
        self.words[(ppn.0 / 64) as usize] >> (ppn.0 % 64) & 1 == 1
    }

    /// Mark a page invalid during restart/rebuild (no device involved).
    pub fn set_invalid_for_recovery(&mut self, ppn: Ppn) {
        self.set(ppn);
    }

    fn clear_block(&mut self, block: BlockId) {
        let b = self.geo.pages_per_block;
        for off in 0..b {
            let ppn = self.geo.ppn(block, PageOffset(off));
            self.words[(ppn.0 / 64) as usize] &= !(1 << (ppn.0 % 64));
        }
    }
}

impl ValidityStore for RamPvb {
    fn mark_invalid(&mut self, _dev: &mut FlashDevice, _sink: &mut dyn MetaSink, ppn: Ppn) {
        self.set(ppn);
    }

    fn note_erase(&mut self, _dev: &mut FlashDevice, _sink: &mut dyn MetaSink, block: BlockId) {
        self.clear_block(block);
    }

    fn gc_query(
        &mut self,
        _dev: &mut FlashDevice,
        _sink: &mut dyn MetaSink,
        block: BlockId,
    ) -> Bitmap {
        let b = self.geo.pages_per_block;
        let mut bm = Bitmap::new(b);
        for off in 0..b {
            if self.get(self.geo.ppn(block, PageOffset(off))) {
                bm.set(off);
            }
        }
        bm
    }

    fn ram_bytes(&self) -> u64 {
        // B·K / 8 (paper §2): the dominant RAM consumer.
        self.geo.total_pages() / 8
    }

    fn name(&self) -> &'static str {
        "ram-pvb"
    }
}

/// Payload of one flash-resident PVB page.
#[derive(Clone, Debug)]
pub struct PvbPagePayload {
    /// Which segment of the bitmap this page holds.
    pub segment: u32,
    /// The validity bits (bit set ⇒ invalid), `blocks_per_segment · B` bits.
    pub words: Vec<u64>,
}

/// Flash-resident Page Validity Bitmap (µ-FTL).
///
/// The bitmap is split into page-sized *segments*, each covering a whole
/// number of blocks so a GC query touches exactly one segment. A RAM
/// directory maps segments to their current flash page (PVB pages are
/// updated out-of-place like everything else).
#[derive(Debug)]
pub struct FlashPvb {
    geo: Geometry,
    blocks_per_segment: u32,
    /// Segment directory: current flash location of each PVB page.
    directory: Vec<Option<Ppn>>,
}

impl FlashPvb {
    /// Create the store and materialize every segment page in flash.
    pub fn format(geo: Geometry, dev: &mut FlashDevice, sink: &mut dyn MetaSink) -> Self {
        // Usable bits per page (small header allowance), rounded down to a
        // whole number of blocks.
        let usable_bits = (geo.page_bytes - 32) * 8;
        let blocks_per_segment = (usable_bits / geo.pages_per_block).max(1);
        let segments = geo.blocks.div_ceil(blocks_per_segment);
        let mut store = FlashPvb {
            geo,
            blocks_per_segment,
            directory: vec![None; segments as usize],
        };
        for seg in 0..segments {
            let payload = PvbPagePayload {
                segment: seg,
                words: store.blank_segment(),
            };
            let ppn = sink.append_meta(
                dev,
                MetaKind::Pvb,
                seg as u64,
                PageData::blob_of(payload),
                IoPurpose::ValidityUpdate,
            );
            store.directory[seg as usize] = Some(ppn);
        }
        store
    }

    /// Reassemble the store from a recovered segment directory (clean
    /// restart). The geometry determines the segment layout exactly as
    /// [`FlashPvb::format`] did.
    pub(crate) fn assemble(geo: Geometry, directory: Vec<Option<Ppn>>) -> Self {
        let usable_bits = (geo.page_bytes - 32) * 8;
        let blocks_per_segment = (usable_bits / geo.pages_per_block).max(1);
        assert_eq!(
            directory.len() as u32,
            geo.blocks.div_ceil(blocks_per_segment),
            "recovered directory has the wrong segment count"
        );
        FlashPvb {
            geo,
            blocks_per_segment,
            directory,
        }
    }

    fn blank_segment(&self) -> Vec<u64> {
        let bits = self.blocks_per_segment as u64 * self.geo.pages_per_block as u64;
        vec![0; bits.div_ceil(64) as usize]
    }

    /// Number of PVB segments (flash pages).
    pub fn segments(&self) -> u32 {
        self.directory.len() as u32
    }

    fn segment_of(&self, block: BlockId) -> u32 {
        block.0 / self.blocks_per_segment
    }

    fn bit_of(&self, block: BlockId, off: u32) -> u64 {
        (block.0 % self.blocks_per_segment) as u64 * self.geo.pages_per_block as u64 + off as u64
    }

    fn read_segment(&self, dev: &mut FlashDevice, seg: u32, purpose: IoPurpose) -> Vec<u64> {
        let loc = self.directory[seg as usize].expect("formatted segment");
        dev.read_page(loc, purpose)
            .expect("directory points at a written page")
            .blob::<PvbPagePayload>()
            .expect("pvb payload")
            .words
            .clone()
    }

    /// Read-modify-write one segment (the 1-read + 1-write cost of Table 1).
    fn rewrite_segment(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        seg: u32,
        mutate: impl FnOnce(&mut Vec<u64>),
    ) {
        let mut words = self.read_segment(dev, seg, IoPurpose::ValidityUpdate);
        mutate(&mut words);
        let old = self.directory[seg as usize].expect("formatted segment");
        let ppn = sink.append_meta(
            dev,
            MetaKind::Pvb,
            seg as u64,
            PageData::blob_of(PvbPagePayload {
                segment: seg,
                words,
            }),
            IoPurpose::ValidityUpdate,
        );
        self.directory[seg as usize] = Some(ppn);
        sink.meta_page_obsolete(dev, old);
    }
}

impl ValidityStore for FlashPvb {
    fn mark_invalid(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppn: Ppn) {
        let block = self.geo.block_of(ppn);
        let off = self.geo.offset_of(ppn).0;
        let seg = self.segment_of(block);
        let bit = self.bit_of(block, off);
        self.rewrite_segment(dev, sink, seg, |words| {
            words[(bit / 64) as usize] |= 1 << (bit % 64);
        });
    }

    // `mark_invalid_batch` deliberately keeps the default one-RMW-per-update
    // implementation: that per-update cost (1 read + 1 write, Table 1) is
    // µ-FTL's defining property in the paper's evaluation. The batch hook
    // exists for Logarithmic Gecko's crash-atomicity, which battery-backed
    // µ-FTL does not need.

    fn note_erase(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, block: BlockId) {
        let seg = self.segment_of(block);
        let lo = self.bit_of(block, 0);
        let b = self.geo.pages_per_block as u64;
        self.rewrite_segment(dev, sink, seg, |words| {
            for bit in lo..lo + b {
                words[(bit / 64) as usize] &= !(1 << (bit % 64));
            }
        });
    }

    fn gc_query(
        &mut self,
        dev: &mut FlashDevice,
        _sink: &mut dyn MetaSink,
        block: BlockId,
    ) -> Bitmap {
        let seg = self.segment_of(block);
        let words = self.read_segment(dev, seg, IoPurpose::ValidityQuery);
        let b = self.geo.pages_per_block;
        let mut bm = Bitmap::new(b);
        for off in 0..b {
            let bit = self.bit_of(block, off);
            if words[(bit / 64) as usize] >> (bit % 64) & 1 == 1 {
                bm.set(off);
            }
        }
        bm
    }

    fn ram_bytes(&self) -> u64 {
        // Segment directory: one 4-byte pointer per PVB page (O(B·K/P)).
        4 * self.directory.len() as u64
    }

    fn name(&self) -> &'static str {
        "flash-pvb"
    }

    fn collectable_meta(&self) -> Option<MetaKind> {
        Some(MetaKind::Pvb)
    }

    fn collect_meta_block(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        block: BlockId,
    ) {
        // Migrate the segments whose current page sits in this block.
        let live: Vec<u32> = self
            .directory
            .iter()
            .enumerate()
            .filter_map(|(seg, loc)| {
                loc.filter(|p| self.geo.block_of(*p) == block)
                    .map(|_| seg as u32)
            })
            .collect();
        for seg in live {
            let loc = self.directory[seg as usize].expect("live segment");
            let words = {
                let data = dev
                    .read_page(loc, IoPurpose::ValidityGc)
                    .expect("live pvb page");
                data.blob::<PvbPagePayload>()
                    .expect("pvb payload")
                    .words
                    .clone()
            };
            let ppn = sink.append_meta(
                dev,
                MetaKind::Pvb,
                seg as u64,
                PageData::blob_of(PvbPagePayload {
                    segment: seg,
                    words,
                }),
                IoPurpose::ValidityGc,
            );
            self.directory[seg as usize] = Some(ppn);
            // The old page is inside the victim, which the engine erases.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geckoftl_core::validity::FlatMetaSink;

    fn geo() -> Geometry {
        Geometry::tiny()
    }

    #[test]
    fn ram_pvb_tracks_and_clears() {
        let g = geo();
        let mut dev = FlashDevice::new(g);
        let mut sink = FlatMetaSink::new(vec![BlockId(60)]);
        let mut pvb = RamPvb::new(g);
        pvb.mark_invalid(&mut dev, &mut sink, Ppn(17));
        pvb.mark_invalid(&mut dev, &mut sink, Ppn(18));
        let bm = pvb.gc_query(&mut dev, &mut sink, BlockId(1));
        assert!(bm.get(1) && bm.get(2)); // pages 17, 18 are block 1, offsets 1, 2
        assert!(!bm.get(0));
        pvb.note_erase(&mut dev, &mut sink, BlockId(1));
        assert!(pvb.gc_query(&mut dev, &mut sink, BlockId(1)).is_empty());
        // No IO at all.
        assert_eq!(dev.stats().total().page_reads, 0);
        assert_eq!(dev.stats().total().page_writes, 0);
    }

    #[test]
    fn ram_pvb_ram_cost_matches_paper() {
        let pvb = RamPvb::new(Geometry::paper_2tb());
        assert_eq!(pvb.ram_bytes(), 64 << 20); // 64 MB at 2 TB
    }

    #[test]
    fn flash_pvb_update_costs_one_read_one_write() {
        let g = geo();
        let mut dev = FlashDevice::new(g);
        let mut sink = FlatMetaSink::new((56..64).map(BlockId).collect());
        let mut pvb = FlashPvb::format(g, &mut dev, &mut sink);
        let before = dev.stats().counts(IoPurpose::ValidityUpdate);
        pvb.mark_invalid(&mut dev, &mut sink, Ppn(5));
        let after = dev.stats().counts(IoPurpose::ValidityUpdate);
        assert_eq!(after.page_reads - before.page_reads, 1);
        assert_eq!(after.page_writes - before.page_writes, 1);
        let bm = pvb.gc_query(&mut dev, &mut sink, BlockId(0));
        assert!(bm.get(5));
    }

    #[test]
    fn flash_pvb_round_trip_with_erases() {
        let g = geo();
        let mut dev = FlashDevice::new(g);
        let mut sink = FlatMetaSink::new((48..64).map(BlockId).collect());
        let mut pvb = FlashPvb::format(g, &mut dev, &mut sink);
        for p in [0u32, 3, 16, 17, 40] {
            pvb.mark_invalid(&mut dev, &mut sink, Ppn(p));
        }
        assert!(pvb.gc_query(&mut dev, &mut sink, BlockId(0)).get(3));
        assert!(pvb.gc_query(&mut dev, &mut sink, BlockId(1)).get(1));
        pvb.note_erase(&mut dev, &mut sink, BlockId(0));
        assert!(pvb.gc_query(&mut dev, &mut sink, BlockId(0)).is_empty());
        assert!(pvb.gc_query(&mut dev, &mut sink, BlockId(1)).get(0));
        assert!(pvb.gc_query(&mut dev, &mut sink, BlockId(2)).get(8)); // page 40
    }

    #[test]
    fn flash_pvb_batch_costs_one_rmw_per_update() {
        let g = geo();
        let mut dev = FlashDevice::new(g);
        let mut sink = FlatMetaSink::new((48..64).map(BlockId).collect());
        let mut pvb = FlashPvb::format(g, &mut dev, &mut sink);
        assert_eq!(pvb.segments(), 1);
        // µ-FTL's defining cost: every update is its own read-modify-write.
        let before = dev.stats().counts(IoPurpose::ValidityUpdate);
        pvb.mark_invalid_batch(
            &mut dev,
            &mut sink,
            &[Ppn(1), Ppn(2), Ppn(30), Ppn(99), Ppn(100)],
        );
        let after = dev.stats().counts(IoPurpose::ValidityUpdate);
        assert_eq!(after.page_writes - before.page_writes, 5);
        assert!(pvb.gc_query(&mut dev, &mut sink, BlockId(6)).get(3)); // page 99
    }

    #[test]
    fn flash_pvb_ram_is_directory_only() {
        let g = Geometry::paper_2tb();
        let mut dev = FlashDevice::new(Geometry::tiny());
        let mut sink = FlatMetaSink::new((48..64).map(BlockId).collect());
        // RAM model scales as O(B·K/P): far below the 64 MB RAM PVB.
        let pvb = FlashPvb::format(Geometry::tiny(), &mut dev, &mut sink);
        assert!(pvb.ram_bytes() < RamPvb::new(Geometry::tiny()).ram_bytes());
        let _ = g;
    }
}
