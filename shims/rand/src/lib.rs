//! Offline stand-in for the `rand` crate, covering the subset of its 0.8 API
//! that this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`distributions::Uniform`].
//!
//! The generator is SplitMix64 feeding a xoshiro256++ state — deterministic,
//! high-quality for simulation workloads, and seed-stable across releases
//! (which the real `StdRng` explicitly is *not*). Not cryptographic.

use std::ops::Range;

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias is irrelevant for simulation workloads.
                let x = rng.next_u64() as u128;
                lo + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// The user-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform value of type `T` (`f64` in `[0,1)`, full-range integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution sampling (subset of `rand::distributions`).
pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[lo, hi)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        /// Uniform over `[lo, hi)`.
        pub fn new(lo: T, hi: T) -> Self {
            Uniform { lo, hi }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T {
            T::sample_range(rng, self.lo, self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u32> = (0..32).map(|_| a.gen_range(0u32..1000)).collect();
        let vb: Vec<u32> = (0..32).map(|_| b.gen_range(0u32..1000)).collect();
        let vc: Vec<u32> = (0..32).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_and_floats_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }
}
