//! Streaming log-bucketed latency histograms (HDR-style).
//!
//! Replaces the per-experiment "collect every sample into a `Vec<f64>`,
//! sort, index" percentile helpers: memory is constant (one preallocated
//! bucket array) and recording is O(1) per sample.
//!
//! Layout: bucket 0 holds values below 1 µs; above that, 64 octaves
//! (powers of two) of 64 linear sub-buckets each, giving a worst-case
//! relative quantile error of `1/(2·64)` ≈ 0.8 %. Exact `count`, `sum`,
//! `min` and `max` are tracked alongside, so `mean()` and `max()` are
//! exact — the fuzz harness's `max_write_us` fitness signal depends on
//! that exactness.

const SUB_BITS: usize = 6;
/// Linear sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Number of power-of-two octaves covered (values up to 2^64 µs).
const OCTAVES: usize = 64;
/// Total buckets: one underflow bucket + the octave grid.
const NBUCKETS: usize = 1 + OCTAVES * SUB;

/// A streaming histogram over non-negative `f64` samples (microseconds by
/// convention, but unit-agnostic).
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Box<[u64; NBUCKETS]>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram (allocates its fixed bucket array once).
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0u64; NBUCKETS]),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(v: f64) -> usize {
        if v < 1.0 || v.is_nan() {
            // Below 1 (including 0 and any non-finite garbage): underflow
            // bucket. Latencies here are ≥ the 3 µs spare-read, except the
            // legitimate zeros of "no stall" samples.
            return 0;
        }
        let e = (v.log2().floor() as i64).clamp(0, OCTAVES as i64 - 1) as usize;
        let base = (2f64).powi(e as i32);
        let sub = (((v / base) - 1.0) * SUB as f64) as usize;
        1 + e * SUB + sub.min(SUB - 1)
    }

    fn representative(idx: usize) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        let e = (idx - 1) / SUB;
        let sub = (idx - 1) % SUB;
        (2f64).powi(e as i32) * (1.0 + (sub as f64 + 0.5) / SUB as f64)
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact smallest sample (0 on an empty histogram).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0 on an empty histogram).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Exact mean (0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile with the same rank convention the experiments'
    /// sort-based helper used: the sample at rank `round((n-1)·q)` of the
    /// sorted sample vector. The returned value is the mid-point of that
    /// rank's bucket, clamped into `[min, max]` — so `quantile(0.0)` and
    /// `quantile(1.0)` are exact, interior quantiles carry the ≤ 0.8 %
    /// bucket error.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Self::representative(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Bytes of the preallocated bucket array (the histogram's RAM charge).
    pub fn ram_bytes(&self) -> u64 {
        (NBUCKETS * std::mem::size_of::<u64>()) as u64 + std::mem::size_of::<Self>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sort-based quantile the experiments used before the shared
    /// histogram existed — kept here as the reference for equivalence.
    fn sort_quantile(samples: &[f64], q: f64) -> f64 {
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let idx = ((s.len() - 1) as f64 * q).round() as usize;
        s[idx.min(s.len() - 1)]
    }

    /// Fixed deterministic sample set: a pinched log-normal-ish mix that
    /// looks like the merge-latency experiment's write latencies (a dense
    /// body around 1–2 ms, a long stall tail, and zero-stall samples).
    fn pinned_samples() -> Vec<f64> {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut v = Vec::with_capacity(10_000);
        for i in 0..10_000u32 {
            let u = next();
            let s = if i % 10 == 0 {
                0.0 // "no stall" samples
            } else if u < 0.9 {
                1000.0 + next() * 1200.0
            } else {
                // tail: up to ~200 ms
                3000.0 * (1.0 + next() * 65.0)
            };
            v.push(s);
        }
        v
    }

    #[test]
    fn pinned_equivalence_with_sort_based_quantiles() {
        let samples = pinned_samples();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = sort_quantile(&samples, q);
            let approx = h.quantile(q);
            let tol = exact.abs() * 0.01 + 1e-9;
            assert!(
                (approx - exact).abs() <= tol,
                "q={q}: histogram {approx} vs sorted {exact}"
            );
        }
        // Aggregates are exact, not approximate.
        let sum: f64 = samples.iter().sum();
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.sum(), sum);
        assert_eq!(
            h.max(),
            samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        );
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.mean(), sum / samples.len() as f64);
    }

    #[test]
    fn latency_model_constants_round_trip_exactly() {
        // Device latencies are a tiny fixed set; every one must come back
        // exactly from min/max even though buckets quantize.
        for v in [3.0, 100.0, 1000.0, 2000.0] {
            let mut h = Histogram::new();
            h.record(v);
            assert_eq!(h.max(), v);
            assert_eq!(h.quantile(0.5), v, "singleton clamps to [min,max]");
        }
    }

    #[test]
    fn empty_histogram_is_well_defined() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn bucket_edges_are_monotone() {
        let mut last = 0;
        for v in [0.0, 0.5, 1.0, 1.01, 1.99, 2.0, 3.0, 4.0, 1e6, 1e18] {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last, "index must be monotone in value (v={v})");
            assert!(idx < NBUCKETS);
            last = idx;
        }
    }
}
