//! Logarithmic Gecko: the paper's write-optimized, flash-resident replacement
//! for the Page Validity Bitmap (§3).
//!
//! Updates (page invalidations, block erases) are absorbed by a one-page RAM
//! buffer; full buffers are flushed to flash as sorted *runs* organized into
//! levels with exponentially growing sizes, merged LSM-style to keep GC
//! queries at one flash read per run. Erases are handled with a one-bit erase
//! flag per entry instead of in-place deletion, so an erase costs one buffer
//! insertion rather than `O(L)` flash IOs.
//!
//! See [`entry`] for the entry format, [`run`] for the on-flash run layout,
//! [`config`] for tuning (`T`, `S`, multi-way merging), [`scheduler`] for
//! the incremental merge state machine that keeps merges off the update
//! path, and [`analysis`] for the closed-form cost model of Table 1.

pub mod analysis;
pub mod config;
pub mod entry;
pub mod filter;
pub mod run;
pub mod scheduler;
pub mod sharded;

pub use analysis::GeckoCostModel;
pub use config::GeckoConfig;
pub use entry::{Bitmap, GeckoEntry, GeckoKey};
pub use filter::RunFilter;
pub use run::{GeckoPagePayload, Postamble, Run, RunDirEntry, RunId, RunMeta};
pub use scheduler::{FinishedMerge, JobInput, MergeJob, MergeScheduler};
pub use sharded::ShardedGecko;

use crate::validity::{MetaSink, ValidityStore};
use flash_sim::{BlockId, FlashDevice, Geometry, IoPurpose, Ppn, SpanKind};
use std::collections::{BTreeMap, HashSet};

/// The Logarithmic Gecko structure: RAM buffer + run directories in RAM,
/// runs in flash.
#[derive(Debug)]
pub struct LogGecko {
    cfg: GeckoConfig,
    geo: Geometry,
    buffer: BTreeMap<GeckoKey, GeckoEntry>,
    /// `levels[i]` holds the runs at level i, oldest first. Query order is
    /// **not** positional: traversals sort runs by [`RunMeta::data_age`]
    /// descending, because with merge jobs overlapping, neither level nor
    /// in-level position implies data age (see [`LogGecko::runs_newest_first`]).
    levels: Vec<Vec<Run>>,
    /// Device sequence number at the most recent buffer flush (0 if never
    /// flushed). Recovery's buffer reconstruction (App. C.2) keys off this.
    last_flush_seq: u64,
    /// Reusable scratch buffers for the query/flush hot paths, so
    /// steady-state operation allocates nothing per call.
    scratch: Scratch,
    /// The incremental merge scheduler: per-channel queues of resumable
    /// [`MergeJob`]s (see [`scheduler`] for the state machine and its
    /// invariants). Under [`GeckoConfig::sync_merge`] the same machinery
    /// runs, just drained to completion inline.
    sched: MergeScheduler,
    /// Runs currently participating in a pending [`MergeJob`]. They stay
    /// installed in `levels` (and queryable) until the job's output is
    /// sealed, but must not be planned into a second merge.
    merging: HashSet<RunId>,
    /// Lifetime counters for analysis/ablation reporting.
    pub stats: GeckoStats,
}

/// Preallocated scratch space reused across queries and flushes.
/// Capacities grow to the workload's high-water mark and stay there.
/// (Merge buffers live in the [`MergeJob`] in flight — they are queued-job
/// state, accounted by [`LogGecko::ram_bytes`].)
#[derive(Debug, Default)]
struct Scratch {
    /// Open `(key, result-index)` pairs of the query in flight.
    open: Vec<(GeckoKey, usize)>,
    /// Coalesced flash-page probe list for the run under inspection.
    probe_ppns: Vec<Ppn>,
    /// One flush chunk (≤ V entries) en route to a run page.
    chunk: Vec<GeckoEntry>,
    /// Keys of the flush chunk (two-phase removal from the buffer).
    chunk_keys: Vec<GeckoKey>,
}

/// Internal operation counters (not IO — the device tracks IO).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GeckoStats {
    /// Entry insertions into the buffer (updates + erase markers).
    pub buffer_inserts: u64,
    /// Buffer flushes (each writes one run to level 0).
    pub flushes: u64,
    /// Merge operations performed.
    pub merges: u64,
    /// GC queries served.
    pub queries: u64,
    /// Entries dropped as obsolete during merges.
    pub entries_dropped: u64,
    /// Batched GC query passes served (each covers ≥ 1 block).
    pub batch_queries: u64,
    /// Per-key run probes skipped because the run's Bloom filter proved the
    /// key absent (each skip avoids up to one flash read).
    pub bloom_skips: u64,
    /// Flash pages actually read by fence-pointer probes on the fast path.
    pub fence_probes: u64,
    /// Flash page-IOs performed by incremental merge steps (reads of
    /// participant pages + writes of output pages), including forced drains.
    pub merge_pages_stepped: u64,
    /// Forced synchronous drains: a caller needing quiescence (clean
    /// shutdown, recovery, tests) found merge work still pending and ran
    /// the remainder inline. Flushes no longer drain — plan-time run-id
    /// reservation and span-contiguous planning let pushes proceed with
    /// jobs in flight ([`scheduler`] invariant 4).
    pub merge_stall_drains: u64,
}

impl LogGecko {
    /// Create an empty Logarithmic Gecko for a device geometry.
    pub fn new(geo: Geometry, cfg: GeckoConfig) -> Self {
        cfg.validate(&geo);
        let levels = (0..=cfg.levels(&geo) + 2).map(|_| Vec::new()).collect();
        LogGecko {
            cfg,
            geo,
            buffer: BTreeMap::new(),
            levels,
            last_flush_seq: 0,
            scratch: Scratch::default(),
            sched: MergeScheduler::new(geo.channels),
            merging: HashSet::new(),
            stats: GeckoStats::default(),
        }
    }

    /// Rebuild a Logarithmic Gecko from recovered runs (Appendix C.1); the
    /// buffer starts empty and is refilled by the caller (Appendix C.2).
    pub fn from_recovered(geo: Geometry, cfg: GeckoConfig, runs: Vec<Run>) -> Self {
        let mut g = LogGecko::new(geo, cfg);
        for run in runs {
            // The persisted *flush watermark*, not `created_seq`: a merge
            // output is written after the flush that scheduled it, so its
            // creation time says nothing about when the buffer was last
            // empty (see `RunMeta::flush_seq`).
            g.last_flush_seq = g.last_flush_seq.max(run.meta.flush_seq);
            let level = run.meta.level as usize;
            while g.levels.len() <= level {
                g.levels.push(Vec::new());
            }
            g.levels[level].push(run);
        }
        // Within each level, keep oldest-first order by creation time.
        for level in &mut g.levels {
            level.sort_by_key(|r| r.meta.created_seq);
        }
        g
    }

    /// Configuration in effect.
    pub fn config(&self) -> GeckoConfig {
        self.cfg
    }

    /// Number of entries currently buffered in RAM.
    pub fn buffer_len(&self) -> usize {
        self.buffer.len()
    }

    /// `V`: buffer capacity in entries.
    pub fn buffer_capacity(&self) -> u32 {
        self.cfg.entries_per_page(&self.geo)
    }

    /// Device sequence number of the last buffer flush.
    pub fn last_flush_seq(&self) -> u64 {
        self.last_flush_seq
    }

    /// All live runs, newest data first (descending
    /// [`RunMeta::data_age`]) — the traversal order of GC queries. With
    /// merge jobs overlapping, level order no longer implies data-age
    /// order: a late-planned job over fresh flushes can install its output
    /// deeper than an earlier job's output over older runs. Live spans are
    /// pairwise disjoint ([`scheduler`] invariant 4), so the sort is a
    /// total order on data age.
    pub fn runs_newest_first(&self) -> impl Iterator<Item = &Run> {
        let mut runs: Vec<&Run> = self.levels.iter().flatten().collect();
        runs.sort_by_key(|r| std::cmp::Reverse(r.meta.data_age()));
        runs.into_iter()
    }

    /// Total flash pages currently occupied by live runs.
    pub fn total_run_pages(&self) -> u64 {
        self.runs_newest_first().map(Run::num_pages).sum()
    }

    /// Total live entries across all runs.
    pub fn total_run_entries(&self) -> u64 {
        self.runs_newest_first().map(|r| r.entry_count).sum()
    }

    /// Number of levels that currently hold at least one run.
    pub fn occupied_levels(&self) -> usize {
        self.levels.iter().filter(|l| !l.is_empty()).count()
    }

    /// Number of installed runs at each level. A fully drained tree holds
    /// at most one run per level (the planner keeps scheduling until no
    /// level has two settled runs), which tests use as the settled-shape
    /// invariant.
    pub fn runs_per_level(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Integrated-RAM footprint per Appendix B: run directories (two 4-byte
    /// words per run page) and the one-page update buffer, plus the per-run
    /// Bloom filters of the query fast path and the buffers of
    /// queued/in-flight [`MergeJob`]s (neither in the paper's accounting —
    /// reported honestly as part of the validity store). Merge buffers are
    /// charged as the actual queued-job state rather than the paper's
    /// static input/output-page allowance: since the scheduler refactor
    /// they exist only while a job is in flight, so a static term would
    /// double-count mid-merge and charge phantom memory when idle.
    pub fn ram_bytes(&self) -> u64 {
        let dir_bytes = 8 * self.total_run_pages();
        let filter_bytes: u64 = self.runs_newest_first().map(Run::filter_bytes).sum();
        dir_bytes
            + filter_bytes
            + self.geo.page_bytes as u64
            + self.sched.ram_bytes(self.entry_ram_bytes())
    }

    /// Approximate RAM of one entry buffered in a merge job: key + flags
    /// plus the boxed bitmap slice words.
    fn entry_ram_bytes(&self) -> u64 {
        24 + u64::from(self.cfg.sub_bits(&self.geo).div_ceil(64)) * 8
    }

    fn key_of(&self, ppn: Ppn) -> (GeckoKey, u32) {
        let block = self.geo.block_of(ppn);
        let off = self.geo.offset_of(ppn).0;
        let sub = self.cfg.sub_bits(&self.geo);
        (
            GeckoKey {
                block,
                part: (off / sub) as u16,
            },
            off % sub,
        )
    }

    /// Report an invalidated physical page (Algorithm 1).
    pub fn mark_invalid(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppn: Ppn) {
        let (key, bit) = self.key_of(ppn);
        let sub = self.cfg.sub_bits(&self.geo);
        let entry = self
            .buffer
            .entry(key)
            .or_insert_with(|| GeckoEntry::blank(key, sub));
        entry.bitmap.set(bit);
        self.stats.buffer_inserts += 1;
        self.maybe_flush(dev, sink);
    }

    /// Report an erased block (Algorithm 2). With entry-partitioning, one
    /// erase marker is inserted per sub-entry so that queries for every part
    /// of the block terminate correctly.
    ///
    /// Divergence from the paper's Algorithm 2 pseudo-code: if the buffer
    /// already holds an entry for the key, we *replace* it with the erase
    /// marker (its pre-erase bits are obsolete) instead of leaving it
    /// untouched — leaving stale bits would mark post-erase pages invalid.
    pub fn note_erase(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, block: BlockId) {
        let sub = self.cfg.sub_bits(&self.geo);
        for part in 0..self.cfg.partitions as u16 {
            let key = GeckoKey { block, part };
            self.buffer.insert(key, GeckoEntry::erase_marker(key, sub));
            self.stats.buffer_inserts += 1;
        }
        self.maybe_flush(dev, sink);
    }

    /// GC query (Figure 5): assemble the full B-bit invalid bitmap for
    /// `block` by consulting the buffer and then every run from newest to
    /// oldest, stopping per sub-key at erase flags.
    ///
    /// On the fast path ([`GeckoConfig::fast_path`]) each run costs at most
    /// one flash read per *open sub-key present in the run*: the per-run
    /// Bloom filter skips runs that cannot contain a key, and fence-pointer
    /// binary search pins each surviving key to its unique page. With the
    /// fast path off, cost reverts to the paper's bound of one read per run
    /// covering a still-open sub-key.
    pub fn gc_query(&mut self, dev: &mut FlashDevice, block: BlockId) -> Bitmap {
        self.gc_query_with_purpose(dev, block, IoPurpose::ValidityQuery)
    }

    /// GC query with an explicit IO purpose (recovery re-uses the machinery).
    pub fn gc_query_with_purpose(
        &mut self,
        dev: &mut FlashDevice,
        block: BlockId,
        purpose: IoPurpose,
    ) -> Bitmap {
        self.stats.queries += 1;
        if !self.cfg.fast_path {
            return self.gc_query_legacy(dev, block, purpose);
        }
        let mut open = std::mem::take(&mut self.scratch.open);
        open.clear();
        for part in 0..self.cfg.partitions as u16 {
            open.push((GeckoKey { block, part }, 0));
        }
        let mut results = [Bitmap::new(self.geo.pages_per_block)];
        self.query_open_keys(dev, &mut open, &mut results, purpose);
        self.scratch.open = open;
        let [result] = results;
        result
    }

    /// Batched GC query: the invalid bitmaps of several blocks in one pass
    /// over the structure. Requested keys are processed in sorted order and
    /// probes landing on the same flash page are coalesced into a single
    /// read, so querying `n` victim candidates costs far less than `n`
    /// independent queries whenever their keys share run pages (always true
    /// for the small runs at shallow levels).
    pub fn gc_query_batch(&mut self, dev: &mut FlashDevice, blocks: &[BlockId]) -> Vec<Bitmap> {
        self.gc_query_batch_with_purpose(dev, blocks, IoPurpose::ValidityQuery)
    }

    /// [`LogGecko::gc_query_batch`] with an explicit IO purpose.
    pub fn gc_query_batch_with_purpose(
        &mut self,
        dev: &mut FlashDevice,
        blocks: &[BlockId],
        purpose: IoPurpose,
    ) -> Vec<Bitmap> {
        self.stats.queries += blocks.len() as u64;
        let b = self.geo.pages_per_block;
        let mut results: Vec<Bitmap> = blocks.iter().map(|_| Bitmap::new(b)).collect();
        if blocks.is_empty() {
            return results;
        }
        if !self.cfg.fast_path {
            for (i, &block) in blocks.iter().enumerate() {
                results[i] = self.gc_query_legacy(dev, block, purpose);
            }
            return results;
        }
        self.stats.batch_queries += 1;
        // Sort requests; duplicate blocks ride along on the first occurrence.
        let mut order: Vec<(BlockId, usize)> = blocks
            .iter()
            .copied()
            .enumerate()
            .map(|(i, blk)| (blk, i))
            .collect();
        order.sort_unstable();
        let mut dups: Vec<(usize, usize)> = Vec::new();
        let mut open = std::mem::take(&mut self.scratch.open);
        open.clear();
        let mut prev: Option<(BlockId, usize)> = None;
        for (blk, i) in order {
            if let Some((pb, pi)) = prev {
                if pb == blk {
                    dups.push((i, pi));
                    continue;
                }
            }
            prev = Some((blk, i));
            for part in 0..self.cfg.partitions as u16 {
                open.push((GeckoKey { block: blk, part }, i));
            }
        }
        self.query_open_keys(dev, &mut open, &mut results, purpose);
        self.scratch.open = open;
        for (dup, src) in dups {
            results[dup] = results[src].clone();
        }
        results
    }

    /// Fast-path query core shared by single and batched GC queries.
    ///
    /// `open` holds sorted `(key, result-index)` pairs still awaiting an
    /// erase flag; bits absorbed for a key land in `results[index]` at
    /// `part·sub + bit`. Consults the buffer first, then every run newest to
    /// oldest: the run's Bloom filter vetoes absent keys, fence-pointer
    /// search pins survivors to their unique page, and probes of distinct
    /// keys that share a page are coalesced into one flash read.
    fn query_open_keys(
        &mut self,
        dev: &mut FlashDevice,
        open: &mut Vec<(GeckoKey, usize)>,
        results: &mut [Bitmap],
        purpose: IoPurpose,
    ) {
        debug_assert!(
            open.windows(2).all(|w| w[0].0 < w[1].0),
            "open keys must be sorted"
        );
        let sub = self.cfg.sub_bits(&self.geo);
        // 1. The RAM buffer holds the newest information.
        let buffer = &self.buffer;
        open.retain(|&(key, ridx)| match buffer.get(&key) {
            Some(entry) => {
                for bit in entry.bitmap.iter_ones() {
                    results[ridx].set(key.part as u32 * sub + bit);
                }
                !entry.erase_flag
            }
            None => true,
        });

        // 2. Runs, newest data first (descending span — see
        // `runs_newest_first`).
        let mut ppns = std::mem::take(&mut self.scratch.probe_ppns);
        let mut runs: Vec<&Run> = self.levels.iter().flatten().collect();
        runs.sort_by_key(|r| std::cmp::Reverse(r.meta.data_age()));
        for run in runs {
            if open.is_empty() {
                break;
            }
            ppns.clear();
            // Keys are sorted, so probes arrive in page order; once a
            // page is queued, every following key up to its fence upper
            // bound lands on it and needs neither filter nor search (the
            // common case: one block's S sub-keys share a run page).
            let mut queued_up_to: Option<GeckoKey> = None;
            for &(key, _) in open.iter() {
                if queued_up_to.is_some_and(|last| key <= last) {
                    continue;
                }
                if !run.may_contain(key) {
                    self.stats.bloom_skips += 1;
                    continue;
                }
                if let Some(page) = run.page_for(key) {
                    debug_assert!(ppns.last() != Some(&page.ppn));
                    ppns.push(page.ppn);
                    queued_up_to = Some(page.last);
                }
            }
            self.stats.fence_probes += ppns.len() as u64;
            for &ppn in &ppns {
                let data = dev
                    .read_page(ppn, purpose)
                    .expect("run directory points at a written page");
                let payload = data
                    .blob::<GeckoPagePayload>()
                    .expect("gecko block page holds a gecko payload");
                // Page entries and `open` are both key-sorted: a
                // two-pointer merge scan finds matches in one compare
                // per entry instead of a binary search per entry.
                let mut oi = 0usize;
                for entry in &payload.entries {
                    while oi < open.len() && open[oi].0 < entry.key {
                        oi += 1;
                    }
                    if oi >= open.len() {
                        break;
                    }
                    if open[oi].0 != entry.key {
                        continue;
                    }
                    let ridx = open[oi].1;
                    for bit in entry.bitmap.iter_ones() {
                        results[ridx].set(entry.key.part as u32 * sub + bit);
                    }
                    if entry.erase_flag {
                        // Close the key; `oi` now points at the next
                        // open key, which only larger entries can match.
                        open.remove(oi);
                    }
                }
            }
        }
        ppns.clear();
        self.scratch.probe_ppns = ppns;
    }

    /// The pre-optimization query algorithm: linear directory scan over the
    /// contiguous open-key range, no Bloom filters. Kept as the
    /// [`GeckoConfig::fast_path`]`= false` baseline for A/B benchmarking.
    fn gc_query_legacy(
        &mut self,
        dev: &mut FlashDevice,
        block: BlockId,
        purpose: IoPurpose,
    ) -> Bitmap {
        let s = self.cfg.partitions as usize;
        let sub = self.cfg.sub_bits(&self.geo);
        let mut result = Bitmap::new(self.geo.pages_per_block);
        let mut open = vec![true; s];
        let mut open_count = s;

        let absorb = |entry: &GeckoEntry,
                      open: &mut Vec<bool>,
                      open_count: &mut usize,
                      result: &mut Bitmap| {
            let part = entry.key.part as usize;
            if !open[part] {
                return;
            }
            for bit in entry.bitmap.iter_ones() {
                result.set(part as u32 * sub + bit);
            }
            if entry.erase_flag {
                open[part] = false;
                *open_count -= 1;
            }
        };

        // 1. The RAM buffer holds the newest information.
        for part in 0..s as u16 {
            if let Some(entry) = self.buffer.get(&GeckoKey { block, part }) {
                absorb(entry, &mut open, &mut open_count, &mut result);
            }
        }

        // 2. Runs, newest data first; read only pages overlapping open keys.
        let mut runs: Vec<&Run> = self.levels.iter().flatten().collect();
        runs.sort_by_key(|r| std::cmp::Reverse(r.meta.data_age()));
        for run in runs {
            if open_count == 0 {
                return result;
            }
            let lo_part = open.iter().position(|o| *o);
            let hi_part = open.iter().rposition(|o| *o);
            let (Some(lo), Some(hi)) = (lo_part, hi_part) else {
                return result;
            };
            let lo = GeckoKey {
                block,
                part: lo as u16,
            };
            let hi = GeckoKey {
                block,
                part: hi as u16,
            };
            let pages: Vec<Ppn> = run.pages_overlapping(lo, hi).map(|p| p.ppn).collect();
            for ppn in pages {
                let data = dev
                    .read_page(ppn, purpose)
                    .expect("run directory points at a written page");
                let payload = data
                    .blob::<GeckoPagePayload>()
                    .expect("gecko block page holds a gecko payload");
                for entry in &payload.entries {
                    if entry.key.block == block {
                        absorb(entry, &mut open, &mut open_count, &mut result);
                    }
                }
            }
        }
        result
    }

    /// Probe-every-run oracle: assemble the bitmap by reading **every** page
    /// of every run, newest first, using no run directories, fence pointers
    /// or filters. Deliberately the slowest possible correct implementation;
    /// the property tests check the fast path against it byte-for-byte, and
    /// the query benchmark uses it as the most pessimistic baseline.
    pub fn gc_query_naive(&mut self, dev: &mut FlashDevice, block: BlockId) -> Bitmap {
        let s = self.cfg.partitions as usize;
        let sub = self.cfg.sub_bits(&self.geo);
        let mut result = Bitmap::new(self.geo.pages_per_block);
        let mut open = vec![true; s];

        let mut absorb = |entry: &GeckoEntry, open: &mut Vec<bool>| {
            if entry.key.block != block {
                return;
            }
            let part = entry.key.part as usize;
            if !open[part] {
                return;
            }
            for bit in entry.bitmap.iter_ones() {
                result.set(part as u32 * sub + bit);
            }
            if entry.erase_flag {
                open[part] = false;
            }
        };

        for part in 0..s as u16 {
            if let Some(entry) = self.buffer.get(&GeckoKey { block, part }) {
                absorb(entry, &mut open);
            }
        }
        let mut runs: Vec<&Run> = self.levels.iter().flatten().collect();
        runs.sort_by_key(|r| std::cmp::Reverse(r.meta.data_age()));
        for run in runs {
            for page in &run.pages {
                let data = dev
                    .read_page(page.ppn, IoPurpose::ValidityQuery)
                    .expect("run directory points at a written page");
                let payload = data
                    .blob::<GeckoPagePayload>()
                    .expect("gecko block page holds a gecko payload");
                for entry in &payload.entries {
                    absorb(entry, &mut open);
                }
            }
        }
        result
    }

    fn maybe_flush(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        if self.buffer.len() >= self.buffer_capacity() as usize {
            self.flush(dev, sink);
        }
    }

    /// Flush the buffer and schedule merges. Public so that shutdown paths
    /// can force persistence. Merges scheduled by the pushes are left to the
    /// pump — callers needing full quiescence (clean shutdown, tests) follow
    /// up with [`LogGecko::drain_merges`] or keep ticking
    /// [`crate::ftl::FtlEngine::idle_tick`].
    ///
    /// Erase markers can overshoot the buffer past `V` entries (Algorithm 2
    /// inserts S sub-entries at once), so the flush emits *single-page* runs
    /// — each inserted at level 0, scheduling merges after each — rather
    /// than one multi-page run. Chunks cover disjoint key ranges, so their
    /// relative order carries no information, and the data-age order that
    /// queries rely on is preserved.
    ///
    /// Pushes do **not** wait for pending merge jobs: output identities are
    /// reserved at plan time and plans are span-contiguous ([`scheduler`]
    /// invariant 4), so planning on a structure with jobs still in flight is
    /// sound. The forced pre-push drain this method used to perform — and
    /// count as [`GeckoStats::merge_stall_drains`] — is gone; stall drains
    /// now occur only when a caller explicitly needs quiescence.
    pub fn flush(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        if self.buffer.is_empty() {
            // Nothing to push ⇒ no merge planning ⇒ no need to force-drain
            // in-flight work; it keeps draining through the pump.
            return;
        }
        self.stats.flushes += 1;
        let span_t0 = dev.clock().now_us();
        let span_entries = self.buffer.len() as u32;
        let v = self.buffer_capacity() as usize;
        // The watermark in effect before this flush began. Until the chunk
        // that *empties* the buffer is sealed, this is all any run written
        // here may certify: earlier chunks land on flash while the buffer
        // tail is still RAM-only, and a crash in that window must leave the
        // recovery threshold low enough for steps 4a/4b to re-derive the
        // tail (re-deriving the already-durable chunks is idempotent).
        // Advancing `last_flush_seq` per chunk — as every run once did by
        // stamping its own creation time — certified the unwritten tail as
        // durable and lost it for good.
        let prior_watermark = self.last_flush_seq;
        // Reused scratch buffers: steady-state flushing allocates only the
        // page payloads the simulated flash pages must own.
        let mut chunk = std::mem::take(&mut self.scratch.chunk);
        let mut chunk_keys = std::mem::take(&mut self.scratch.chunk_keys);
        while !self.buffer.is_empty() {
            chunk_keys.clear();
            chunk_keys.extend(self.buffer.keys().take(v).copied());
            chunk.clear();
            chunk.extend(
                chunk_keys
                    .iter()
                    .map(|k| self.buffer.remove(k).expect("key just listed")),
            );
            // Only the final chunk makes every report buffered before its
            // creation durable; it alone stamps (and advances to) its own
            // creation time. Nothing inserts into the buffer while a chunk
            // is written, so emptiness here is decisive.
            let is_final = self.buffer.is_empty();
            // A flush run is at most one page: write it atomically.
            let mut writer = scheduler::RunWriter::new(
                &self.cfg,
                &self.geo,
                dev,
                None,
                std::mem::take(&mut chunk),
                Vec::new(),
                None,
                None,
                (!is_final).then_some(prior_watermark),
                0,
                IoPurpose::ValidityUpdate,
            );
            while !writer.write_next_page(dev, sink) {}
            let (run, reclaimed) = writer.into_run();
            chunk = reclaimed;
            debug_assert_eq!(
                run.meta.level, 0,
                "a single-page flush run belongs at level 0"
            );
            if is_final {
                self.last_flush_seq = run.meta.created_seq;
            }
            self.levels[0].push(run);
            self.schedule_merges(dev);
            if self.cfg.sync_merge {
                self.drain_merges(dev, sink);
            }
        }
        self.scratch.chunk = chunk;
        self.scratch.chunk_keys = chunk_keys;
        // Backpressure valve: merge IO is normally pumped between flushes
        // (the engine piggybacks slices on writes and idle ticks), but a
        // caller that only ever inserts must not accumulate unbounded merge
        // debt — space amplification and metadata-block pressure grow with
        // the backlog. Only when the debt runs far past the ceiling does
        // the flush drain the excess inline, as a counted stall.
        if self.merge_backlog_pages() > self.merge_debt_ceiling() {
            if !self.cfg.sync_merge {
                self.stats.merge_stall_drains += 1;
            }
            while self.merge_backlog_pages() > self.merge_debt_ceiling()
                && self.pump_merges(dev, sink, self.cfg.merge_step_pages as u64)
            {}
        }
        let now = dev.clock().now_us();
        dev.telemetry_mut()
            .record_span(SpanKind::BufferFlush, span_entries, span_t0, now);
    }

    /// Pending-merge-IO ceiling for the [`LogGecko::flush`] backpressure
    /// valve, in estimated flash page-IOs. Scaled to the slice budget (the
    /// granularity at which debt drains) and the channel count (queues on
    /// distinct channels drain concurrently).
    fn merge_debt_ceiling(&self) -> u64 {
        16 * self.cfg.merge_step_pages.max(1) as u64 * self.geo.channels.max(1) as u64
    }

    /// Plan due merges (§3.1, Appendix A): whenever a level holds two or
    /// more settled runs whose spans form a contiguous block of data-age
    /// history, enqueue a [`MergeJob`] folding them — plus, under the
    /// multi-way policy, the runs of every deeper level the output would
    /// cascade into anyway. Planning only *queues* work; the IO is paid by
    /// [`LogGecko::pump_merges`] / [`LogGecko::drain_merges`].
    ///
    /// Plans are made while earlier jobs are still in flight: their inputs
    /// stay installed (and excluded via `merging`), and the span-contiguity
    /// rule ([`scheduler`] invariant 4) rejects any candidate set whose
    /// combined span would overlap an outside live run — which keeps live
    /// spans pairwise disjoint no matter how plans interleave.
    fn schedule_merges(&mut self, dev: &mut FlashDevice) {
        'planning: loop {
            for start in 0..self.levels.len() {
                let Some(inputs) = self.plan_at_level(start) else {
                    continue;
                };
                let ids: HashSet<RunId> = inputs.iter().map(|i| i.meta.id).collect();
                let deepest = inputs.iter().map(|i| i.meta.level).max().unwrap_or(0);
                // Is the merge output going to carry the oldest live data?
                // If so, erase flags carry no further information and
                // fully-empty entries can be dropped ("removes obsolete
                // entries during merge operations"). With spans pairwise
                // disjoint this is exactly "every outside run is newer";
                // level depth alone no longer orders data age once jobs
                // overlap.
                let span_lo = inputs
                    .iter()
                    .map(|i| i.meta.supersedes_since)
                    .min()
                    .unwrap_or(0);
                let output_is_largest = self
                    .levels
                    .iter()
                    .flatten()
                    .filter(|r| !ids.contains(&r.meta.id))
                    .all(|r| r.meta.supersedes_upto > span_lo);
                self.stats.merges += 1;
                self.merging.extend(ids);
                self.sched.enqueue(MergeJob::new(
                    self.cfg,
                    self.geo,
                    dev,
                    inputs,
                    deepest,
                    output_is_largest,
                ));
                continue 'planning;
            }
            return;
        }
    }

    /// Try to build a span-contiguous merge plan triggered by level
    /// `start` holding ≥ 2 settled runs.
    ///
    /// Live spans are pairwise disjoint, so global data-age order is also
    /// span order, and a candidate set is span-contiguous **iff** it is a
    /// consecutive subsequence of that order. The plan is therefore built
    /// positionally: within a maximal consecutive segment of settled runs,
    /// take the window from the newest to the oldest run of level `start`
    /// — including any *bridge* runs of other levels whose spans sit
    /// between them (skipping a bridge would leave a forever-unmergeable
    /// gap: nothing younger can ever span across it) — then cascade
    /// older-ward per the multi-way policy, absorbing each next-older run
    /// whose level the combined output would reach anyway.
    ///
    /// Returns the inputs newest data first, or `None` if no segment
    /// holds two settled runs of level `start`.
    fn plan_at_level(&self, start: usize) -> Option<Vec<JobInput>> {
        let mut order: Vec<&Run> = self.levels.iter().flatten().collect();
        order.sort_by_key(|r| std::cmp::Reverse(r.meta.data_age()));
        let settled = |r: &Run| !self.merging.contains(&r.meta.id);
        let mut i = 0usize;
        while i < order.len() {
            if !settled(order[i]) {
                i += 1;
                continue;
            }
            let seg_start = i;
            while i < order.len() && settled(order[i]) {
                i += 1;
            }
            let seg = &order[seg_start..i];
            let lvl = start as u32;
            let first = seg.iter().position(|r| r.meta.level == lvl);
            let last = seg.iter().rposition(|r| r.meta.level == lvl);
            let (Some(first), Some(last)) = (first, last) else {
                continue;
            };
            if last == first {
                continue; // a single run of this level: nothing due here
            }
            let mut cand: Vec<&Run> = seg[first..=last].to_vec();
            if self.cfg.multiway_merge {
                let mut pages: u64 = cand.iter().map(|r| r.num_pages()).sum();
                for r in &seg[last + 1..] {
                    if pages < (self.cfg.size_ratio as u64).pow(r.meta.level) {
                        break;
                    }
                    cand.push(r);
                    pages += r.num_pages();
                }
            }
            debug_assert!(self.span_contiguous(&cand));
            return Some(cand.iter().map(|r| JobInput::of(r)).collect());
        }
        None
    }

    /// Invariant-4 check: does the candidate set's combined span
    /// `[min supersedes_since, max supersedes_upto]` avoid the span of
    /// every live run outside the set? (In-flight jobs need no separate
    /// check — their participants stay installed until the output is
    /// sealed, and an output's span is the union of its participants'.)
    fn span_contiguous(&self, cand: &[&Run]) -> bool {
        let lo = cand.iter().map(|r| r.meta.supersedes_since).min().unwrap();
        let hi = cand.iter().map(|r| r.meta.supersedes_upto).max().unwrap();
        self.levels
            .iter()
            .flatten()
            .filter(|r| !cand.iter().any(|c| c.meta.id == r.meta.id))
            .all(|r| r.meta.supersedes_upto < lo || hi < r.meta.supersedes_since)
    }

    /// Advance pending merge work by one bounded slice: every channel's
    /// head job performs at most `budget` run-page reads/writes, with pages
    /// on distinct channels overlapping in simulated time. Sealed outputs
    /// are installed atomically (inputs retired, output pushed, follow-on
    /// cascade merges planned). Returns `true` while work remains.
    ///
    /// The FTL engine piggybacks one slice on every application write and
    /// donates slices from idle ticks; standalone users may call it at any
    /// cadence — queries stay correct mid-merge.
    pub fn pump_merges(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        budget: u64,
    ) -> bool {
        if self.sched.is_idle() {
            return false;
        }
        let span_t0 = dev.clock().now_us();
        let stepped_before = self.stats.merge_pages_stepped;
        let finished = self.sched.step_channels(
            dev,
            sink,
            budget,
            &mut self.stats.entries_dropped,
            &mut self.stats.merge_pages_stepped,
            self.last_flush_seq,
        );
        for done in finished {
            self.install_merge(dev, sink, done);
        }
        let now = dev.clock().now_us();
        let stepped = (self.stats.merge_pages_stepped - stepped_before) as u32;
        dev.telemetry_mut()
            .record_span(SpanKind::MergeSlice, stepped, span_t0, now);
        !self.sched.is_idle()
    }

    /// Run all pending merge work to completion. Counted as a forced stall
    /// when work was actually pending — except under
    /// [`GeckoConfig::sync_merge`], where inline draining *is* the policy.
    pub fn drain_merges(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        if self.sched.is_idle() {
            return;
        }
        if !self.cfg.sync_merge {
            self.stats.merge_stall_drains += 1;
        }
        while self.pump_merges(dev, sink, u64::MAX) {}
    }

    /// Atomically switch queries from a merge's inputs to its output: the
    /// participants leave the levels and have their pages retired, and the
    /// sealed output run (if any entries survived the fold) is installed.
    /// Follow-on cascade merges are planned immediately.
    fn install_merge(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        done: FinishedMerge,
    ) {
        for input in &done.inputs {
            self.merging.remove(&input.meta.id);
            let level = input.meta.level as usize;
            if let Some(runs) = self.levels.get_mut(level) {
                runs.retain(|r| r.meta.id != input.meta.id);
            }
        }
        for input in &done.inputs {
            for page in &input.pages {
                sink.meta_page_obsolete(dev, page.ppn);
            }
        }
        if let Some(run) = done.output {
            let level = run.meta.level as usize;
            while self.levels.len() <= level {
                self.levels.push(Vec::new());
            }
            self.levels[level].push(run);
        }
        self.schedule_merges(dev);
    }

    /// Pending incremental merge work, in estimated flash page-IOs
    /// (0 when the structure is settled).
    pub fn merge_backlog_pages(&self) -> u64 {
        self.sched.debt_pages()
    }

    /// Number of merge jobs queued or in flight.
    pub fn merge_jobs_pending(&self) -> usize {
        self.sched.pending_jobs()
    }

    /// Output pages already on flash for merges whose output run is not yet
    /// sealed — orphans a crash right now would leave behind (and that
    /// GeckoRec must discard). Test/diagnostic introspection.
    pub fn unsealed_merge_pages(&self) -> u64 {
        self.sched.unsealed_output_pages()
    }

    /// Reconstruct the invalid-page bitmap of **every** block by scanning
    /// all runs once plus the buffer — BVC recovery, Appendix C step 5.
    /// Charges one page read per live run page to `purpose`.
    ///
    /// Since the scan reads every run page anyway, it doubles as a repair
    /// pass at no extra IO: runs missing their RAM-resident Bloom filter
    /// (recovered runs — filters are not persisted) get one rebuilt from
    /// the keys streaming past, and zeroed `entry_count`s are refilled, so
    /// recovered runs serve fast-path queries immediately instead of
    /// degrading to probe-per-run until the next merge.
    pub fn scan_all_bitmaps(
        &mut self,
        dev: &mut FlashDevice,
        purpose: IoPurpose,
    ) -> std::collections::HashMap<BlockId, Bitmap> {
        use std::collections::HashMap;
        let sub = self.cfg.sub_bits(&self.geo);
        let b = self.geo.pages_per_block;
        let bloom_bits = self.cfg.bloom_bits_per_key;
        let mut closed: HashSet<GeckoKey> = HashSet::new();
        let mut result: HashMap<BlockId, Bitmap> = HashMap::new();
        let absorb = |entry: &GeckoEntry,
                      closed: &mut HashSet<GeckoKey>,
                      result: &mut HashMap<BlockId, Bitmap>| {
            if closed.contains(&entry.key) {
                return;
            }
            let bm = result
                .entry(entry.key.block)
                .or_insert_with(|| Bitmap::new(b));
            for bit in entry.bitmap.iter_ones() {
                bm.set(entry.key.part as u32 * sub + bit);
            }
            if entry.erase_flag {
                closed.insert(entry.key);
            }
        };
        for entry in self.buffer.values() {
            absorb(entry, &mut closed, &mut result);
        }
        let mut keys: Vec<GeckoKey> = Vec::new();
        // Newest data first (`absorb` honors the first erase flag seen per
        // key); indices instead of references because the repair pass needs
        // `&mut` access to each run.
        let mut order: Vec<(usize, usize)> = self
            .levels
            .iter()
            .enumerate()
            .flat_map(|(li, level)| (0..level.len()).map(move |ri| (li, ri)))
            .collect();
        order.sort_by_key(|&(li, ri)| std::cmp::Reverse(self.levels[li][ri].meta.data_age()));
        for (li, ri) in order {
            let run = &mut self.levels[li][ri];
            let rebuild_filter = bloom_bits > 0 && run.filter.is_none();
            keys.clear();
            let mut entries_seen = 0u64;
            for page in &run.pages {
                let data = dev
                    .read_page(page.ppn, purpose)
                    .expect("live run page readable");
                let payload = data.blob::<GeckoPagePayload>().expect("gecko page payload");
                entries_seen += payload.entries.len() as u64;
                for entry in &payload.entries {
                    absorb(entry, &mut closed, &mut result);
                    if rebuild_filter {
                        keys.push(entry.key);
                    }
                }
            }
            if run.entry_count == 0 {
                run.entry_count = entries_seen;
            }
            if rebuild_filter {
                let mut f = RunFilter::new(keys.len(), bloom_bits);
                for &k in &keys {
                    f.insert(k);
                }
                run.filter = Some(f);
            }
        }
        result
    }

    /// Seed the buffer with a recovered erase marker (Appendix C.2.1).
    /// Does not flush — recovery completes before normal flushing resumes.
    pub fn recover_erase_marker(&mut self, block: BlockId) {
        let sub = self.cfg.sub_bits(&self.geo);
        for part in 0..self.cfg.partitions as u16 {
            let key = GeckoKey { block, part };
            self.buffer.insert(key, GeckoEntry::erase_marker(key, sub));
        }
    }

    /// Seed the buffer with a recovered invalidation (Appendix C.2.2).
    pub fn recover_invalidation(&mut self, ppn: Ppn) {
        let (key, bit) = self.key_of(ppn);
        let sub = self.cfg.sub_bits(&self.geo);
        let entry = self
            .buffer
            .entry(key)
            .or_insert_with(|| GeckoEntry::blank(key, sub));
        entry.bitmap.set(bit);
    }
}

/// A [`ValidityStore`] façade over [`LogGecko`], the store GeckoFTL uses.
impl ValidityStore for LogGecko {
    fn mark_invalid(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppn: Ppn) {
        LogGecko::mark_invalid(self, dev, sink, ppn);
    }

    fn mark_invalid_batch(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppns: &[Ppn]) {
        // Insert the whole batch before checking the flush threshold so the
        // batch never straddles a flush generation (see the trait docs).
        let sub = self.cfg.sub_bits(&self.geo);
        for &ppn in ppns {
            let (key, bit) = self.key_of(ppn);
            let entry = self
                .buffer
                .entry(key)
                .or_insert_with(|| GeckoEntry::blank(key, sub));
            entry.bitmap.set(bit);
            self.stats.buffer_inserts += 1;
        }
        self.maybe_flush(dev, sink);
    }

    fn note_erase(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, block: BlockId) {
        LogGecko::note_erase(self, dev, sink, block);
    }

    fn gc_query(
        &mut self,
        dev: &mut FlashDevice,
        _sink: &mut dyn MetaSink,
        block: BlockId,
    ) -> Bitmap {
        LogGecko::gc_query(self, dev, block)
    }

    fn gc_query_batch(
        &mut self,
        dev: &mut FlashDevice,
        _sink: &mut dyn MetaSink,
        blocks: &[BlockId],
    ) -> Vec<Bitmap> {
        LogGecko::gc_query_batch(self, dev, blocks)
    }

    fn ram_bytes(&self) -> u64 {
        LogGecko::ram_bytes(self)
    }

    fn name(&self) -> &'static str {
        "logarithmic-gecko"
    }

    fn flush(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        LogGecko::flush(self, dev, sink);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validity::FlatMetaSink;
    use std::collections::HashMap;

    /// Reference model: an exact RAM-resident validity map.
    #[derive(Default)]
    struct Model {
        invalid: HashMap<BlockId, Vec<bool>>,
    }

    impl Model {
        fn mark_invalid(&mut self, geo: &Geometry, ppn: Ppn) {
            let b = geo.block_of(ppn);
            let off = geo.offset_of(ppn).0 as usize;
            self.invalid
                .entry(b)
                .or_insert_with(|| vec![false; geo.pages_per_block as usize])[off] = true;
        }

        fn note_erase(&mut self, geo: &Geometry, block: BlockId) {
            self.invalid
                .insert(block, vec![false; geo.pages_per_block as usize]);
        }

        fn query(&self, geo: &Geometry, block: BlockId) -> Vec<bool> {
            self.invalid
                .get(&block)
                .cloned()
                .unwrap_or_else(|| vec![false; geo.pages_per_block as usize])
        }
    }

    fn harness(cfg: GeckoConfig) -> (FlashDevice, FlatMetaSink, LogGecko, Geometry) {
        let geo = Geometry::tiny();
        let dev = FlashDevice::new(geo);
        // Plenty of metadata blocks for runs.
        let sink = FlatMetaSink::new((32..64).map(BlockId).collect());
        let gecko = LogGecko::new(geo, cfg);
        (dev, sink, gecko, geo)
    }

    fn paper_cfg() -> GeckoConfig {
        GeckoConfig::paper_default(&Geometry::tiny())
    }

    /// Tiny pages so flushes/merges happen quickly in tests.
    fn small_page_cfg(t: u32, s: u32) -> GeckoConfig {
        GeckoConfig {
            size_ratio: t,
            partitions: s,
            multiway_merge: true,
            key_bytes: 4,
            // Leave room for ~6 entries per page: shrink the usable space
            // via a huge header so flushes/merges happen at test scale.
            page_header_bytes: 4096 - 40,
            ..GeckoConfig::default()
        }
    }

    fn check_equiv(
        gecko: &mut LogGecko,
        model: &Model,
        dev: &mut FlashDevice,
        geo: &Geometry,
        block: BlockId,
    ) {
        let got = gecko.gc_query(dev, block);
        let want = model.query(geo, block);
        for (i, w) in want.iter().enumerate() {
            assert_eq!(
                got.get(i as u32),
                *w,
                "bit {i} of {block:?} diverges from the reference model"
            );
        }
    }

    #[test]
    fn buffer_absorbs_repeated_updates_without_io() {
        // With the paper tuning on a tiny device, all 32 block keys fit in
        // the buffer: no flash IO at all, ever (pure RAM coalescing).
        let (mut dev, mut sink, mut gecko, geo) = harness(paper_cfg());
        for p in 0..geo.total_pages() as u32 / 2 {
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(p));
        }
        assert_eq!(gecko.stats.flushes, 0);
        assert_eq!(dev.stats().counts(IoPurpose::ValidityUpdate).page_writes, 0);
    }

    #[test]
    fn updates_and_queries_match_reference_model() {
        let (mut dev, mut sink, mut gecko, geo) = harness(small_page_cfg(2, 1));
        let mut model = Model::default();
        // Invalidate a deterministic pseudo-random page sequence.
        let mut x: u64 = 42;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (32 * geo.pages_per_block as u64); // user area only
            let ppn = Ppn(page as u32);
            gecko.mark_invalid(&mut dev, &mut sink, ppn);
            model.mark_invalid(&geo, ppn);
        }
        for b in 0..32 {
            check_equiv(&mut gecko, &model, &mut dev, &geo, BlockId(b));
        }
        assert!(gecko.stats.flushes > 0, "workload must have flushed");
    }

    #[test]
    fn erase_markers_supersede_older_bits() {
        for multiway in [false, true] {
            let mut cfg = small_page_cfg(2, 1);
            cfg.multiway_merge = multiway;
            let (mut dev, mut sink, mut gecko, geo) = harness(cfg);
            let mut model = Model::default();
            let mut x: u64 = 7;
            for i in 0..3000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let choice = x >> 60;
                if choice < 3 && i % 7 == 3 {
                    let b = BlockId(((x >> 20) % 32) as u32);
                    gecko.note_erase(&mut dev, &mut sink, b);
                    model.note_erase(&geo, b);
                } else {
                    let page = (x >> 33) % (32 * geo.pages_per_block as u64);
                    let ppn = Ppn(page as u32);
                    gecko.mark_invalid(&mut dev, &mut sink, ppn);
                    model.mark_invalid(&geo, ppn);
                }
            }
            for b in 0..32 {
                check_equiv(&mut gecko, &model, &mut dev, &geo, BlockId(b));
            }
            assert!(gecko.stats.merges > 0, "workload must have merged");
        }
    }

    #[test]
    fn partitioned_entries_match_reference_model() {
        for s in [1u32, 2, 4, 8] {
            let cfg = GeckoConfig {
                partitions: s,
                ..small_page_cfg(2, s)
            };
            let (mut dev, mut sink, mut gecko, geo) = harness(cfg);
            let mut model = Model::default();
            let mut x: u64 = 1234 + s as u64;
            for _ in 0..1500 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if x >> 62 == 0 {
                    let b = BlockId(((x >> 20) % 32) as u32);
                    gecko.note_erase(&mut dev, &mut sink, b);
                    model.note_erase(&geo, b);
                } else {
                    let page = (x >> 33) % (32 * geo.pages_per_block as u64);
                    gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
                    model.mark_invalid(&geo, Ppn(page as u32));
                }
            }
            for b in 0..32 {
                check_equiv(&mut gecko, &model, &mut dev, &geo, BlockId(b));
            }
        }
    }

    #[test]
    fn at_most_one_settled_run_per_level() {
        let cfg = GeckoConfig {
            sync_merge: true,
            ..small_page_cfg(2, 1)
        };
        let (mut dev, mut sink, mut gecko, geo) = harness(cfg);
        let mut x: u64 = 99;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (32 * geo.pages_per_block as u64);
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
            // After each operation (merges run synchronously), each level
            // holds at most one run.
            for (lvl, runs) in gecko.levels.iter().enumerate() {
                assert!(runs.len() <= 1, "level {lvl} holds {} runs", runs.len());
            }
        }
    }

    #[test]
    fn incremental_mode_settles_to_one_run_per_level() {
        // Same invariant as above, but under the incremental scheduler the
        // structure is only settled once pending jobs drain; mid-flight a
        // level legally holds the (still queryable) merge participants.
        let (mut dev, mut sink, mut gecko, geo) = harness(small_page_cfg(2, 1));
        assert!(!gecko.config().sync_merge, "incremental is the default");
        let mut x: u64 = 99;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (32 * geo.pages_per_block as u64);
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
            // Pump at an arbitrary cadence, as an engine would.
            if i % 3 == 0 {
                gecko.pump_merges(&mut dev, &mut sink, 2);
            }
        }
        gecko.drain_merges(&mut dev, &mut sink);
        assert_eq!(gecko.merge_jobs_pending(), 0);
        assert_eq!(gecko.merge_backlog_pages(), 0);
        for (lvl, runs) in gecko.levels.iter().enumerate() {
            assert!(runs.len() <= 1, "level {lvl} holds {} runs", runs.len());
        }
        assert!(
            gecko.stats.merge_pages_stepped > 0,
            "merge IO must flow through the scheduler"
        );
    }

    #[test]
    fn level_placement_follows_size_rule() {
        let (mut dev, mut sink, mut gecko, geo) = harness(small_page_cfg(2, 1));
        let mut x: u64 = 5;
        for _ in 0..4000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (32 * geo.pages_per_block as u64);
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
        }
        for run in gecko.runs_newest_first() {
            let by_size = gecko.cfg.level_for(run.num_pages());
            assert!(
                run.meta.level >= by_size,
                "run {:?} at level {} but sized for {}",
                run.meta.id,
                run.meta.level,
                by_size
            );
        }
    }

    #[test]
    fn space_amplification_is_bounded() {
        let (mut dev, mut sink, mut gecko, geo) = harness(small_page_cfg(2, 1));
        let mut x: u64 = 17;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (32 * geo.pages_per_block as u64);
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
        }
        // Settle pending merge jobs, then check the bound: at most 32
        // blocks × S sub-entries of live information; total run entries may
        // double that (§3.2: space-amplification ≤ ≈2), plus the transient
        // level-0/1 runs.
        gecko.drain_merges(&mut dev, &mut sink);
        let max_live = 32 * gecko.cfg.partitions as u64;
        assert!(
            gecko.total_run_entries() <= 3 * max_live,
            "entries = {}, live keys ≤ {max_live}",
            gecko.total_run_entries()
        );
    }

    #[test]
    fn query_reads_at_most_one_page_per_run() {
        let (mut dev, mut sink, mut gecko, geo) = harness(small_page_cfg(2, 1));
        let mut x: u64 = 3;
        for _ in 0..3000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (32 * geo.pages_per_block as u64);
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
        }
        let runs = gecko.runs_newest_first().count() as u64;
        let before = dev.stats().counts(IoPurpose::ValidityQuery).page_reads;
        gecko.gc_query(&mut dev, BlockId(9));
        let reads = dev.stats().counts(IoPurpose::ValidityQuery).page_reads - before;
        assert!(reads <= runs, "query read {reads} pages across {runs} runs");
    }

    #[test]
    fn recovered_runs_answer_queries_identically() {
        let (mut dev, mut sink, mut gecko, geo) = harness(small_page_cfg(2, 1));
        let mut model = Model::default();
        let mut x: u64 = 77;
        for _ in 0..2500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = (x >> 33) % (32 * geo.pages_per_block as u64);
            gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
            model.mark_invalid(&geo, Ppn(page as u32));
        }
        gecko.flush(&mut dev, &mut sink); // persist the tail
        let runs: Vec<Run> = gecko.runs_newest_first().cloned().collect();
        let cfg = gecko.config();
        drop(gecko);
        let mut recovered = LogGecko::from_recovered(geo, cfg, runs);
        for b in 0..32 {
            check_equiv(&mut recovered, &model, &mut dev, &geo, BlockId(b));
        }
    }

    #[test]
    fn scan_all_bitmaps_agrees_with_queries() {
        let (mut dev, mut sink, mut gecko, geo) = harness(small_page_cfg(2, 1));
        let mut x: u64 = 21;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x >> 62 == 0 {
                gecko.note_erase(&mut dev, &mut sink, BlockId(((x >> 20) % 32) as u32));
            } else {
                let page = (x >> 33) % (32 * geo.pages_per_block as u64);
                gecko.mark_invalid(&mut dev, &mut sink, Ppn(page as u32));
            }
        }
        let maps = gecko.scan_all_bitmaps(&mut dev, IoPurpose::Recovery);
        for b in 0..32 {
            let q = gecko.gc_query(&mut dev, BlockId(b));
            let scanned = maps.get(&BlockId(b));
            for i in 0..geo.pages_per_block {
                let s = scanned.is_some_and(|m| m.get(i));
                assert_eq!(q.get(i), s, "scan vs query mismatch at {b}:{i}");
            }
        }
    }
}
