//! Operation-stream generators.

use flash_sim::Lpn;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One application-level operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadOp {
    /// Update a logical page.
    Write(Lpn),
    /// Read a logical page.
    Read(Lpn),
    /// TRIM/discard a logical page: the host declares its contents dead.
    /// The FTL unmaps it and invalidates the physical copy, so GC can
    /// reclaim the space without migrating it.
    Trim(Lpn),
    /// A gap of `n` idle ticks: quiet time the host gives the device, which
    /// the FTL may spend on background maintenance (incremental merge
    /// slices). Generators never emit it; traces carry it so recorded
    /// burst/idle shapes replay bit-identically.
    Idle(u32),
}

/// Uniformly random page updates over the logical space — the paper's
/// default (adversarial for Logarithmic Gecko's buffer, fair to PVB).
#[derive(Clone, Debug)]
pub struct Uniform {
    rng: StdRng,
    logical_pages: u32,
}

impl Uniform {
    /// A generator over `logical_pages` addresses.
    pub fn new(seed: u64, logical_pages: u64) -> Self {
        Uniform {
            rng: StdRng::seed_from_u64(seed),
            logical_pages: logical_pages as u32,
        }
    }
}

impl Iterator for Uniform {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        Some(WorkloadOp::Write(Lpn(self
            .rng
            .gen_range(0..self.logical_pages))))
    }
}

/// Sequential updates wrapping around the logical space.
#[derive(Clone, Debug)]
pub struct Sequential {
    next: u32,
    logical_pages: u32,
}

impl Sequential {
    /// A generator starting at LPN 0.
    pub fn new(logical_pages: u64) -> Self {
        Sequential {
            next: 0,
            logical_pages: logical_pages as u32,
        }
    }
}

impl Iterator for Sequential {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        let lpn = self.next;
        self.next = (self.next + 1) % self.logical_pages;
        Some(WorkloadOp::Write(Lpn(lpn)))
    }
}

/// Zipfian-skewed updates (hot pages get most of the traffic). Uses the
/// rejection-inversion sampler of Hörmann & Derflinger via closed-form
/// approximation adequate for workload generation.
#[derive(Clone, Debug)]
pub struct Zipfian {
    rng: StdRng,
    logical_pages: u32,
    /// Skew parameter θ (0 = uniform; typical 0.99).
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// A zipf(θ) generator over `logical_pages` addresses.
    pub fn new(seed: u64, logical_pages: u64, theta: f64) -> Self {
        assert!(theta > 0.0 && theta < 1.0, "theta in (0,1)");
        let n = logical_pages as f64;
        let zeta = |n: f64, theta: f64| {
            // Truncated harmonic approximation; exact enough for generation.
            let mut sum = 0.0;
            let terms = (n as usize).min(10_000);
            for i in 1..=terms {
                sum += 1.0 / (i as f64).powf(theta);
            }
            if (n as usize) > terms {
                // Integral tail.
                sum += ((n).powf(1.0 - theta) - (terms as f64).powf(1.0 - theta)) / (1.0 - theta);
            }
            sum
        };
        let zeta_n = zeta(n, theta);
        let zeta_2 = zeta(2.0, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        Zipfian {
            rng: StdRng::seed_from_u64(seed),
            logical_pages: logical_pages as u32,
            theta,
            zeta_n,
            alpha,
            eta,
        }
    }

    fn sample(&mut self) -> u32 {
        // Gray et al.'s method (as used in YCSB).
        let u: f64 = self.rng.gen();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let n = self.logical_pages as f64;
        ((n * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u32).min(self.logical_pages - 1)
    }
}

impl Iterator for Zipfian {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        Some(WorkloadOp::Write(Lpn(self.sample())))
    }
}

/// Hot/cold traffic: a fraction `hot_fraction` of the address space receives
/// `hot_traffic` of the updates (e.g. 20 % of pages get 80 % of writes).
#[derive(Clone, Debug)]
pub struct HotCold {
    rng: StdRng,
    logical_pages: u32,
    hot_pages: u32,
    hot_traffic: f64,
}

impl HotCold {
    /// A hot/cold generator.
    pub fn new(seed: u64, logical_pages: u64, hot_fraction: f64, hot_traffic: f64) -> Self {
        assert!((0.0..=1.0).contains(&hot_fraction) && (0.0..=1.0).contains(&hot_traffic));
        HotCold {
            rng: StdRng::seed_from_u64(seed),
            logical_pages: logical_pages as u32,
            hot_pages: ((logical_pages as f64 * hot_fraction) as u32).max(1),
            hot_traffic,
        }
    }
}

impl Iterator for HotCold {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        let lpn = if self.rng.gen_bool(self.hot_traffic) {
            self.rng.gen_range(0..self.hot_pages)
        } else {
            self.rng
                .gen_range(self.hot_pages..self.logical_pages.max(self.hot_pages + 1))
        };
        Some(WorkloadOp::Write(Lpn(lpn)))
    }
}

/// Wrap a write-only generator into a read/write mix with the given read
/// ratio (`RW` in the paper's slowdown formula).
#[derive(Clone, Debug)]
pub struct Mixed<G> {
    inner: G,
    rng: StdRng,
    read_ratio: f64,
    logical_pages: u32,
}

impl<G> Mixed<G> {
    /// Mix reads (uniform over the space) into `inner`'s writes.
    pub fn new(seed: u64, inner: G, read_ratio: f64, logical_pages: u64) -> Self {
        assert!((0.0..1.0).contains(&read_ratio));
        Mixed {
            inner,
            rng: StdRng::seed_from_u64(seed),
            read_ratio,
            logical_pages: logical_pages as u32,
        }
    }
}

impl<G: Iterator<Item = WorkloadOp>> Iterator for Mixed<G> {
    type Item = WorkloadOp;

    fn next(&mut self) -> Option<WorkloadOp> {
        if self.rng.gen_bool(self.read_ratio) {
            Some(WorkloadOp::Read(Lpn(self
                .rng
                .gen_range(0..self.logical_pages))))
        } else {
            self.inner.next()
        }
    }
}

/// Sanity helper: a distribution over LPNs as a boxed trait object, for
/// sweep code that picks generators at runtime.
pub fn _assert_traits() {
    fn is_send<T: Send>() {}
    is_send::<Uniform>();
    is_send::<Zipfian>();
    let _ = rand::distributions::Uniform::new(0u32, 4).sample(&mut StdRng::seed_from_u64(0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn writes(g: impl Iterator<Item = WorkloadOp>, n: usize) -> Vec<u32> {
        g.take(n)
            .map(|op| match op {
                WorkloadOp::Write(l) => l.0,
                WorkloadOp::Read(l) => l.0,
                WorkloadOp::Trim(l) => l.0,
                WorkloadOp::Idle(_) => unreachable!("generators do not emit idle gaps"),
            })
            .collect()
    }

    #[test]
    fn uniform_covers_space_roughly_evenly() {
        let vs = writes(Uniform::new(1, 100), 10_000);
        let mut counts = HashMap::new();
        for v in vs {
            assert!(v < 100);
            *counts.entry(v).or_insert(0u32) += 1;
        }
        assert!(counts.len() > 95, "uniform should touch almost every page");
        let max = counts.values().max().unwrap();
        let min = counts.values().min().unwrap();
        assert!(max < &(min * 4), "uniform spread too skewed: {min}..{max}");
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        assert_eq!(
            writes(Uniform::new(7, 50), 100),
            writes(Uniform::new(7, 50), 100)
        );
        assert_ne!(
            writes(Uniform::new(7, 50), 100),
            writes(Uniform::new(8, 50), 100)
        );
    }

    #[test]
    fn sequential_wraps() {
        let vs = writes(Sequential::new(4), 9);
        assert_eq!(vs, vec![0, 1, 2, 3, 0, 1, 2, 3, 0]);
    }

    #[test]
    fn zipfian_is_skewed() {
        let vs = writes(Zipfian::new(3, 1000, 0.99), 20_000);
        let mut counts = HashMap::new();
        for v in vs {
            assert!(v < 1000);
            *counts.entry(v).or_insert(0u64) += 1;
        }
        // The most popular item should take a large share.
        let top = counts.values().max().unwrap();
        assert!(*top > 1000, "zipf top item only got {top} of 20k");
    }

    #[test]
    fn hot_cold_split() {
        let g = HotCold::new(5, 1000, 0.2, 0.8);
        let vs = writes(g, 20_000);
        let hot = vs.iter().filter(|v| **v < 200).count() as f64 / 20_000.0;
        assert!((0.75..0.85).contains(&hot), "hot share = {hot}");
    }

    #[test]
    fn mixed_interleaves_reads() {
        let g = Mixed::new(9, Sequential::new(100), 0.5, 100);
        let ops: Vec<WorkloadOp> = g.take(1000).collect();
        let reads = ops
            .iter()
            .filter(|o| matches!(o, WorkloadOp::Read(_)))
            .count();
        assert!((350..650).contains(&reads), "read count = {reads}");
    }
}
