//! Garbage collection (paper §4, §4.2): victim selection, live-page
//! migration with UIP identification (§4.1), and the metadata-aware policy.

use super::block_manager::BlockGroup;
use super::{FtlEngine, GcPolicy};
use crate::cache::CacheEntry;
use flash_sim::{BlockId, IoPurpose, PageData, PageOffset, Ppn, SpanKind, SpareInfo};

/// How many extra valid pages a planned (prefetched) burst victim may carry
/// over the current greedy-best block before the plan is declared stale and
/// dropped. See the re-validation in [`FtlEngine::collect_once`].
const GC_PLAN_VALID_MARGIN: u32 = 4;

fn paranoid() -> bool {
    // Read the environment once: this guard sits inside per-page GC loops.
    static PARANOID: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *PARANOID.get_or_init(|| std::env::var("GECKO_PARANOID").is_ok())
}

impl FtlEngine {
    /// Ground truth for diagnostics: the newest physical copy of `lpn`.
    fn true_newest(&self, lpn: flash_sim::Lpn) -> Option<(flash_sim::Ppn, u64)> {
        let geo = self.geometry();
        let mut best: Option<(flash_sim::Ppn, u64)> = None;
        for b in geo.iter_blocks() {
            for (ppn, data) in self.dev.peek_block_pages(b) {
                if let Some((l, _)) = data.as_user() {
                    if l == lpn {
                        let seq = self.dev.peek_spare(ppn).expect("written").seq;
                        if best.is_none_or(|(_, s)| seq > s) {
                            best = Some((ppn, seq));
                        }
                    }
                }
            }
        }
        best
    }

    /// Paranoid diagnostic: a page the validity store reports invalid must
    /// never be the newest physical copy of its logical page. (This is the
    /// check that caught the recovered-flush-watermark bug: deferring merge
    /// output past new erases inflated recovery's step-4a window and lost
    /// buffered erase markers.)
    fn paranoid_check_invalid(&self, ppn: flash_sim::Ppn) {
        let Some(data) = self.dev.peek_page(ppn).cloned() else {
            return;
        };
        if let Some((l, _)) = data.as_user() {
            if self.true_newest(l).map(|(best, _)| best) == Some(ppn) {
                eprintln!(
                    "[PARANOID] GC treats NEWEST copy {ppn:?} of {l:?} as invalid; cache={:?}",
                    self.cache.lookup(l)
                );
            }
        }
    }

    /// Paranoid diagnostic: a block about to be erased as fully invalid
    /// must hold no newest copy of any logical page.
    fn paranoid_check_erasable(&self, victim: BlockId) {
        let pages: Vec<_> = self
            .dev
            .peek_block_pages(victim)
            .map(|(p, d)| (p, d.clone()))
            .collect();
        for (ppn, data) in pages {
            if let Some((l, _)) = data.as_user() {
                if self.true_newest(l).map(|(best, _)| best) == Some(ppn) {
                    eprintln!(
                        "[PARANOID] erasing 0-valid {victim:?} but {ppn:?} is the NEWEST \
                         copy of {l:?}; cache={:?}",
                        self.cache.lookup(l)
                    );
                }
            }
        }
    }
}

impl FtlEngine {
    /// Run garbage collection until the free pool is back above the
    /// threshold. Called at the top of every application write.
    ///
    /// When the burst will collect several victims, their validity bitmaps
    /// are prefetched up front through one batched query
    /// ([`crate::validity::ValidityStore::gc_query_batch`]) that sorts the
    /// victims' keys and coalesces probes landing on the same flash page —
    /// one pass over the store instead of a per-victim round trip.
    pub(crate) fn maybe_gc(&mut self) {
        if self.bm.free_blocks() >= self.cfg.gc_free_threshold {
            return;
        }
        let t0 = self.dev.clock().now_us();
        while self.bm.free_blocks() < self.cfg.gc_free_threshold {
            self.plan_gc_burst();
            if self.collect_once() {
                // Long GC bursts tick the checkpoint clock (migrations are
                // user-page writes); honor the period between victims so
                // the recovery-scan bound stays ≈2·C + O(B) pages.
                self.maybe_checkpoint();
                // A burst's erase markers flood the Gecko buffer and can
                // trip several flushes within one application write; pump a
                // merge slice between victims so that work drains
                // incrementally instead of piling into forced stalls.
                self.pump_merge_slice();
                continue;
            }
            // No victim found: all invalid pages may be unidentified (UIP).
            // Force identification by syncing everything, then retry once.
            // Prefetched bitmaps stay sound (syncs land in gc_invalidated),
            // but the victim ranking has shifted wholesale: drop them.
            self.gc_prefetch.clear();
            self.gc_plan.clear();
            self.sync_all_dirty();
            assert!(
                self.collect_once(),
                "device full: no reclaimable block even after full synchronization"
            );
        }
        self.gc_prefetch.clear();
        self.gc_plan.clear();
        // Charge the whole burst to the op that triggered it, for the
        // per-tenant GC-debt accounting (observation only).
        let spent = self.dev.clock().now_us() - t0;
        self.note_gc_time(spent);
    }

    /// Plan the next GC burst ahead of need (victim ranking + bitmap
    /// prefetch), without collecting anything. Background maintenance hook
    /// for [`super::concurrent::ConcurrentFtl`]'s worker: the prefetch IO
    /// moves off the host write that would otherwise trigger it. No-op if
    /// a plan is already staged or the free pool is healthy.
    pub fn prepare_gc(&mut self) {
        self.plan_gc_burst();
    }

    /// Rank this burst's likely victims into `gc_plan`, and — on the
    /// fast-path Gecko backend — batch-query their validity bitmaps.
    ///
    /// The plan is built for **every** Gecko backend, fast path and
    /// linear-scan baseline alike. Victim selection must not depend on the
    /// query implementation under ablation: the clustered ranking breaks
    /// greedy's ties differently than per-collection [`BlockManager::pick_victim`],
    /// so planning only on the fast path made the A/B variants collect
    /// different victim sequences — and, eventually, different GC
    /// operation *counts* — from identical workloads. Only the batched
    /// prefetch is a fast-path optimization: for every other store
    /// `gc_query_batch` degrades to a per-victim loop, so prefetching
    /// could only *add* wasted reads for victims that are never collected.
    ///
    /// Soundness of the prefetch: a prefetched bitmap is a snapshot at
    /// batch-query time. Pages it reports invalid can never become valid
    /// again before the victim is erased (victims are full, non-active
    /// blocks), and pages invalidated *after* the snapshot — by syncs that
    /// collections of earlier victims trigger — are tracked in
    /// `gc_invalidated`, which [`FtlEngine::collect_user_block`] consults
    /// per page. Both the prefetched bitmap and the block's
    /// `gc_invalidated` entries are dropped the moment the block is
    /// erased, so a block that is later reallocated and refilled can never
    /// be judged by stale state.
    fn plan_gc_burst(&mut self) {
        if !self.gc_plan.is_empty() || !self.gc_prefetch.is_empty() {
            return;
        }
        let Some(cfg) = self.backend.gecko_config() else {
            return; // non-Gecko stores keep plain greedy order
        };
        let fast_path = cfg.fast_path;
        let deficit = self
            .cfg
            .gc_free_threshold
            .saturating_sub(self.bm.free_blocks());
        if deficit < 2 {
            return; // a single collection gains nothing from planning
        }
        let victims = self
            .bm
            .pick_victims(&self.dev, deficit.min(8), |g| g == BlockGroup::User);
        if victims.len() < 2 {
            return;
        }
        self.gc_plan = victims.iter().copied().collect();
        if fast_path {
            self.gc_invalidated.clear();
            let bitmaps =
                self.backend
                    .store()
                    .gc_query_batch(&mut self.dev, &mut self.bm, &victims);
            self.gc_prefetch = victims.into_iter().zip(bitmaps).collect();
        }
    }

    /// Pick and collect one victim block. Returns false if no block has any
    /// reclaimable (known-invalid) page.
    pub(crate) fn collect_once(&mut self) -> bool {
        let policy = self.cfg.gc_policy;
        let collectable_meta = self.backend.store_ref().collectable_meta();
        // A fully-invalid block needs no migration, so it is a legal victim
        // for every policy and every group (greedy picks it first anyway —
        // its valid count is 0).
        if let Some(victim) = self.bm.pick_victim(&self.dev, |_| true) {
            if self.bm.valid_pages(victim) == 0 {
                let t0 = self.dev.clock().now_us();
                if paranoid() {
                    self.paranoid_check_erasable(victim);
                }
                self.counters.gc_operations += 1;
                self.gc_victim_log.push(victim);
                // A planned victim may drain to 0-valid before its turn:
                // it is consumed here, so drop it from the plan too (not
                // just the prefetch map), or the burst's remaining plan
                // order silently skips one slot.
                self.gc_prefetch.remove(&victim);
                self.gc_plan.retain(|b| *b != victim);
                let is_user = self.bm.group_of(victim) == Some(BlockGroup::User);
                if is_user {
                    // Erase markers still need to supersede older validity
                    // info about the block.
                    self.backend
                        .store()
                        .note_erase(&mut self.dev, &mut self.bm, victim);
                }
                if !self
                    .bm
                    .erase_and_free(&mut self.dev, victim, IoPurpose::GcMigrateUser)
                    && is_user
                {
                    self.report_retired_block_stale(victim);
                }
                self.forget_invalidated_in(victim);
                let now = self.dev.clock().now_us();
                self.dev
                    .telemetry_mut()
                    .record_span(SpanKind::GcCollect, victim.0, t0, now);
                return true;
            }
        }
        // Prefer the prefetched burst's planned order: within the plan the
        // victims' valid counts were tied or near-tied when ranked, so
        // collecting in clustered-id order guarantees every prefetched
        // bitmap is consumed rather than re-queried cold, at worst a
        // bounded migration-cost deviation from strict greedy (the plan
        // holds ≤ 8 near-tied entries, and a sealed block's valid count
        // only ever decreases, so a planned victim never gets *worse* —
        // only a non-planned block can become cheaper mid-burst). Entries are re-validated — state may have
        // shifted since the batch snapshot — and skipped if stale. Only the
        // metadata-aware policy follows the plan: its victims are User
        // blocks by definition, whereas GreedyAll must stay free to pick a
        // cheaper translation/metadata block (the plan is User-only, so
        // honoring it there would bias the greedy ablation).
        if policy == GcPolicy::MetadataAware {
            while let Some(planned) = self.gc_plan.pop_front() {
                if self
                    .bm
                    .is_victim_eligible(&self.dev, planned, |g| g == BlockGroup::User)
                {
                    // Margin guard: the plan was ranked from a snapshot, and
                    // invalidations since then can make a non-planned block
                    // strictly cheaper. A bounded deviation is the price of
                    // consuming the prefetched bitmaps, but if the planned
                    // victim now costs more than the current greedy choice
                    // by more than the margin, the snapshot is stale enough
                    // that following it would do real extra migration work:
                    // drop the whole plan and re-rank.
                    let best_valid = self
                        .bm
                        .pick_victim(&self.dev, |g| g == BlockGroup::User)
                        .map_or(u32::MAX, |b| self.bm.valid_pages(b));
                    if self.bm.valid_pages(planned)
                        > best_valid.saturating_add(GC_PLAN_VALID_MARGIN)
                    {
                        self.gc_plan.clear();
                        self.gc_prefetch.clear();
                        break;
                    }
                    self.counters.gc_operations += 1;
                    self.gc_victim_log.push(planned);
                    self.collect_user_block(planned);
                    return true;
                }
                // Ineligible (e.g. erased as 0-valid earlier in the burst):
                // drop its bitmap so plan and prefetch stay in lockstep.
                self.gc_prefetch.remove(&planned);
            }
        }
        let victim = self.bm.pick_victim(&self.dev, |group| match policy {
            GcPolicy::MetadataAware => group == BlockGroup::User,
            GcPolicy::GreedyAll => match group {
                BlockGroup::User | BlockGroup::Translation => true,
                BlockGroup::Meta(kind) => Some(kind) == collectable_meta,
            },
        });
        let Some(victim) = victim else { return false };
        self.counters.gc_operations += 1;
        self.gc_victim_log.push(victim);
        match self.bm.group_of(victim).expect("victim is allocated") {
            BlockGroup::User => self.collect_user_block(victim),
            BlockGroup::Translation => self.collect_translation_block(victim),
            BlockGroup::Meta(_) => self.collect_meta_block(victim),
        }
        true
    }

    /// Collect a user-block victim: query the validity store, migrate live
    /// pages (skipping unidentified invalid pages via the §4.1 spare-check),
    /// report the erase, erase the block.
    pub(crate) fn collect_user_block(&mut self, victim: BlockId) {
        let t0 = self.dev.clock().now_us();
        self.collect_user_block_inner(victim);
        let now = self.dev.clock().now_us();
        self.dev
            .telemetry_mut()
            .record_span(SpanKind::GcCollect, victim.0, t0, now);
    }

    fn collect_user_block_inner(&mut self, victim: BlockId) {
        // Prefetched bitmap: snapshot taken at batch-query time, so
        // `gc_invalidated` (accumulating since then) must be kept. A cold
        // query re-snapshots here and may reset the set — but only when no
        // prefetched bitmap is still outstanding: those carry the *older*
        // batch snapshot and rely on every invalidation recorded since it.
        // (Keeping extra entries is always safe — a listed page is genuinely
        // invalid — so the cold victim is unaffected either way.)
        let invalid = match self.gc_prefetch.remove(&victim) {
            Some(bitmap) => bitmap,
            None => {
                if self.gc_prefetch.is_empty() {
                    self.gc_invalidated.clear();
                }
                self.backend
                    .store()
                    .gc_query(&mut self.dev, &mut self.bm, victim)
            }
        };
        let written = self.dev.written_pages(victim);
        let geo = self.geometry();
        for off in 0..written {
            if invalid.get(off) {
                if paranoid() {
                    self.paranoid_check_invalid(geo.ppn(victim, flash_sim::PageOffset(off)));
                }
                continue;
            }
            let ppn = geo.ppn(victim, flash_sim::PageOffset(off));
            // A synchronization performed *during this collection* may have
            // invalidated pages after the query snapshot was taken.
            if self.gc_invalidated.contains(&ppn) {
                continue;
            }
            let spare = self
                .dev
                .read_spare(ppn, IoPurpose::GcMigrateUser)
                .expect("written page has a spare area");
            let SpareInfo::User { lpn, .. } = spare.info else {
                panic!(
                    "user block page {ppn:?} carries non-user spare {:?}",
                    spare.info
                )
            };
            // §4.1: "for every physical page Y in a victim block that
            // Logarithmic Gecko reports as valid, we read the spare area
            // ... if there is a cached mapping entry ... with the UIP flag
            // set to true and with a different physical address than Y,
            // then Y is a UIP and we do not migrate it."
            if let Some(e) = self.cache.lookup(lpn) {
                if e.ppn != ppn {
                    if paranoid() {
                        if let Some((best, _)) = self.true_newest(lpn) {
                            if best == ppn {
                                eprintln!("[PARANOID] GC SKIPPING the NEWEST copy {ppn:?} of {lpn:?} (cache says {:?} d={} u={} unc={})", e.ppn, e.dirty, e.uip, e.uncertain);
                            }
                        }
                    }
                    self.counters.gc_uip_skips += 1;
                    // The erase marker below supersedes this page, so its
                    // before-image is now identified: clear the UIP flag to
                    // prevent a later sync from re-reporting a page on the
                    // (about to be erased and possibly reused) block.
                    self.cache.update_entry(lpn, |e| e.uip = false);
                    continue;
                }
            }
            // Live page: migrate it. "Garbage-collection migrations are
            // treated like application writes; a dirty cached mapping entry
            // is created for every page that is migrated."
            if paranoid() {
                if let Some((best, bseq)) = self.true_newest(lpn) {
                    if best != ppn {
                        let sseq = self.dev.peek_spare(ppn).expect("w").seq;
                        eprintln!("[PARANOID] GC MIGRATING STALE copy {ppn:?} (seq {sseq}) of {lpn:?}; newest is {best:?} (seq {bseq}); cache={:?}", self.cache.lookup(lpn));
                    }
                }
            }
            let data = self
                .dev
                .read_page(ppn, IoPurpose::GcMigrateUser)
                .expect("live page readable");
            debug_assert!(matches!(data, PageData::User { .. }));
            let new_ppn = self.bm.append(
                &mut self.dev,
                BlockGroup::User,
                data,
                // No before-pointer: the old copy sits on the victim and
                // is superseded by the erase marker.
                SpareInfo::User { lpn, before: None },
                IoPurpose::GcMigrateUser,
            );
            self.counters.gc_migrations += 1;
            self.tick_checkpoint_clock();
            let epoch = self.current_epoch();
            if self.cache.lookup(lpn).is_some() {
                // Cached address necessarily equals the victim page here;
                // repoint it. The before-image (this page) is covered by the
                // erase marker, so no mark-invalid call is needed.
                self.cache.update_entry(lpn, |e| {
                    e.ppn = new_ppn;
                    e.dirty = true;
                    e.written_epoch = epoch;
                });
            } else {
                self.make_room();
                self.cache.insert(CacheEntry {
                    lpn,
                    ppn: new_ppn,
                    dirty: true,
                    uip: false, // before-image handled by the erase marker
                    uncertain: false,
                    written_epoch: epoch,
                });
            }
        }
        // Algorithm 2: one erase marker supersedes all older validity
        // information about this block.
        self.backend
            .store()
            .note_erase(&mut self.dev, &mut self.bm, victim);
        if !self
            .bm
            .erase_and_free(&mut self.dev, victim, IoPurpose::GcMigrateUser)
        {
            self.report_retired_block_stale(victim);
        }
        // `gc_invalidated` is NOT wholesale-cleared here: when the burst
        // runs on prefetched bitmaps, invalidations since the batch
        // snapshot must stay visible to the remaining victims. The set is
        // reset at the next snapshot point (cold query or batch prefetch);
        // only the erased block's own entries are dropped, below.
        self.forget_invalidated_in(victim);
    }

    /// A user block's erase failed and it was retired with its stale
    /// contents intact — but the erase marker just issued for it claims a
    /// clean block. Override the marker: report every written page invalid
    /// (the reports are newer than the marker, so they supersede it). The
    /// block never re-enters the free pool, so this is the final word on
    /// its validity.
    fn report_retired_block_stale(&mut self, block: BlockId) {
        let geo = self.dev.geometry();
        let written = self.dev.written_pages(block);
        let ppns: Vec<Ppn> = (0..written)
            .map(|off| geo.ppn(block, PageOffset(off)))
            .collect();
        self.backend
            .store()
            .mark_invalid_batch(&mut self.dev, &mut self.bm, &ppns);
    }

    /// Drop `gc_invalidated` entries pointing into a just-erased block.
    /// Mandatory whenever a user block is erased while the set may outlive
    /// the erase (prefetched-burst mode): if the block is reallocated and
    /// refilled within the same burst, a stale entry at a reused physical
    /// address would make a later collection skip a *live* page.
    fn forget_invalidated_in(&mut self, block: BlockId) {
        if self.gc_invalidated.is_empty() {
            return;
        }
        let geo = self.geometry();
        self.gc_invalidated.retain(|p| geo.block_of(*p) != block);
    }

    /// Collect a translation-block victim (baseline FTLs' greedy policy):
    /// migrate the translation pages that the GMD still points into this
    /// block, then erase it.
    fn collect_translation_block(&mut self, victim: BlockId) {
        let t0 = self.dev.clock().now_us();
        let written = self.dev.written_pages(victim);
        let geo = self.geometry();
        for off in 0..written {
            let ppn = geo.ppn(victim, flash_sim::PageOffset(off));
            let spare = self
                .dev
                .read_spare(ppn, IoPurpose::TranslationGc)
                .expect("written page has a spare area");
            let SpareInfo::Translation { tpage } = spare.info else {
                panic!("translation block page {ppn:?} carries {:?}", spare.info)
            };
            if self.tt.tpage_location(tpage) == Some(ppn) {
                self.counters.gc_migrations += 1;
                self.tt.migrate_tpage(&mut self.dev, &mut self.bm, tpage);
            }
        }
        self.bm
            .erase_and_free(&mut self.dev, victim, IoPurpose::TranslationGc);
        let now = self.dev.clock().now_us();
        self.dev
            .telemetry_mut()
            .record_span(SpanKind::GcCollect, victim.0, t0, now);
    }

    /// Collect a metadata-block victim by delegating to the validity store
    /// (flash-resident PVB under the greedy policy), then erase it.
    fn collect_meta_block(&mut self, victim: BlockId) {
        let t0 = self.dev.clock().now_us();
        self.backend
            .store()
            .collect_meta_block(&mut self.dev, &mut self.bm, victim);
        self.bm
            .erase_and_free(&mut self.dev, victim, IoPurpose::ValidityGc);
        let now = self.dev.clock().now_us();
        self.dev
            .telemetry_mut()
            .record_span(SpanKind::GcCollect, victim.0, t0, now);
    }

    pub(crate) fn current_epoch(&self) -> u64 {
        self.epoch
    }
}
