//! Property tests of the incremental merge scheduler: at every step budget
//! (including 1, and including never pumping at all) it must produce
//! **logically identical** Logarithmic Gecko state to synchronous merging —
//! every GC query answers the same bits, mid-stream and settled — and the
//! drained structure must satisfy the settled-shape invariants (≤ 1 run per
//! level, bounded space). Byte-identical *physical* state across cadences
//! stopped being the contract when merge planning was allowed to proceed
//! with jobs still in flight (plan-time run-id reservation + span-contiguous
//! plans): the merge tree now legitimately depends on pump cadence. Queries
//! must stay correct while a merge is in flight, and a crash mid-merge —
//! including mid-output-write, with orphan pages on flash — must recover
//! exactly.

use flash_sim::{BlockId, FlashDevice, Geometry, Lpn, Ppn};
use geckoftl_core::ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend};
use geckoftl_core::gecko::{GeckoConfig, LogGecko};
use geckoftl_core::recovery::gecko_recover;
use geckoftl_core::validity::FlatMetaSink;
use std::collections::HashMap;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// Small pages so flushes and multi-level merges happen at test scale.
fn small_page_cfg(size_ratio: u32, multiway: bool) -> GeckoConfig {
    GeckoConfig {
        size_ratio,
        multiway_merge: multiway,
        page_header_bytes: 4096 - 40, // ≈6 entries per page
        ..GeckoConfig::default()
    }
}

fn harness(cfg: GeckoConfig) -> (FlashDevice, FlatMetaSink, LogGecko) {
    let geo = Geometry::tiny();
    let dev = FlashDevice::new(geo);
    let sink = FlatMetaSink::new((32..64).map(BlockId).collect());
    let gecko = LogGecko::new(geo, cfg);
    (dev, sink, gecko)
}

/// Drive one pseudo-random update/erase stream into a Gecko instance,
/// pumping the incremental scheduler with `step_pages` after every
/// operation (0 = never pump; merges then settle only via flush drains).
fn drive(
    gecko: &mut LogGecko,
    dev: &mut FlashDevice,
    sink: &mut FlatMetaSink,
    seed: u64,
    ops: u64,
    step_pages: u64,
) {
    let geo = dev.geometry();
    let mut rng = Lcg(seed);
    for _ in 0..ops {
        let x = rng.next();
        if x.is_multiple_of(23) {
            gecko.note_erase(dev, sink, BlockId((x >> 8) as u32 % 32));
        } else {
            let page = (x >> 8) % (32 * geo.pages_per_block as u64);
            gecko.mark_invalid(dev, sink, Ppn(page as u32));
        }
        if step_pages > 0 {
            gecko.pump_merges(dev, sink, step_pages);
        }
    }
}

/// Assert two Gecko instances hold logically identical state: every GC
/// query over the user area answers the same bits, and the drained
/// structure satisfies the settled-shape invariants (≤ 1 run per level, no
/// queued work). Physical layout (run ids, directories, lineage) may
/// differ: the merge tree depends on pump cadence once planning proceeds
/// with jobs in flight.
fn assert_state_equivalent(
    a: &mut LogGecko,
    adev: &mut FlashDevice,
    b: &mut LogGecko,
    bdev: &mut FlashDevice,
    label: &str,
) {
    for blk in 0..32 {
        let want = a.gc_query(adev, BlockId(blk));
        let got = b.gc_query(bdev, BlockId(blk));
        for i in 0..16 {
            assert_eq!(want.get(i), got.get(i), "{label}: query bit {blk}:{i}");
        }
    }
    assert_eq!(a.buffer_len(), b.buffer_len(), "{label}: buffer");
    assert_eq!(b.merge_jobs_pending(), 0, "{label}: jobs must be drained");
    assert_eq!(
        b.merge_backlog_pages(),
        0,
        "{label}: backlog must be drained"
    );
    for (lvl, count) in b.runs_per_level().iter().enumerate() {
        assert!(
            *count <= 1,
            "{label}: level {lvl} holds {count} settled runs"
        );
    }
}

/// The equivalence property: for several step budgets (including the
/// minimal 1-page step), interleaving bounded merge slices with the update
/// stream answers every GC query exactly as synchronous merging does —
/// both mid-stream (merge in flight) and after quiescing — and the drained
/// structure settles to at most one run per level.
#[test]
fn incremental_merges_match_sync_logically() {
    for (size_ratio, multiway) in [(2, true), (2, false), (3, true)] {
        let sync_cfg = GeckoConfig {
            sync_merge: true,
            ..small_page_cfg(size_ratio, multiway)
        };
        let (mut sdev, mut ssink, mut sync) = harness(sync_cfg);
        // The sync reference is driven without pumping (nothing to pump).
        drive(&mut sync, &mut sdev, &mut ssink, 0xFEED, 3000, 0);
        sync.flush(&mut sdev, &mut ssink);

        for step_pages in [1u64, 2, 3, 7, 64] {
            let inc_cfg = GeckoConfig {
                sync_merge: false,
                ..small_page_cfg(size_ratio, multiway)
            };
            let (mut idev, mut isink, mut inc) = harness(inc_cfg);
            drive(&mut inc, &mut idev, &mut isink, 0xFEED, 3000, step_pages);
            // Mid-stream the structures may differ transiently (a merge may
            // be in flight) but every query must already agree.
            for b in 0..32 {
                let want = sync.gc_query(&mut sdev, BlockId(b));
                let got = inc.gc_query(&mut idev, BlockId(b));
                for i in 0..16 {
                    assert_eq!(
                        want.get(i),
                        got.get(i),
                        "T={size_ratio} mw={multiway} step={step_pages}: \
                         mid-stream query bit {b}:{i}"
                    );
                }
            }
            // Quiesce: the drained structure must be logically identical
            // and settled.
            inc.flush(&mut idev, &mut isink);
            inc.drain_merges(&mut idev, &mut isink);
            assert_state_equivalent(
                &mut sync,
                &mut sdev,
                &mut inc,
                &mut idev,
                &format!("T={size_ratio} mw={multiway} step={step_pages}"),
            );
        }
    }
}

/// Never pumping at all is the pathological cadence. Flushes no longer
/// force-drain pending jobs (plan-time run-id reservation makes pushes
/// sound with work in flight), so the only inline merging left is the
/// flush backpressure valve, which caps the debt a pump-less caller can
/// accumulate. State must still match sync logically, the valve must be
/// visible in the stats, and debt must stay bounded throughout.
#[test]
fn unpumped_scheduler_settles_via_flush_drains() {
    let (mut sdev, mut ssink, mut sync) = harness(GeckoConfig {
        sync_merge: true,
        ..small_page_cfg(2, true)
    });
    drive(&mut sync, &mut sdev, &mut ssink, 31, 4000, 0);
    sync.flush(&mut sdev, &mut ssink);

    let cfg = small_page_cfg(2, true);
    let (mut idev, mut isink, mut inc) = harness(cfg);
    let geo = idev.geometry();
    // The valve's debt ceiling: 16 slice budgets per channel.
    let ceiling = 16 * cfg.merge_step_pages as u64 * geo.channels as u64;
    let mut rng = Lcg(31);
    let mut max_backlog = 0u64;
    for _ in 0..4000 {
        let x = rng.next();
        if x.is_multiple_of(23) {
            inc.note_erase(&mut idev, &mut isink, BlockId((x >> 8) as u32 % 32));
        } else {
            let page = (x >> 8) % (32 * geo.pages_per_block as u64);
            inc.mark_invalid(&mut idev, &mut isink, Ppn(page as u32));
        }
        max_backlog = max_backlog.max(inc.merge_backlog_pages());
    }
    inc.flush(&mut idev, &mut isink);
    inc.drain_merges(&mut idev, &mut isink);
    assert_state_equivalent(&mut sync, &mut sdev, &mut inc, &mut idev, "unpumped");
    assert!(
        inc.stats.merge_stall_drains > 0,
        "a pump-less caller must hit the backpressure valve"
    );
    assert!(
        max_backlog <= ceiling,
        "merge debt must stay bounded without pumping \
         (peak {max_backlog}, ceiling {ceiling})"
    );
    assert_eq!(sync.stats.merge_stall_drains, 0, "sync never stalls");
}

fn incremental_engine(merge_step_pages: u32) -> FtlEngine {
    let geo = Geometry::tiny();
    let cfg = FtlConfig {
        cache_entries: 64,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko = LogGecko::new(
        geo,
        GeckoConfig {
            page_header_bytes: geo.page_bytes - 64,
            sync_merge: false,
            merge_step_pages,
            ..GeckoConfig::paper_default(&geo)
        },
    );
    FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko))
}

fn run_workload(engine: &mut FtlEngine, oracle: &mut HashMap<u32, u64>, rng: &mut Lcg, n: u64) {
    let logical = engine.geometry().logical_pages() as u32;
    for i in 0..n {
        let lpn = (rng.next() % logical as u64) as u32;
        let version = oracle.len() as u64 * 1_000_000 + i;
        engine.write(Lpn(lpn), version);
        oracle.insert(lpn, version);
    }
}

fn verify_all(engine: &mut FtlEngine, oracle: &HashMap<u32, u64>) {
    let logical = engine.geometry().logical_pages() as u32;
    for lpn in 0..logical {
        assert_eq!(
            engine.read(Lpn(lpn)),
            oracle.get(&lpn).copied(),
            "post-check for L{lpn}"
        );
    }
}

/// Crash while a merge is in flight — including specifically while the
/// output run is partially written, leaving orphan pages on flash — and
/// recover with GeckoRec. No data may be lost, the orphan pages must be
/// discarded (the inputs stay live), and operation must continue cleanly.
#[test]
fn crash_mid_merge_recovers_exactly() {
    let mut rng = Lcg(0xC0FFEE);
    let mut crashed_mid_write = 0u32;
    let mut crashed_mid_merge = 0u32;
    for round in 0..6u64 {
        let mut engine = incremental_engine(1); // 1-page steps: maximal exposure
        let mut oracle = HashMap::new();
        run_workload(&mut engine, &mut oracle, &mut rng, 1200 + 311 * round);
        // Keep writing until a merge is observably in flight, preferring a
        // partially written (unsealed) output run.
        for _ in 0..4000 {
            let g = engine.backend().gecko().expect("gecko backend");
            if g.unsealed_merge_pages() > 0 {
                crashed_mid_write += 1;
                break;
            }
            if g.merge_jobs_pending() > 0 && rng.next().is_multiple_of(7) {
                break;
            }
            run_workload(&mut engine, &mut oracle, &mut rng, 1);
        }
        if engine
            .backend()
            .gecko()
            .expect("gecko backend")
            .merge_jobs_pending()
            > 0
        {
            crashed_mid_merge += 1;
        }
        let cfg = engine.config();
        let gecko_cfg = engine.backend().gecko().expect("gecko backend").config();
        let dev = engine.crash();
        let (mut recovered, _) = gecko_recover(dev, cfg, gecko_cfg);
        verify_all(&mut recovered, &oracle);
        // Satellite: recovery's step-5 scan rebuilds per-run Bloom filters
        // (and entry counts) at no extra IO, so recovered runs serve
        // fast-path queries immediately.
        let g = recovered.backend().gecko().expect("gecko backend");
        for run in g.runs_newest_first() {
            assert!(run.filter.is_some(), "recovered run must carry a filter");
            assert!(run.entry_count > 0, "recovered entry count must be real");
        }
        // The recovered engine keeps operating (and merging) correctly.
        run_workload(&mut recovered, &mut oracle, &mut rng, 1500);
        verify_all(&mut recovered, &oracle);
    }
    assert!(
        crashed_mid_merge >= 2,
        "rounds must actually crash mid-merge (got {crashed_mid_merge})"
    );
    assert!(
        crashed_mid_write >= 1,
        "at least one crash must hit a partially written output run"
    );
}

/// Regression: skipping the flush-time drain is only sound because merge
/// outputs take their identity at *plan* time and recovery judges
/// supersession by span containment. A flush that lands while a merge is
/// in flight creates runs *after* the output's identity was reserved; the
/// naive drain-skip — identity minted when the output starts writing, and
/// recovery killing every candidate whose `created_seq` falls inside an
/// output's [oldest-input, output-creation] window — treats exactly those
/// flush runs as merged away and loses their validity reports. Hunt the
/// window (flush watermark advances while a job stays pending), let the
/// output seal and install, crash, and require recovery to reproduce the
/// installed run set exactly.
#[test]
fn flush_landing_mid_merge_survives_crash() {
    let mut rng = Lcg(0x5EED5);
    let mut windows_hit = 0u32;
    for round in 0..10u64 {
        let mut engine = incremental_engine(1);
        let mut oracle = HashMap::new();
        run_workload(&mut engine, &mut oracle, &mut rng, 1000 + 137 * round);
        // Hunt: a pending-job streak (never drained to zero) across which
        // the flush watermark advances — every job pending at that flush
        // was planned, and its output's identity reserved, beforehand.
        let mut streak_watermark = None;
        let mut overlapped = false;
        for _ in 0..8000 {
            let g = engine.backend().gecko().expect("gecko backend");
            if g.merge_jobs_pending() == 0 {
                streak_watermark = None;
            } else {
                let w = *streak_watermark.get_or_insert(g.last_flush_seq());
                if g.last_flush_seq() > w {
                    overlapped = true;
                    break;
                }
            }
            run_workload(&mut engine, &mut oracle, &mut rng, 1);
        }
        if !overlapped {
            continue;
        }
        // Let the overlapped output(s) seal and install, then stop at a
        // settled moment so the installed set is the whole story.
        for _ in 0..40000 {
            if engine
                .backend()
                .gecko()
                .expect("gecko backend")
                .merge_jobs_pending()
                == 0
            {
                break;
            }
            run_workload(&mut engine, &mut oracle, &mut rng, 1);
        }
        let g = engine.backend().gecko().expect("gecko backend");
        if g.merge_jobs_pending() > 0 {
            continue;
        }
        windows_hit += 1;
        let snapshot = |g: &LogGecko| {
            let mut v: Vec<_> = g
                .runs_newest_first()
                .map(|r| (r.meta.id, r.meta.level, r.meta.span(), r.pages.clone()))
                .collect();
            v.sort_by_key(|(id, ..)| *id);
            v
        };
        let before = snapshot(g);
        let watermark = g.last_flush_seq();
        let cfg = engine.config();
        let gecko_cfg = g.config();
        let (mut recovered, _) = gecko_recover(engine.crash(), cfg, gecko_cfg);
        let rg = recovered.backend().gecko().expect("gecko backend");
        let after = snapshot(rg);
        // Every installed run must survive — including flushes that landed
        // mid-merge, which the naive scheme would judge superseded.
        for run in &before {
            assert!(
                after.contains(run),
                "round {round}: recovery lost installed run {run:?}"
            );
        }
        // Recovery may additionally materialize level-0 runs when the
        // re-derived buffer overflows, but nothing older than the
        // crash-time flush watermark (that would be resurrected garbage).
        for (id, level, (since, _), _) in &after {
            if !before.iter().any(|(bid, ..)| bid == id) {
                assert_eq!(*level, 0, "round {round}: unexpected deep run {id:?}");
                assert!(
                    *since > watermark,
                    "round {round}: recovery resurrected stale run {id:?}"
                );
            }
        }
        verify_all(&mut recovered, &oracle);
        run_workload(&mut recovered, &mut oracle, &mut rng, 1500);
        verify_all(&mut recovered, &oracle);
    }
    assert!(
        windows_hit >= 3,
        "rounds must exercise the flush-lands-mid-merge window \
         (got {windows_hit})"
    );
}

/// Regression: the recovery flush-watermark bug. With incremental merging,
/// a merge output run is written *after* the flush that scheduled it — by
/// then, new erases and invalidations have entered the RAM buffer. If
/// recovery derived "time of last flush" from the output's `created_seq`
/// (as it did when merges were synchronous, where the two moments
/// coincide), its step-4a window would skip those buffered erase markers,
/// stale invalid bits from deeper runs would apply to the blocks' new
/// lives, and GC would erase live data. Crash deliberately at moments where
/// a pump-driven install has completed while the buffer holds fresh
/// reports, and verify every logical page survives.
#[test]
fn crash_after_deferred_install_keeps_buffered_reports() {
    let mut rng = Lcg(0xBADF00D);
    let mut crashes_at_risk = 0u32;
    for round in 0..8u64 {
        let mut engine = incremental_engine(1);
        let mut oracle = HashMap::new();
        run_workload(&mut engine, &mut oracle, &mut rng, 900 + 217 * round);
        // Hunt for the dangerous window: a merge output has been installed
        // (no job pending, so its preamble is the newest run metadata on
        // flash) *after* some user block was erased post-flush — that
        // erase's marker lives only in the RAM buffer, and only the
        // persisted flush watermark lets recovery re-create it.
        for _ in 0..5000 {
            let g = engine.backend().gecko().expect("gecko backend");
            let flush_seq = g.last_flush_seq();
            let newest_run_seq = g
                .runs_newest_first()
                .map(|r| r.meta.created_seq)
                .max()
                .unwrap_or(0);
            let erased_since_flush = engine.geometry().iter_blocks().any(|b| {
                let e = engine.device().erase_seq(b);
                e > flush_seq && e < newest_run_seq
            });
            if g.merge_jobs_pending() == 0 && newest_run_seq > flush_seq && erased_since_flush {
                crashes_at_risk += 1;
                break;
            }
            run_workload(&mut engine, &mut oracle, &mut rng, 1);
        }
        let cfg = engine.config();
        let gecko_cfg = engine.backend().gecko().expect("gecko backend").config();
        let (mut recovered, _) = gecko_recover(engine.crash(), cfg, gecko_cfg);
        verify_all(&mut recovered, &oracle);
        run_workload(&mut recovered, &mut oracle, &mut rng, 1200);
        verify_all(&mut recovered, &oracle);
    }
    assert!(
        crashes_at_risk >= 4,
        "rounds must hit the deferred-install-with-buffered-reports window \
         (got {crashes_at_risk})"
    );
}

/// Engine-level A/B: a full FTL on the incremental scheduler serves the
/// exact same data as one merging synchronously, under GC pressure, at
/// several step budgets. (Physical layout may differ — merge IO interleaves
/// differently with user writes — but every logical read must agree.)
#[test]
fn engine_equivalence_across_step_budgets() {
    let geo = Geometry::tiny();
    let build = |sync: bool, step: u32| {
        let cfg = FtlConfig {
            cache_entries: 64,
            gc_free_threshold: 8,
            gc_policy: GcPolicy::MetadataAware,
            recovery: RecoveryPolicy::CheckpointDeferred,
            checkpoint_period: None,
            qos_headroom_blocks: 0,
        };
        let gecko = LogGecko::new(
            geo,
            GeckoConfig {
                page_header_bytes: geo.page_bytes - 64,
                sync_merge: sync,
                merge_step_pages: step,
                ..GeckoConfig::paper_default(&geo)
            },
        );
        FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko))
    };
    for (sync, step) in [(true, 1), (false, 1), (false, 4), (false, 32)] {
        let mut engine = build(sync, step);
        let mut oracle = HashMap::new();
        let mut rng = Lcg(0xAB);
        run_workload(&mut engine, &mut oracle, &mut rng, 6000);
        assert!(engine.counters.gc_operations > 20, "GC must run");
        let gecko = engine.backend().gecko().expect("gecko backend");
        assert!(gecko.stats.merges > 0, "merges must run");
        if !sync {
            assert!(
                gecko.stats.merge_pages_stepped > 0,
                "incremental merges must flow through the scheduler"
            );
        }
        verify_all(&mut engine, &oracle);
        // Idle ticks drain the backlog without a flush.
        while engine.idle_tick() {}
        assert_eq!(
            engine
                .backend()
                .gecko()
                .expect("gecko backend")
                .merge_backlog_pages(),
            0
        );
        verify_all(&mut engine, &oracle);
    }
}

/// The RAM report must charge queued merge-job state while work is pending
/// (fig14 honesty): a Gecko with a job in flight reports more validity RAM
/// than the same Gecko settled.
#[test]
fn ram_footprint_accounts_for_queued_merge_state() {
    let (mut dev, mut sink, mut gecko) = harness(small_page_cfg(2, true));
    drive(&mut gecko, &mut dev, &mut sink, 77, 2500, 0);
    // Find a moment with a pending job holding buffered entries.
    let mut pending_ram = None;
    for _ in 0..2000 {
        if gecko.merge_jobs_pending() > 0 {
            // Pump partway so the job's streams hold entries.
            gecko.pump_merges(&mut dev, &mut sink, 1);
            pending_ram = Some(gecko.ram_bytes());
            break;
        }
        drive(&mut gecko, &mut dev, &mut sink, 78, 1, 0);
    }
    let pending_ram = pending_ram.expect("workload must leave a job pending");
    gecko.drain_merges(&mut dev, &mut sink);
    let settled_ram = gecko.ram_bytes();
    assert!(
        pending_ram > settled_ram,
        "pending merge buffers must be visible in RAM accounting \
         ({pending_ram} ≤ {settled_ram})"
    );
}
