//! Offline stand-in for the `criterion` crate: a real (if simple) timing
//! harness behind criterion's API subset — `Criterion::bench_function`,
//! `Bencher::iter`/`iter_batched`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark runs a warm-up phase, then timed samples for the
//! configured measurement window, and prints mean / min / max per-iteration
//! time. No statistical analysis, plots, or baseline comparisons.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted for API compatibility;
/// the shim always runs setup once per iteration, unbatched).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2);
        self.sample_size = n;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total sampling duration budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            mode: Mode::WarmUp,
            deadline: Instant::now() + self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut b);
        b.mode = Mode::Measure;
        b.deadline = Instant::now() + self.measurement_time;
        b.samples = Vec::with_capacity(self.sample_size * 32);
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{name:40} mean {:>12} (min {:?}, max {:?}, {} iters)",
            format!("{mean:?}"),
            min,
            max,
            n
        );
        self
    }

    /// Print a final configuration summary (API-compat no-op).
    pub fn final_summary(&mut self) {}
}

enum Mode {
    WarmUp,
    Measure,
}

/// Timing handle passed to the benchmark closure.
pub struct Bencher {
    mode: Mode,
    deadline: Instant,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` repeatedly until the window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            if matches!(self.mode, Mode::Measure) {
                self.samples.push(elapsed);
            }
            if Instant::now() >= self.deadline {
                return;
            }
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            if matches!(self.mode, Mode::Measure) {
                self.samples.push(elapsed);
            }
            if Instant::now() >= self.deadline {
                return;
            }
        }
    }
}

/// Group benchmark functions under a shared configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        assert!(count > 0, "routine must have run");
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
    }
}
