//! Functional restart after a *clean shutdown* for the baseline FTLs.
//!
//! DFTL and µ-FTL rely on a battery: before power runs out, every dirty
//! mapping entry is synchronized and RAM-buffered validity state is
//! persisted ([`geckoftl_core::ftl::FtlEngine::shutdown_clean`]). Restart
//! then rebuilds the RAM structures purely from flash:
//!
//! * the GMD from translation-block spare areas (newest version per page);
//! * the validity store: RAM PVB by scanning the translation table
//!   (LazyFTL's recovery cost, `TT/P` page reads), flash PVB from its
//!   segment spare areas, the PVL by scanning the log;
//! * BVC from the rebuilt validity information.
//!
//! GeckoFTL needs none of this — [`geckoftl_core::recovery::gecko_recover`]
//! handles even *dirty* crashes; this module exists so the baselines are
//! runnable systems too, not just cost models.

use crate::ftls::BaselineKind;
use crate::pvb::{FlashPvb, RamPvb};
use crate::pvl::PvlStore;
use flash_sim::{FlashDevice, IoPurpose, MetaKind, PageOffset, Ppn, SpareInfo};
use geckoftl_core::cache::MappingCache;
use geckoftl_core::ftl::{
    BlockGroup, BlockManager, BlockState, FtlConfig, FtlEngine, ValidityBackend,
};
use geckoftl_core::translation::TranslationTable;
use geckoftl_core::validity::ValidityStore;

/// Restart a baseline FTL from a cleanly shut-down device.
///
/// Panics if `kind` is [`BaselineKind::GeckoFtl`] — use
/// [`geckoftl_core::recovery::gecko_recover`], which also survives unclean
/// crashes.
pub fn restart_clean(kind: BaselineKind, mut dev: FlashDevice, cfg: FtlConfig) -> FtlEngine {
    assert!(
        kind != BaselineKind::GeckoFtl,
        "GeckoFTL restarts through gecko_recover (it needs no clean shutdown)"
    );
    let geo = dev.geometry();

    // Classify blocks and find translation-page versions (one spare read
    // per block + one per translation page, as in GeckoRec steps 1–2).
    let mut state = vec![BlockState::Free; geo.blocks as usize];
    let mut tpage_versions: Vec<Option<(u64, Ppn)>> = vec![None; geo.translation_pages() as usize];
    let mut pvb_segments: Vec<Option<(u64, Ppn)>> = Vec::new();
    let mut pvl_pages: Vec<(u64, Ppn)> = Vec::new();
    for b in geo.iter_blocks() {
        let written = dev.written_pages(b);
        if written == 0 {
            continue;
        }
        let first = dev
            .read_spare(geo.first_page(b), IoPurpose::Recovery)
            .expect("written");
        let group = match first.info {
            SpareInfo::User { .. } => BlockGroup::User,
            SpareInfo::Translation { .. } => BlockGroup::Translation,
            SpareInfo::Meta { kind, .. } => BlockGroup::Meta(kind),
        };
        state[b.0 as usize] = BlockState::InUse(group);
        if group == BlockGroup::User {
            continue;
        }
        for off in 0..written {
            let ppn = geo.ppn(b, PageOffset(off));
            let spare = dev.read_spare(ppn, IoPurpose::Recovery).expect("written");
            match spare.info {
                SpareInfo::Translation { tpage } => {
                    let slot = &mut tpage_versions[tpage as usize];
                    if slot.is_none_or(|(seq, _)| spare.seq > seq) {
                        *slot = Some((spare.seq, ppn));
                    }
                }
                SpareInfo::Meta {
                    kind: MetaKind::Pvb,
                    tag,
                } => {
                    let tag = tag as usize;
                    if pvb_segments.len() <= tag {
                        pvb_segments.resize(tag + 1, None);
                    }
                    if pvb_segments[tag].is_none_or(|(seq, _)| spare.seq > seq) {
                        pvb_segments[tag] = Some((spare.seq, ppn));
                    }
                }
                SpareInfo::Meta {
                    kind: MetaKind::Pvl,
                    tag,
                } => pvl_pages.push((tag, ppn)),
                _ => {}
            }
        }
    }
    let gmd: Vec<Option<Ppn>> = tpage_versions.iter().map(|v| v.map(|(_, p)| p)).collect();
    let tt = TranslationTable::from_recovered(geo, gmd);

    // Rebuild the validity store.
    let backend: Box<dyn ValidityStore> = match kind {
        BaselineKind::Dftl | BaselineKind::LazyFtl => Box::new(rebuild_ram_pvb(&mut dev, &tt)),
        BaselineKind::MuFtl => Box::new(FlashPvb::assemble(
            geo,
            pvb_segments.iter().map(|v| v.map(|(_, p)| p)).collect(),
        )),
        BaselineKind::IbFtl => {
            pvl_pages.sort_unstable();
            Box::new(PvlStore::assemble_from_log(geo, &mut dev, pvl_pages))
        }
        BaselineKind::GeckoFtl => unreachable!("checked above"),
    };
    let mut backend = ValidityBackend::External(backend);

    // BVC: valid = written − invalid (validity store is exact after a clean
    // shutdown); metadata blocks count their live pages.
    let mut bvc = vec![0u32; geo.blocks as usize];
    for b in geo.iter_blocks() {
        bvc[b.0 as usize] = match state[b.0 as usize] {
            BlockState::Free => 0,
            BlockState::InUse(BlockGroup::User) => {
                // Temporarily query through a throwaway manager-as-sink.
                let mut scratch = BlockManager::from_recovered(
                    &dev,
                    geo,
                    state.clone(),
                    vec![0; geo.blocks as usize],
                    false,
                );
                let bm = backend.store().gc_query(&mut dev, &mut scratch, b);
                let written = dev.written_pages(b);
                written - (0..written).filter(|i| bm.get(*i)).count() as u32
            }
            BlockState::InUse(BlockGroup::Translation) => (0..dev.written_pages(b))
                .filter(|off| {
                    let ppn = geo.ppn(b, PageOffset(*off));
                    (0..tt.num_tpages()).any(|t| tt.tpage_location(t) == Some(ppn))
                })
                .count() as u32,
            BlockState::InUse(BlockGroup::Meta(_)) => dev.written_pages(b),
        };
    }

    let mut bm = BlockManager::from_recovered(&dev, geo, state.clone(), bvc, false);
    for b in geo.iter_blocks() {
        if let BlockState::InUse(group) = state[b.0 as usize] {
            let written = dev.written_pages(b);
            if written > 0 && written < geo.pages_per_block {
                bm.adopt_active(b, group);
            }
        }
    }
    let cache = MappingCache::new(cfg.cache_entries);
    FtlEngine::from_parts(dev, bm, tt, cache, backend, cfg)
}

/// Rebuild a RAM PVB by scanning the translation table: every written user
/// page not referenced by the current table is invalid (LazyFTL's PVB
/// recovery, `TT/P` page reads).
fn rebuild_ram_pvb(dev: &mut FlashDevice, tt: &TranslationTable) -> RamPvb {
    let geo = dev.geometry();
    let mut referenced = vec![false; geo.total_pages() as usize];
    for tpage in 0..tt.num_tpages() {
        if tt.tpage_location(tpage).is_none() {
            continue;
        }
        let (lo, hi) = tt.lpn_range(tpage);
        for lpn in lo.0..hi.0.min(geo.logical_pages() as u32) {
            if let Some(ppn) = tt.lookup(dev, flash_sim::Lpn(lpn), IoPurpose::Recovery) {
                referenced[ppn.0 as usize] = true;
            }
        }
    }
    let mut pvb = RamPvb::new(geo);
    for b in geo.iter_blocks() {
        // PVB invalidity is only meaningful for user blocks.
        let first = dev.read_spare(geo.first_page(b), IoPurpose::Recovery);
        let is_user = matches!(first, Ok(s) if matches!(s.info, SpareInfo::User { .. }));
        if !is_user {
            continue;
        }
        for off in 0..dev.written_pages(b) {
            let ppn = geo.ppn(b, PageOffset(off));
            if !referenced[ppn.0 as usize] {
                pvb.set_invalid_for_recovery(ppn);
            }
        }
    }
    pvb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftls::build;
    use flash_sim::{Geometry, Lpn};
    use std::collections::HashMap;

    fn exercise_restart(kind: BaselineKind) {
        let geo = Geometry::tiny();
        let mut engine = build(kind, geo);
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        let logical = geo.logical_pages() as u32;
        let mut x = 9u64;
        for i in 0..3000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lpn = ((x >> 33) % logical as u64) as u32;
            engine.write(Lpn(lpn), i);
            oracle.insert(lpn, i);
        }
        engine.shutdown_clean();
        let cfg = engine.config();
        let dev = engine.crash();
        let mut restarted = restart_clean(kind, dev, cfg);
        for (&lpn, &want) in &oracle {
            assert_eq!(
                restarted.read(Lpn(lpn)),
                Some(want),
                "{}: L{lpn}",
                kind.name()
            );
        }
        // Keep operating (GC keeps working on the rebuilt BVC/validity).
        for i in 0..2000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lpn = ((x >> 33) % logical as u64) as u32;
            restarted.write(Lpn(lpn), 10_000 + i);
            oracle.insert(lpn, 10_000 + i);
        }
        for (&lpn, &want) in &oracle {
            assert_eq!(
                restarted.read(Lpn(lpn)),
                Some(want),
                "{}: post L{lpn}",
                kind.name()
            );
        }
    }

    #[test]
    fn dftl_restarts_cleanly() {
        exercise_restart(BaselineKind::Dftl);
    }

    #[test]
    fn lazyftl_restarts_cleanly() {
        exercise_restart(BaselineKind::LazyFtl);
    }

    #[test]
    fn mu_ftl_restarts_cleanly() {
        exercise_restart(BaselineKind::MuFtl);
    }

    #[test]
    fn ib_ftl_restarts_cleanly() {
        exercise_restart(BaselineKind::IbFtl);
    }
}
