//! Closed-form cost model for Logarithmic Gecko (paper §3.2, Table 1).
//!
//! | Technique          | Update (R, W)            | GC query (R)      | RAM          |
//! |--------------------|--------------------------|-------------------|--------------|
//! | RAM-resident PVB   | 0, 0                     | 0                 | O(B·K) bits  |
//! | Flash-resident PVB | 1, 1                     | 1                 | O(B·K/P)     |
//! | Logarithmic Gecko  | O(T/V·log_T(K/V)) each   | O(log_T(K/V))     | O(B·K/P)     |
//!
//! These formulas drive the Table-1 reproduction and the analytical curves
//! of Figure 11 (capacity scaling and the ≈2¹⁰⁰ crossover claim).

use crate::gecko::config::GeckoConfig;
use flash_sim::Geometry;

/// Analytical cost model for a Logarithmic Gecko configuration.
#[derive(Clone, Copy, Debug)]
pub struct GeckoCostModel {
    /// Tuning in effect.
    pub cfg: GeckoConfig,
    /// Device geometry.
    pub geo: Geometry,
}

impl GeckoCostModel {
    /// Build a model for a geometry with its paper-default tuning.
    pub fn paper_default(geo: Geometry) -> Self {
        GeckoCostModel {
            cfg: GeckoConfig::paper_default(&geo),
            geo,
        }
    }

    /// `L`: number of levels.
    pub fn levels(&self) -> f64 {
        self.cfg.levels(&self.geo) as f64
    }

    /// Amortized flash *reads* per update: `(T/V) · log_T(K·S/V)`.
    pub fn update_reads(&self) -> f64 {
        self.cfg.size_ratio as f64 / self.cfg.entries_per_page(&self.geo) as f64 * self.levels()
    }

    /// Amortized flash *writes* per update (same form as reads).
    pub fn update_writes(&self) -> f64 {
        self.update_reads()
    }

    /// Flash reads per GC query: one per level.
    pub fn query_reads(&self) -> f64 {
        self.levels()
    }

    /// Amortized write-amplification contribution of one update at
    /// write/read cost ratio `delta`: `w + r/δ` (paper §5 metric).
    pub fn update_wa(&self, delta: f64) -> f64 {
        self.update_writes() + self.update_reads() / delta
    }

    /// Expected WA contribution of page-validity maintenance per logical
    /// write, given the expected number of GC operations per logical write
    /// (`gc_per_write`, a function of over-provisioning).
    ///
    /// Each logical write eventually invalidates one page (one update);
    /// each GC operation issues one query plus `S` erase-marker inserts.
    pub fn validity_wa(&self, delta: f64, gc_per_write: f64) -> f64 {
        let erase_inserts = self.cfg.partitions as f64;
        self.update_wa(delta)
            + gc_per_write * (self.query_reads() / delta + erase_inserts * self.update_wa(delta))
    }

    /// Total flash space occupied by Logarithmic Gecko in bytes, bounded by
    /// ≈2× the largest run (§3.2 space-amplification ≤ 2).
    pub fn flash_bytes(&self) -> u64 {
        let entry_bytes = (self.cfg.bits_per_entry(&self.geo) as u64).div_ceil(8);
        2 * self.cfg.max_entries(&self.geo) * entry_bytes
    }
}

/// Cost model for a flash-resident PVB (the paper's baseline): one page read
/// + one page write per update, one read per GC query.
#[derive(Clone, Copy, Debug)]
pub struct FlashPvbCostModel;

impl FlashPvbCostModel {
    /// WA contribution of one update: `1 + 1/δ`.
    pub fn update_wa(delta: f64) -> f64 {
        1.0 + 1.0 / delta
    }

    /// WA contribution of page-validity maintenance per logical write.
    pub fn validity_wa(delta: f64, gc_per_write: f64) -> f64 {
        Self::update_wa(delta) + gc_per_write / delta
    }
}

/// The capacity factor at which flash-PVB catches up with Logarithmic Gecko:
/// solves for the K-multiplier `x` where gecko's logarithmic update cost
/// equals PVB's constant cost (Figure 11's "≈2¹⁰⁰" claim). Returns
/// `log2(x)` so the result stays representable.
pub fn crossover_capacity_log2(model: &GeckoCostModel, delta: f64) -> f64 {
    // update_wa grows with levels: (T/V)(1 + 1/δ) · L(K).
    // Crossover when (T/V)(1+1/δ)·L = (1+1/δ)  ⇔  L = V/T.
    // L = log_T(K·S/V) = V/T  ⇔  K·S/V = T^(V/T).
    let v = model.cfg.entries_per_page(&model.geo) as f64;
    let t = model.cfg.size_ratio as f64;
    let _ = delta; // cancels out of both sides
    let target_levels = v / t;
    let current_levels = model.levels();
    // Each extra level multiplies K by T; log2 of the required multiplier:
    (target_levels - current_levels) * t.log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_cost_is_subconstant() {
        let m = GeckoCostModel::paper_default(Geometry::paper_2tb());
        // "each update costs a small fraction of a flash read and write"
        assert!(
            m.update_writes() < 0.2,
            "update writes = {}",
            m.update_writes()
        );
        assert!(m.update_wa(10.0) < FlashPvbCostModel::update_wa(10.0));
    }

    #[test]
    fn query_cost_is_logarithmic() {
        let small = GeckoCostModel::paper_default(Geometry::paper_scaled(1 << 12));
        let big = GeckoCostModel::paper_default(Geometry::paper_scaled(1 << 22));
        assert!(big.query_reads() > small.query_reads());
        // 1024× more blocks at T=2 adds exactly 10 levels.
        assert!((big.query_reads() - small.query_reads() - 10.0).abs() < 1.5);
    }

    #[test]
    fn crossover_is_absurdly_far() {
        let m = GeckoCostModel::paper_default(Geometry::paper_2tb());
        let log2x = crossover_capacity_log2(&m, 10.0);
        // The paper reports capacity must grow by ≈2^100 for PVB to win.
        assert!(log2x > 60.0, "crossover at 2^{log2x}");
    }

    #[test]
    fn higher_t_means_fewer_levels_costlier_updates() {
        let geo = Geometry::paper_2tb();
        let t2 = GeckoCostModel {
            cfg: GeckoConfig {
                size_ratio: 2,
                ..GeckoConfig::paper_default(&geo)
            },
            geo,
        };
        let t8 = GeckoCostModel {
            cfg: GeckoConfig {
                size_ratio: 8,
                ..GeckoConfig::paper_default(&geo)
            },
            geo,
        };
        assert!(t8.query_reads() < t2.query_reads());
        assert!(t8.update_wa(10.0) > t2.update_wa(10.0));
    }

    #[test]
    fn space_is_linear_in_blocks() {
        let geo = Geometry::paper_2tb();
        let m = GeckoCostModel::paper_default(geo);
        // O(B·K) bits ⇒ comparable to PVB's 64 MB, within a small factor.
        let pvb_bytes = geo.total_pages() / 8;
        let ratio = m.flash_bytes() as f64 / pvb_bytes as f64;
        assert!((1.0..8.0).contains(&ratio), "ratio = {ratio}");
    }
}
