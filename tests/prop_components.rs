//! Property tests for the engine's supporting components: the LRU mapping
//! cache against a reference model, and the flash-resident translation
//! table against a plain map under arbitrary synchronization sequences.

use geckoftl::flash_sim::{FlashDevice, Geometry, IoPurpose, Lpn, Ppn};
use geckoftl::geckoftl_core::cache::{CacheEntry, MappingCache};
use geckoftl::geckoftl_core::ftl::BlockManager;
use geckoftl::geckoftl_core::translation::TranslationTable;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
enum CacheOp {
    Insert(u32, u32, bool),
    Promote(u32),
    Remove(u32),
    PopLru,
    MarkClean(u32),
}

fn cache_op() -> impl Strategy<Value = CacheOp> {
    prop_oneof![
        4 => (0u32..64, 0u32..1000, any::<bool>()).prop_map(|(l, p, d)| CacheOp::Insert(l, p, d)),
        2 => (0u32..64).prop_map(CacheOp::Promote),
        1 => (0u32..64).prop_map(CacheOp::Remove),
        1 => Just(CacheOp::PopLru),
        1 => (0u32..64).prop_map(CacheOp::MarkClean),
    ]
}

/// Reference model: a Vec in LRU order (front = LRU) plus entry data.
#[derive(Default)]
struct LruModel {
    order: Vec<u32>,
    data: HashMap<u32, (u32, bool)>, // lpn -> (ppn, dirty)
}

impl LruModel {
    fn touch(&mut self, lpn: u32) {
        self.order.retain(|l| *l != lpn);
        self.order.push(lpn);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn mapping_cache_matches_lru_model(ops in prop::collection::vec(cache_op(), 1..300)) {
        let capacity = 16;
        let mut cache = MappingCache::new(capacity);
        let mut model = LruModel::default();

        for op in ops {
            match op {
                CacheOp::Insert(lpn, ppn, dirty) => {
                    if model.data.contains_key(&lpn) {
                        continue; // cache forbids duplicate inserts
                    }
                    if model.data.len() == capacity {
                        // evict LRU in both
                        let victim = model.order.remove(0);
                        model.data.remove(&victim);
                        let popped = cache.pop_lru().expect("full cache pops");
                        prop_assert_eq!(popped.lpn, Lpn(victim));
                    }
                    cache.insert(CacheEntry {
                        lpn: Lpn(lpn),
                        ppn: Ppn(ppn),
                        dirty,
                        uip: false,
                        uncertain: false,
                        written_epoch: 0,
                    });
                    model.data.insert(lpn, (ppn, dirty));
                    model.touch(lpn);
                }
                CacheOp::Promote(lpn) => {
                    cache.promote(Lpn(lpn));
                    if model.data.contains_key(&lpn) {
                        model.touch(lpn);
                    }
                }
                CacheOp::Remove(lpn) => {
                    let got = cache.remove(Lpn(lpn));
                    let want = model.data.remove(&lpn);
                    model.order.retain(|l| *l != lpn);
                    prop_assert_eq!(got.map(|e| (e.ppn.0, e.dirty)), want);
                }
                CacheOp::PopLru => {
                    let got = cache.pop_lru();
                    if model.order.is_empty() {
                        prop_assert!(got.is_none());
                    } else {
                        let victim = model.order.remove(0);
                        model.data.remove(&victim);
                        prop_assert_eq!(got.expect("nonempty").lpn, Lpn(victim));
                    }
                }
                CacheOp::MarkClean(lpn) => {
                    cache.update_entry(Lpn(lpn), |e| e.dirty = false);
                    if let Some(v) = model.data.get_mut(&lpn) {
                        v.1 = false;
                    }
                }
            }
            // Invariants after every op.
            prop_assert_eq!(cache.len(), model.data.len());
            let dirty_model = model.data.values().filter(|(_, d)| *d).count();
            prop_assert_eq!(cache.dirty_count(), dirty_model);
            let order: Vec<u32> = cache.iter_lru_order().map(|e| e.lpn.0).collect();
            prop_assert_eq!(&order, &model.order);
        }
    }

    #[test]
    fn translation_table_matches_map_model(
        batches in prop::collection::vec(
            prop::collection::vec((0u32..716, 1u32..100_000), 1..12),
            1..40,
        ),
    ) {
        let geo = Geometry::tiny();
        let mut dev = FlashDevice::new(geo);
        let mut bm = BlockManager::new(geo);
        let mut tt = TranslationTable::new(geo);
        tt.format(&mut dev, &mut bm);
        let mut model: HashMap<u32, u32> = HashMap::new();

        for batch in batches {
            // Deduplicate lpns within a batch (a sync has one value per lpn)
            // and skip no-op updates (engine never syncs an unchanged value).
            let mut updates: Vec<(Lpn, Ppn)> = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for (lpn, ppn) in batch {
                if seen.insert(lpn) && model.get(&lpn) != Some(&ppn) {
                    updates.push((Lpn(lpn), Ppn(ppn)));
                }
            }
            if updates.is_empty() {
                continue;
            }
            let before: Vec<Option<u32>> =
                updates.iter().map(|(l, _)| model.get(&l.0).copied()).collect();
            let outcome = tt.synchronize(&mut dev, &mut bm, 0, &updates);
            // Before-images reported by the table equal the model's priors.
            prop_assert_eq!(outcome.before_images.len(), updates.len());
            for (((lpn, new), (got_lpn, got_before)), want_before) in
                updates.iter().zip(&outcome.before_images).zip(before)
            {
                prop_assert_eq!(lpn, got_lpn);
                prop_assert_eq!(got_before.map(|p| p.0), want_before);
                model.insert(lpn.0, new.0);
            }
        }
        // Final lookups agree with the model for every lpn.
        for lpn in 0..716u32 {
            let got = tt.lookup(&mut dev, Lpn(lpn), IoPurpose::TranslationFetch);
            prop_assert_eq!(got.map(|p| p.0), model.get(&lpn).copied());
        }
    }
}
