//! A fuzz scenario: one fully deterministic robustness experiment — a
//! workload trace, a device fault plan, and an optional crash point —
//! serializable to the text format committed under `fuzz/corpus/`.

use flash_sim::{EraseFault, FaultPlan, WriteFault};
use ftl_workloads::Trace;

/// One deterministic fuzz input. Replaying the same scenario always drives
/// the same device history (generators, fault indices and crash points are
/// all data, not randomness).
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Mapping-cache size for the engine under test (fuzzed: small caches
    /// stress the checkpoint/recovery window).
    pub cache_entries: usize,
    /// The operation stream.
    pub trace: Trace,
    /// Write faults by device write-attempt index.
    pub write_faults: Vec<(u64, WriteFault)>,
    /// Erase faults by device erase-attempt index.
    pub erase_faults: Vec<(u64, EraseFault)>,
    /// Power cut at an op boundary: crash after this many executed ops,
    /// recover, then run the rest of the trace. (Mid-op crashes come from
    /// torn/erase-crash faults instead.)
    pub crash_after: Option<usize>,
}

impl Scenario {
    /// A plain scenario around a trace: no faults, no crash.
    pub fn from_trace(trace: Trace) -> Self {
        Scenario {
            cache_entries: 64,
            trace,
            write_faults: Vec::new(),
            erase_faults: Vec::new(),
            crash_after: None,
        }
    }

    /// The scenario's faults as an installable device plan.
    pub fn fault_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        for &(nth, f) in &self.write_faults {
            plan = plan.on_write(nth, f);
        }
        for &(nth, f) in &self.erase_faults {
            plan = plan.on_erase(nth, f);
        }
        plan
    }

    /// Serialize to the corpus text format: header lines (`C` cache size,
    /// `X` crash point, `FW`/`FE` fault entries), then the trace in
    /// [`Trace::to_text`] form. `#` comments and blank lines are ignored.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("C {}\n", self.cache_entries));
        if let Some(at) = self.crash_after {
            s.push_str(&format!("X {at}\n"));
        }
        for &(nth, f) in &self.write_faults {
            let kind = match f {
                WriteFault::ProgramFail => "pf",
                WriteFault::TornData => "td",
                WriteFault::TornSpare => "ts",
            };
            s.push_str(&format!("FW {nth} {kind}\n"));
        }
        for &(nth, f) in &self.erase_faults {
            let kind = match f {
                EraseFault::Fail => "ef",
                EraseFault::Crash => "ec",
            };
            s.push_str(&format!("FE {nth} {kind}\n"));
        }
        s.push_str(&self.trace.to_text());
        s
    }

    /// Parse the text form produced by [`Scenario::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut sc = Scenario::from_trace(Trace::default());
        let mut trace_text = String::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            let err = |e: String| format!("line {}: {e}", i + 1);
            let num = |s: &str| s.trim().parse::<u64>().map_err(|e| err(e.to_string()));
            if let Some(rest) = line.strip_prefix("C ") {
                sc.cache_entries = num(rest)? as usize;
            } else if let Some(rest) = line.strip_prefix("X ") {
                sc.crash_after = Some(num(rest)? as usize);
            } else if let Some(rest) = line.strip_prefix("FW ") {
                let (nth, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("expected 'FW <nth> <kind>'".into()))?;
                let fault = match kind.trim() {
                    "pf" => WriteFault::ProgramFail,
                    "td" => WriteFault::TornData,
                    "ts" => WriteFault::TornSpare,
                    other => return Err(err(format!("unknown write fault '{other}'"))),
                };
                sc.write_faults.push((num(nth)?, fault));
            } else if let Some(rest) = line.strip_prefix("FE ") {
                let (nth, kind) = rest
                    .split_once(' ')
                    .ok_or_else(|| err("expected 'FE <nth> <kind>'".into()))?;
                let fault = match kind.trim() {
                    "ef" => EraseFault::Fail,
                    "ec" => EraseFault::Crash,
                    other => return Err(err(format!("unknown erase fault '{other}'"))),
                };
                sc.erase_faults.push((num(nth)?, fault));
            } else {
                trace_text.push_str(line);
                trace_text.push('\n');
            }
        }
        sc.trace = Trace::from_text(&trace_text)?;
        Ok(sc)
    }

    /// A one-line summary for reports.
    pub fn summary(&self) -> String {
        format!(
            "{} ops ({} writes), {} write-faults, {} erase-faults, crash_after={:?}, cache={}",
            self.trace.len(),
            self.trace.writes(),
            self.write_faults.len(),
            self.erase_faults.len(),
            self.crash_after,
            self.cache_entries,
        )
    }

    /// Whether any fault or crash point is scheduled at all.
    pub fn has_faults(&self) -> bool {
        !self.write_faults.is_empty() || !self.erase_faults.is_empty() || self.crash_after.is_some()
    }

    /// Count of ops of each kind, for mutation bookkeeping.
    pub fn op_count(&self) -> usize {
        self.trace.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::Lpn;
    use ftl_workloads::WorkloadOp;

    #[test]
    fn scenario_text_round_trip() {
        let sc = Scenario {
            cache_entries: 48,
            trace: Trace::from_ops(vec![
                WorkloadOp::Write(Lpn(5)),
                WorkloadOp::Idle(12),
                WorkloadOp::Read(Lpn(5)),
            ]),
            write_faults: vec![(100, WriteFault::TornData), (220, WriteFault::ProgramFail)],
            erase_faults: vec![(3, EraseFault::Crash)],
            crash_after: Some(2),
        };
        let text = sc.to_text();
        assert_eq!(Scenario::from_text(&text).unwrap(), sc);
        // Comments and blank lines survive parsing.
        let annotated = format!("# found by fuzz seed 7\n\n{text}");
        assert_eq!(Scenario::from_text(&annotated).unwrap(), sc);
    }
}
