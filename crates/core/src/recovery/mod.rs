//! GeckoRec: GeckoFTL's power-failure recovery (paper §4.3 + Appendix C).
//!
//! A crash loses *all* RAM-resident state: the GMD, the LRU cache (with its
//! dirty entries), Logarithmic Gecko's buffer and run directories, BVC, and
//! the block manager's bookkeeping. Only the flash device survives. GeckoRec
//! rebuilds everything in eight steps, reading the device exclusively
//! through IO-charged spare/page reads so the reported recovery cost is
//! honest:
//!
//! 1. **BID** — scan one spare area per block to classify blocks and
//!    timestamp them (the Blocks Information Directory).
//! 2. **GMD** — scan translation-block spare areas; the newest version of
//!    each translation page wins.
//! 3. **Run directories** — scan Gecko-block spare areas, read each
//!    candidate run's postamble (and preamble), and keep exactly the live
//!    runs (a run is obsolete iff it was merged into a live run — tracked
//!    via the `merged_from` preamble field).
//! 4. **Buffer** — recreate erase markers for blocks erased since the last
//!    buffer flush (C.2.1) and invalidations lost with the buffer by
//!    diffing translation-page versions written since the last flush
//!    (C.2.2), with a spare-area timestamp check that also handles physical
//!    page reuse.
//! 5. **BVC** — rebuild per-block valid counts from a full scan of
//!    Logarithmic Gecko plus the recovered buffer.
//! 6. **Dirty entries** — backwards scan of the most recently written user
//!    blocks (bounded to `2·C` spare reads by runtime checkpoints),
//!    recreating a cached mapping entry per fresh LPN.
//! 7. **Flags** — recovered entries get dirty/UIP/uncertain = true;
//!    corrections happen lazily after operation resumes (Appendix C.3).
//! 8. **Resume** — dispose of BID, reassemble the engine.

use crate::cache::{CacheEntry, MappingCache};
use crate::ftl::block_manager::{BlockGroup, BlockManager, BlockState};
use crate::ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend};
use crate::gecko::{
    GeckoConfig, GeckoPagePayload, LogGecko, Run, RunDirEntry, RunId, RunMeta, ShardedGecko,
};
use crate::translation::{TranslationPagePayload, TranslationTable};
use flash_sim::{BlockId, FlashDevice, IoPurpose, MetaKind, PageOffset, Ppn, SpanKind, SpareInfo};
use std::collections::{HashMap, HashSet};

/// The eight steps of GeckoRec, for per-step cost reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryStep {
    /// Step 1: Blocks Information Directory.
    Bid,
    /// Step 2: Global Mapping Directory.
    Gmd,
    /// Step 3: Logarithmic Gecko run directories.
    RunDirectories,
    /// Step 4: Logarithmic Gecko buffer (erases + invalidations).
    Buffer,
    /// Step 5: Blocks Validity Counter.
    Bvc,
    /// Step 6: dirty cached mapping entries (backwards scan).
    DirtyEntries,
}

/// IO cost of one recovery step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepCost {
    /// Spare-area reads performed.
    pub spare_reads: u64,
    /// Full page reads performed.
    pub page_reads: u64,
    /// Simulated time, in microseconds.
    pub sim_us: f64,
}

/// Full recovery report: per-step costs plus totals.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// `(step, cost)` in execution order.
    pub steps: Vec<(RecoveryStep, StepCost)>,
    /// Entries recreated in the cache by step 6.
    pub recovered_entries: usize,
    /// Erase markers recreated by step 4a.
    pub recovered_erases: usize,
    /// Invalidations recreated by step 4b.
    pub recovered_invalidations: usize,
}

impl RecoveryReport {
    /// Total simulated recovery time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.steps.iter().map(|(_, c)| c.sim_us).sum::<f64>() / 1e6
    }

    /// Total spare reads across steps.
    pub fn total_spare_reads(&self) -> u64 {
        self.steps.iter().map(|(_, c)| c.spare_reads).sum()
    }

    /// Total page reads across steps.
    pub fn total_page_reads(&self) -> u64 {
        self.steps.iter().map(|(_, c)| c.page_reads).sum()
    }
}

/// One BID entry (Appendix C step 1).
#[derive(Clone, Copy, Debug)]
struct BidEntry {
    group: Option<BlockGroup>,
    /// Sequence number of the block's first written page (0 if empty).
    first_seq: u64,
    written: u32,
}

struct StepTimer {
    start_counts: flash_sim::IoCounts,
    start_us: f64,
}

impl StepTimer {
    fn start(dev: &FlashDevice) -> Self {
        StepTimer {
            start_counts: dev.stats().counts(IoPurpose::Recovery),
            start_us: dev.clock().now_us(),
        }
    }

    /// Close the step: compute its cost and record a `Recovery` telemetry
    /// span for it (`step` is the 1-based GeckoRec step number). The span
    /// duration is the *same subtraction* as `sim_us`, so the telemetry
    /// accumulator reproduces `RecoveryReport::total_secs` exactly.
    fn stop(self, dev: &mut FlashDevice, step: u32) -> StepCost {
        let counts = dev.stats().counts(IoPurpose::Recovery);
        let now_us = dev.clock().now_us();
        dev.telemetry_mut()
            .record_span(SpanKind::Recovery, step, self.start_us, now_us);
        StepCost {
            spare_reads: counts.spare_reads - self.start_counts.spare_reads,
            page_reads: counts.page_reads - self.start_counts.page_reads,
            sim_us: now_us - self.start_us,
        }
    }
}

/// Run GeckoRec on a crashed device and return the recovered engine plus the
/// cost report.
///
/// `cfg` and `gecko_cfg` are configuration, not state: a real device stores
/// them in a superblock; re-deriving them costs no IO.
pub fn gecko_recover(
    mut dev: FlashDevice,
    cfg: FtlConfig,
    gecko_cfg: GeckoConfig,
) -> (FtlEngine, RecoveryReport) {
    let geo = dev.geometry();
    let mut report = RecoveryReport::default();
    // A fresh recovery run: the telemetry accumulator (mirroring
    // `RecoveryReport::total_secs`) restarts from zero.
    dev.telemetry_mut().recovery_started();

    // ---- Step 1: BID — one spare read per non-empty block. -------------
    let timer = StepTimer::start(&dev);
    let mut bid: Vec<BidEntry> = Vec::with_capacity(geo.blocks as usize);
    for b in geo.iter_blocks() {
        let written = dev.written_pages(b);
        if written == 0 {
            bid.push(BidEntry {
                group: None,
                first_seq: 0,
                written,
            });
            continue;
        }
        let Ok(spare) = dev.read_spare(geo.first_page(b), IoPurpose::Recovery) else {
            // Torn first page (power cut mid-program on a fresh block): the
            // block holds exactly one page — the torn one, always the
            // globally newest write — and nothing on it was acknowledged.
            // Quarantine-scrub it back into circulation.
            if dev.erase_block(b, IoPurpose::Recovery).is_err() {
                dev.mark_bad(b); // unscrubbable: retire it for good
            }
            bid.push(BidEntry {
                group: None,
                first_seq: 0,
                written: 0,
            });
            continue;
        };
        let group = match spare.info {
            SpareInfo::User { .. } => BlockGroup::User,
            SpareInfo::Translation { .. } => BlockGroup::Translation,
            SpareInfo::Meta { kind, .. } => BlockGroup::Meta(kind),
        };
        bid.push(BidEntry {
            group: Some(group),
            first_seq: spare.seq,
            written,
        });
    }
    report
        .steps
        .push((RecoveryStep::Bid, timer.stop(&mut dev, 1)));

    // ---- Step 2: GMD — scan spare areas of all translation pages. ------
    let timer = StepTimer::start(&dev);
    let n_tpages = geo.translation_pages() as usize;
    // All surviving versions of every translation page, sorted by seq.
    let mut tpage_versions: Vec<Vec<(u64, Ppn)>> = vec![Vec::new(); n_tpages];
    for b in geo.iter_blocks() {
        if bid[b.0 as usize].group != Some(BlockGroup::Translation) {
            continue;
        }
        for off in 0..bid[b.0 as usize].written {
            let ppn = geo.ppn(b, PageOffset(off));
            let Ok(spare) = dev.read_spare(ppn, IoPurpose::Recovery) else {
                continue; // torn spare: the page has no identity
            };
            let SpareInfo::Translation { tpage } = spare.info else {
                panic!("translation block holds {:?}", spare.info)
            };
            if !dev.is_written(ppn) {
                continue; // torn data: never point the GMD at an unreadable page
            }
            tpage_versions[tpage as usize].push((spare.seq, ppn));
        }
    }
    for versions in &mut tpage_versions {
        versions.sort_unstable_by_key(|(seq, _)| *seq);
    }
    let gmd: Vec<Option<Ppn>> = tpage_versions
        .iter()
        .map(|v| v.last().map(|(_, ppn)| *ppn))
        .collect();
    report
        .steps
        .push((RecoveryStep::Gmd, timer.stop(&mut dev, 2)));

    // ---- Step 3: run directories. ---------------------------------------
    let timer = StepTimer::start(&dev);
    // Under a sharded store, every run holds keys of exactly one shard
    // (shards never share a tree), so its first key names the owning
    // shard. Candidates MUST be partitioned by shard before liveness is
    // judged: spans live in the global sequence space but merging is
    // laminar only within a shard, so two shards' flush spans can nest
    // without any supersession — a global containment walk would kill
    // live runs. Each shard's tree is then reassembled independently,
    // with its own flush watermark.
    let shard_runs = recover_runs(&mut dev, &bid, gecko_cfg.shards);
    let live_pages: HashSet<Ppn> = shard_runs
        .iter()
        .flatten()
        .flat_map(|r| r.pages.iter().map(|p| p.ppn))
        .collect();
    let mut gecko = if gecko_cfg.shards > 1 {
        let trees = shard_runs
            .into_iter()
            .map(|rs| LogGecko::from_recovered(geo, gecko_cfg, rs))
            .collect();
        RecGecko::Sharded(ShardedGecko::from_shards(geo, trees))
    } else {
        let runs = shard_runs.into_iter().next().unwrap_or_default();
        RecGecko::Single(Box::new(LogGecko::from_recovered(geo, gecko_cfg, runs)))
    };
    report
        .steps
        .push((RecoveryStep::RunDirectories, timer.stop(&mut dev, 3)));

    // ---- Step 4: buffer. -------------------------------------------------
    let timer = StepTimer::start(&dev);
    // The global replay horizon is the *minimum* shard watermark: steps 4b
    // and 6 must re-derive reports for the least-advanced shard. A report
    // routed to a shard that already flushed it is re-absorbed
    // idempotently — the recovered bit is factually true (both checks
    // below verify the invalidated page still holds the superseded data),
    // and validity bits are OR-ed, so a duplicate changes no query answer.
    let threshold = gecko.min_flush_seq();
    // 4a (C.2.1): blocks erased since the last flush get erase markers. The
    // erase timestamp is persisted in a spare area (Appendix D), read as
    // part of the step-1 scan.
    for b in geo.iter_blocks() {
        // The paper's rule: "all blocks that are free or whose first page
        // was written after this timestamp". The persisted erase timestamp
        // (Appendix D) expresses both cases directly.
        //
        // The timestamp is the *owning shard's* watermark, not the global
        // minimum: an erase marker masks every older entry for its block,
        // so recreating one the owning shard had already persisted would
        // hide post-erase invalidations that sit in that shard's runs.
        // (Unlike plain invalidation bits, markers are not idempotent
        // across a flush boundary.)
        let b_threshold = gecko.flush_seq_for(b);
        let erased_since_flush = dev.erase_seq(b) > b_threshold
            || bid[b.0 as usize].first_seq > b_threshold && bid[b.0 as usize].written > 0;
        if erased_since_flush {
            gecko.recover_erase_marker(b);
            report.recovered_erases += 1;
        }
    }
    // 4b (C.2.2): diff translation-page versions written since the last
    // flush against their predecessors; every mapping change names a
    // physical page that was invalidated after the flush.
    for versions in &tpage_versions {
        let newer: Vec<(u64, Ppn)> = versions
            .iter()
            .copied()
            .filter(|(s, _)| *s > threshold)
            .collect();
        if newer.is_empty() {
            continue;
        }
        // Chain: newest version at or before the threshold (if any), then
        // every later version in order.
        let base = versions
            .iter()
            .rev()
            .find(|(s, _)| *s <= threshold)
            .copied();
        let mut chain: Vec<Option<(u64, Ppn)>> = vec![base];
        chain.extend(newer.into_iter().map(Some));
        for pair in chain.windows(2) {
            let (prev, next) = (pair[0], pair[1].expect("suffix entries exist"));
            let Some((prev_seq, prev_ppn)) = prev else {
                // Never-written baseline is all-unmapped: nothing to diff.
                continue;
            };
            let prev_entries = read_tpage(&mut dev, prev_ppn).entries;
            let next_payload = read_tpage(&mut dev, next.1);
            for (i, &new_val) in next_payload.entries.iter().enumerate() {
                let old_val = prev_entries.get(i).copied().unwrap_or(u32::MAX);
                if old_val == new_val || old_val == u32::MAX {
                    continue;
                }
                let candidate = Ppn(old_val);
                // Timestamp check: only report if the page still holds the
                // exact data this synchronization invalidated. Content that
                // the *previous* version pointed at was necessarily written
                // before that version; anything newer on this physical page
                // is a fresh life (the block was erased and rewritten, e.g.
                // after a GC UIP-skip) and must not be re-marked.
                let Ok(spare) = dev.read_spare(candidate, IoPurpose::Recovery) else {
                    continue; // erased since — covered by an erase marker
                };
                if spare.seq < prev_seq && matches!(spare.info, SpareInfo::User { .. }) {
                    gecko.recover_invalidation(candidate);
                    report.recovered_invalidations += 1;
                }
            }
        }
    }
    report
        .steps
        .push((RecoveryStep::Buffer, timer.stop(&mut dev, 4)));

    // ---- Step 5: BVC. -----------------------------------------------------
    let timer = StepTimer::start(&dev);
    let invalid_maps = gecko.scan_all_bitmaps(&mut dev, IoPurpose::Recovery);
    let mut bvc = vec![0u32; geo.blocks as usize];
    let mut state = vec![BlockState::Free; geo.blocks as usize];
    for b in geo.iter_blocks() {
        let entry = &bid[b.0 as usize];
        let Some(group) = entry.group else { continue };
        state[b.0 as usize] = BlockState::InUse(group);
        bvc[b.0 as usize] = match group {
            BlockGroup::User => {
                let invalid = invalid_maps.get(&b).map_or(0, |bm| {
                    (0..entry.written).filter(|&i| bm.get(i)).count() as u32
                });
                entry.written - invalid
            }
            BlockGroup::Translation => (0..entry.written)
                .filter(|&off| {
                    let ppn = geo.ppn(b, PageOffset(off));
                    gmd.contains(&Some(ppn))
                })
                .count() as u32,
            BlockGroup::Meta(MetaKind::GeckoRun) => (0..entry.written)
                .filter(|&off| live_pages.contains(&geo.ppn(b, PageOffset(off))))
                .count() as u32,
            // Other metadata kinds belong to baseline stores, which GeckoRec
            // does not manage.
            BlockGroup::Meta(_) => entry.written,
        };
    }
    report
        .steps
        .push((RecoveryStep::Bvc, timer.stop(&mut dev, 5)));

    // ---- Step 6: dirty cached mapping entries. ----------------------------
    let timer = StepTimer::start(&dev);
    let mut cache = MappingCache::new(cfg.cache_entries);
    // Order user blocks by the timestamp of their newest page (one spare
    // read per user block — the paper's "K spare area reads, one per flash
    // block").
    let mut user_blocks: Vec<(u64, BlockId)> = Vec::new();
    for b in geo.iter_blocks() {
        let entry = &bid[b.0 as usize];
        if entry.group != Some(BlockGroup::User) || entry.written == 0 {
            continue;
        }
        let last = geo.ppn(b, PageOffset(entry.written - 1));
        // A torn spare can only be the globally newest write: sort it first.
        let newest_seq = match dev.read_spare(last, IoPurpose::Recovery) {
            Ok(spare) => spare.seq,
            Err(_) => u64::MAX,
        };
        user_blocks.push((newest_seq, b));
    }
    user_blocks.sort_unstable_by_key(|(seq, _)| std::cmp::Reverse(*seq));
    // Checkpoints bound the scan to ≈2·C spare reads. GC migrations tick the
    // checkpoint clock too, but one trigger can overshoot the period by a
    // burst of migrations before the next end-of-op check, so the window
    // carries a small cushion. Without checkpoints (ablation) the scan must
    // cover everything.
    let scan_limit: u64 = match (cfg.recovery, cfg.checkpoint_period) {
        (RecoveryPolicy::CheckpointDeferred, Some(period)) => {
            // One checkpoint epoch can overshoot the period by at most one
            // GC victim's worth of migrations (the clock is honored between
            // victims), hence the small O(B) cushion.
            period
                .saturating_mul(2)
                .saturating_add(4 * geo.pages_per_block as u64)
        }
        _ => u64::MAX,
    };
    let mut scanned = 0u64;
    let mut seen: HashSet<flash_sim::Lpn> = HashSet::new();
    // Newest-first list of recreated entries; the newest `C` go into the
    // cache, the remainder (possible only when GC-migration copies inflate
    // the unique count) are verified eagerly right after resume.
    let mut recreated: Vec<CacheEntry> = Vec::new();
    'scan: for &(_, b) in &user_blocks {
        let written = bid[b.0 as usize].written;
        for off in (0..written).rev() {
            let ppn = geo.ppn(b, PageOffset(off));
            let spare = match dev.read_spare(ppn, IoPurpose::Recovery) {
                Ok(s) if dev.is_written(ppn) => s,
                // Torn page: the in-flight user write the power cut killed.
                // Nothing about it was acknowledged. Step 5 counted it valid
                // (it was never reported to Gecko), so count it invalid now
                // and recreate the lost invalidation report.
                _ => {
                    gecko.recover_invalidation(ppn);
                    bvc[b.0 as usize] = bvc[b.0 as usize].saturating_sub(1);
                    report.recovered_invalidations += 1;
                    scanned += 1;
                    continue;
                }
            };
            // The scan serves two purposes with two horizons. Dirty-entry
            // recreation needs the checkpoint-bounded window. Re-deriving
            // the buffer's *immediate* invalidation reports (the
            // before-image pointers, §4.1) needs every user page written
            // since the last Gecko flush — those reports lived only in the
            // lost buffer. Stop once both horizons are exhausted; blocks
            // are walked newest-first, so everything further is older.
            if scanned >= scan_limit && spare.seq <= threshold {
                break 'scan;
            }
            scanned += 1;
            let SpareInfo::User { lpn, before } = spare.info else {
                panic!("user block holds {:?}", spare.info)
            };
            // Re-report the immediate invalidation carried in the spare
            // area, if its target still holds the superseded data (same
            // timestamp discipline as the step-4b check).
            if let Some(b) = before {
                if let Ok(bs) = dev.read_spare(b, IoPurpose::Recovery) {
                    if bs.seq < spare.seq
                        && matches!(bs.info, SpareInfo::User { lpn: bl, .. } if bl == lpn)
                    {
                        gecko.recover_invalidation(b);
                        report.recovered_invalidations += 1;
                    }
                }
            }
            if scanned <= scan_limit && seen.insert(lpn) {
                // TRIM guard: if the recovered validity store already knows
                // this page is invalid, its mapping was durably retracted —
                // a trim's unmap superseded it (the invalidation either
                // flushed or was re-derived by step 4's version-chain diff
                // from the mapped → unmapped transition). Recreating an
                // uncertain entry here would resurrect discarded data once
                // the C.3 verify-sync wrote it back into the table. Outside
                // trims the newest copy of an LPN is never invalid, so this
                // changes nothing for trim-free workloads. The LPN still
                // counts as seen: its older copies are superseded either way.
                let known_invalid = invalid_maps.get(&b).is_some_and(|m| m.get(off));
                if !known_invalid {
                    // Step 7 folded in: flags assumed dirty/UIP, marked
                    // uncertain for the App. C.3 corrections.
                    recreated.push(CacheEntry {
                        lpn,
                        ppn,
                        dirty: true,
                        uip: true,
                        uncertain: true,
                        written_epoch: 0,
                    });
                    report.recovered_entries += 1;
                }
            }
        }
    }
    let overflow: Vec<CacheEntry> = if recreated.len() > cfg.cache_entries {
        recreated.split_off(cfg.cache_entries)
    } else {
        Vec::new()
    };
    // Insert oldest-first so the newest entry ends up most-recently-used.
    for e in recreated.into_iter().rev() {
        cache.insert(e);
    }
    report
        .steps
        .push((RecoveryStep::DirtyEntries, timer.stop(&mut dev, 6)));

    // ---- Step 8: reassemble and resume. -----------------------------------
    let mut bm = BlockManager::from_recovered(
        &dev,
        geo,
        state,
        bvc,
        cfg.gc_policy == GcPolicy::MetadataAware,
    );
    // Re-adopt each group's partially written block as its active block —
    // unless the block is bad: its write pointer will never advance again,
    // so the group starts on a fresh block and GC drains the bad one.
    for b in geo.iter_blocks() {
        let entry = &bid[b.0 as usize];
        if let Some(group) = entry.group {
            if entry.written > 0 && entry.written < geo.pages_per_block && !dev.is_bad(b) {
                bm.adopt_active(b, group);
            }
        }
    }
    let tt = TranslationTable::from_recovered(geo, gmd);
    let mut cfg = cfg;
    if cfg.checkpoint_period.is_none() && matches!(cfg.recovery, RecoveryPolicy::CheckpointDeferred)
    {
        cfg.checkpoint_period = Some(cfg.cache_entries as u64);
    }
    let mut engine = FtlEngine::from_parts(dev, bm, tt, cache, gecko.into_backend(), cfg);
    // Entries that did not fit into the cache cannot wait for lazy
    // correction (dropping them could lose a dirty mapping): verify them
    // against the translation table immediately via ordinary
    // synchronization operations (mostly C.3.1 aborts).
    engine.resolve_recovered_overflow(overflow);
    (engine, report)
}

/// The tree(s) under reconstruction: a single-tree store or a per-channel
/// sharded one. Thin routing shim so the eight steps read identically for
/// both layouts; the differences (per-block vs global watermarks) are
/// confined to the two accessors.
enum RecGecko {
    Single(Box<LogGecko>),
    Sharded(ShardedGecko),
}

impl RecGecko {
    /// The global replay horizon: the least-advanced shard's watermark.
    fn min_flush_seq(&self) -> u64 {
        match self {
            RecGecko::Single(g) => g.last_flush_seq(),
            RecGecko::Sharded(s) => s.last_flush_seq(),
        }
    }

    /// The watermark governing `block`: its owning shard's.
    fn flush_seq_for(&self, block: BlockId) -> u64 {
        match self {
            RecGecko::Single(g) => g.last_flush_seq(),
            RecGecko::Sharded(s) => s.shard_flush_seqs()[s.shard_of(block)],
        }
    }

    fn recover_erase_marker(&mut self, block: BlockId) {
        match self {
            RecGecko::Single(g) => g.recover_erase_marker(block),
            RecGecko::Sharded(s) => s.recover_erase_marker(block),
        }
    }

    fn recover_invalidation(&mut self, ppn: Ppn) {
        match self {
            RecGecko::Single(g) => g.recover_invalidation(ppn),
            RecGecko::Sharded(s) => s.recover_invalidation(ppn),
        }
    }

    fn scan_all_bitmaps(
        &mut self,
        dev: &mut FlashDevice,
        purpose: IoPurpose,
    ) -> HashMap<BlockId, crate::gecko::Bitmap> {
        match self {
            RecGecko::Single(g) => g.scan_all_bitmaps(dev, purpose),
            RecGecko::Sharded(s) => s.scan_all_bitmaps(dev, purpose),
        }
    }

    fn into_backend(self) -> ValidityBackend {
        match self {
            RecGecko::Single(g) => ValidityBackend::Gecko(*g),
            RecGecko::Sharded(s) => ValidityBackend::Sharded(s),
        }
    }
}

fn read_tpage(dev: &mut FlashDevice, ppn: Ppn) -> TranslationPagePayload {
    dev.read_page(ppn, IoPurpose::Recovery)
        .expect("translation page readable")
        .blob::<TranslationPagePayload>()
        .expect("translation payload")
        .clone()
}

/// Recover the set of live runs (Appendix C.1): group Gecko pages by run ID
/// via spare scans, read postambles/preambles, keep complete runs that were
/// not merged into a newer live run. Returns one bucket per shard (a single
/// bucket when `shards == 1`): the liveness walk runs per shard because its
/// evidence — `merged_from` lists and span containment — only relates runs
/// of the same tree.
fn recover_runs(dev: &mut FlashDevice, bid: &[BidEntry], shards: u32) -> Vec<Vec<Run>> {
    let geo = dev.geometry();
    // (seq, ppn) per run id, in write order.
    let mut run_pages: HashMap<u64, Vec<(u64, Ppn)>> = HashMap::new();
    for b in geo.iter_blocks() {
        let entry = &bid[b.0 as usize];
        if entry.group != Some(BlockGroup::Meta(MetaKind::GeckoRun)) {
            continue;
        }
        for off in 0..entry.written {
            let ppn = geo.ppn(b, PageOffset(off));
            // Torn pages (lost spare or lost data) never joined a sealed
            // run: dropping one here leaves its run without a postamble —
            // or with a short page count — so the run is discarded as
            // partial below, exactly the torn-postamble orphan rule.
            let Ok(spare) = dev.read_spare(ppn, IoPurpose::Recovery) else {
                continue;
            };
            let SpareInfo::Meta {
                kind: MetaKind::GeckoRun,
                tag,
            } = spare.info
            else {
                panic!("gecko block holds {:?}", spare.info)
            };
            if !dev.is_written(ppn) {
                continue;
            }
            run_pages.entry(tag).or_default().push((spare.seq, ppn));
        }
    }

    struct Candidate {
        meta: RunMeta,
        pages: Vec<RunDirEntry>,
        entry_count: u64,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for (_, mut pages) in run_pages {
        pages.sort_unstable_by_key(|(seq, _)| *seq);
        // The postamble lives on the last written page of the run.
        let &(_, last_ppn) = pages.last().expect("non-empty run group");
        let last = dev
            .read_page(last_ppn, IoPurpose::Recovery)
            .expect("gecko page readable");
        let payload = last.blob::<GeckoPagePayload>().expect("gecko payload");
        let Some(post) = payload.postamble.clone() else {
            continue; // partially written run: discard
        };
        if post.total_pages as usize != pages.len() {
            continue; // incomplete: some pages missing or extra garbage
        }
        let meta = if let Some(pre) = payload.preamble.clone() {
            pre // single-page run: preamble and postamble share the page
        } else {
            let first = dev
                .read_page(pages[0].1, IoPurpose::Recovery)
                .expect("gecko page readable");
            first
                .blob::<GeckoPagePayload>()
                .expect("gecko payload")
                .preamble
                .clone()
                .expect("first run page carries the preamble")
        };
        let mut ppns = post.ppns.clone();
        ppns.push(last_ppn); // the postamble page's own address
        debug_assert_eq!(ppns.len(), post.ranges.len());
        let entry_count = 0; // recomputed lazily; not needed for queries
        let dir: Vec<RunDirEntry> = post
            .ranges
            .iter()
            .zip(ppns)
            .map(|(&(first, last), ppn)| RunDirEntry { ppn, first, last })
            .collect();
        candidates.push(Candidate {
            meta,
            pages: dir,
            entry_count,
        });
    }

    // Partition by owning shard before judging liveness. Every run's keys
    // belong to one shard, so its first directory key names the owner.
    let n = shards.max(1) as usize;
    let mut per_shard: Vec<Vec<Candidate>> = (0..n).map(|_| Vec::new()).collect();
    for c in candidates {
        let shard = (c.pages[0].first.block.0 % n as u32) as usize;
        per_shard[shard].push(c);
    }

    // Liveness, per shard: walk newest-first, separating live runs from
    // merged-away leftovers (a retired input's postamble survives until its
    // block happens to be erased). Two complementary pieces of evidence,
    // both persisted in the preambles:
    //
    // * `merged_from` — exact: every run a sealed output names as input is
    //   dead, its entries live on in the output. A sealed run contributes
    //   its input list whether or not it is itself still live (a dead
    //   intermediate's inputs died before it did).
    // * span containment — transitive: merging is laminar and live spans
    //   are pairwise disjoint (scheduler invariant 4), so a candidate is a
    //   merged-away leftover **iff** its `[supersedes_since,
    //   supersedes_upto]` span is strictly contained in a *live*
    //   candidate's span. This catches leftovers whose direct superseder
    //   has already been erased from flash (taking its `merged_from` list
    //   with it): the newest sealed output of any merge chain is still on
    //   flash (live pages are never obsoleted before their run is merged
    //   away) and its span contains every leftover below it.
    //
    // Containment tests the candidate's *span*, never its own creation
    // time: output identities are reserved at plan time, so a job reserved
    // early can seal with a `created_seq` lying inside a later-planned
    // job's span even though its data (old runs, disjoint span) was never
    // folded there. Testing `created_seq ∈ superseder interval` — sound
    // back when a tree drained all pending work before every flush — would
    // now kill such runs and silently revive stale validity bits.
    //
    // Newest-first order guarantees containers are accepted before their
    // leftovers are tested: a reservation happens after every transitive
    // input already exists, so a container's `created_seq` exceeds theirs.
    per_shard
        .into_iter()
        .map(|mut candidates| {
            candidates.sort_by_key(|c| std::cmp::Reverse(c.meta.created_seq));
            let mut dead: HashSet<RunId> = HashSet::new();
            let mut live_spans: Vec<(u64, u64)> = Vec::new();
            let mut live: Vec<Run> = Vec::new();
            for c in candidates {
                let (since, upto) = c.meta.span();
                let gone = dead.contains(&c.meta.id)
                    || live_spans
                        .iter()
                        .any(|&(lo, hi)| lo <= since && upto <= hi && (lo, hi) != (since, upto));
                // Exact evidence applies regardless of the witness's own
                // fate (a dead intermediate's inputs died before it did);
                // inputs predate their output, so recording it after
                // testing cannot misjudge.
                dead.extend(c.meta.merged_from.iter().copied());
                if gone {
                    continue;
                }
                live_spans.push((since, upto));
                // Bloom filters are RAM-only and not persisted; recovered
                // runs carry none (queries stay correct at the paper's
                // probe-per-run bound) until merges rebuild them.
                live.push(Run {
                    meta: c.meta,
                    pages: c.pages,
                    entry_count: c.entry_count,
                    filter: None,
                });
            }
            live
        })
        .collect()
}
