//! Channel-sharded Logarithmic Gecko: one independent [`LogGecko`] tree per
//! shard, with block `b` owned by shard `b % shards`.
//!
//! When `shards == channels` the shard function coincides with
//! [`Geometry::channel_of`], so each shard's merge queue holds jobs whose
//! victim blocks live on one flash channel. Pumping every shard inside a
//! single device overlap window then models the channels merging
//! concurrently: each shard's page-IOs land on its own channel lane and the
//! wall-clock charge is the max lane, not the sum (see
//! `docs/CONCURRENCY.md`).
//!
//! Every operation routes to exactly one shard (invalidations, erases, GC
//! queries are all per-block), so shard trees never share state and the
//! sharded store is *logically* equivalent to a single tree: the same
//! queries return the same bitmaps. Physical layout differs — each shard
//! flushes and merges on its own cadence — which is why the equivalence
//! property tests compare query bits and settled invariants, not bytes
//! (`tests/sharded.rs`). With `shards == 1` the layout is byte-identical to
//! a plain [`LogGecko`] by construction: shard 0 sees the identical
//! operation sequence.

use super::{Bitmap, GeckoConfig, GeckoStats, LogGecko, Run};
use crate::validity::{MetaSink, ValidityStore};
use flash_sim::{BlockId, FlashDevice, Geometry, IoPurpose, Ppn};
use std::collections::HashMap;

/// A validity store split into `shards` independent [`LogGecko`] trees.
#[derive(Debug)]
pub struct ShardedGecko {
    shards: Vec<LogGecko>,
    geo: Geometry,
}

impl ShardedGecko {
    /// Create `cfg.shards` empty trees. Each tree uses the full-device
    /// geometry for entry sizing (a shard's entries are identical to the
    /// single-tree layout's); only the key population is partitioned.
    pub fn new(geo: Geometry, cfg: GeckoConfig) -> Self {
        cfg.validate(&geo);
        let shards = (0..cfg.shards.max(1))
            .map(|_| LogGecko::new(geo, cfg))
            .collect();
        ShardedGecko { shards, geo }
    }

    /// Reassemble from per-shard recovered trees (recovery partitions the
    /// run candidates by shard before rebuilding each tree).
    pub fn from_shards(geo: Geometry, shards: Vec<LogGecko>) -> Self {
        assert!(!shards.is_empty(), "a sharded store needs at least 1 shard");
        ShardedGecko { shards, geo }
    }

    /// The shard owning `block`: `block % shards`. Equal to
    /// [`Geometry::channel_of`] when `shards == channels`.
    pub fn shard_of(&self, block: BlockId) -> usize {
        (block.0 % self.shards.len() as u32) as usize
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard trees, in shard order.
    pub fn shard_trees(&self) -> &[LogGecko] {
        &self.shards
    }

    /// Mutable access to one shard's tree (tests, recovery refill).
    pub fn shard_mut(&mut self, idx: usize) -> &mut LogGecko {
        &mut self.shards[idx]
    }

    /// Configuration in effect (identical across shards).
    pub fn config(&self) -> GeckoConfig {
        self.shards[0].config()
    }

    /// Lifetime counters summed over all shards.
    pub fn stats(&self) -> GeckoStats {
        let mut total = GeckoStats::default();
        for s in &self.shards {
            total.buffer_inserts += s.stats.buffer_inserts;
            total.flushes += s.stats.flushes;
            total.merges += s.stats.merges;
            total.queries += s.stats.queries;
            total.entries_dropped += s.stats.entries_dropped;
            total.batch_queries += s.stats.batch_queries;
            total.bloom_skips += s.stats.bloom_skips;
            total.fence_probes += s.stats.fence_probes;
            total.merge_pages_stepped += s.stats.merge_pages_stepped;
            total.merge_stall_drains += s.stats.merge_stall_drains;
        }
        total
    }

    /// The conservative flush watermark: the *oldest* shard flush. Recovery
    /// must replay host activity from the point where the *least* advanced
    /// shard last emptied its buffer, so the aggregate watermark is the
    /// minimum — any shard with a newer watermark simply re-absorbs
    /// duplicates idempotently.
    pub fn last_flush_seq(&self) -> u64 {
        self.shards
            .iter()
            .map(LogGecko::last_flush_seq)
            .min()
            .unwrap_or(0)
    }

    /// Per-shard flush watermarks, in shard order (recovery uses these to
    /// bound each shard's buffer-refill window independently).
    pub fn shard_flush_seqs(&self) -> Vec<u64> {
        self.shards.iter().map(LogGecko::last_flush_seq).collect()
    }

    /// Total entries buffered across all shards.
    pub fn buffer_len(&self) -> usize {
        self.shards.iter().map(LogGecko::buffer_len).sum()
    }

    /// Total flash pages occupied by live runs across all shards.
    pub fn total_run_pages(&self) -> u64 {
        self.shards.iter().map(LogGecko::total_run_pages).sum()
    }

    /// Total live entries across all shards' runs.
    pub fn total_run_entries(&self) -> u64 {
        self.shards.iter().map(LogGecko::total_run_entries).sum()
    }

    /// All live runs of every shard (no global order guarantee — data-age
    /// order is only meaningful within a shard).
    pub fn all_runs(&self) -> impl Iterator<Item = &Run> {
        self.shards.iter().flat_map(LogGecko::runs_newest_first)
    }

    /// Integrated-RAM footprint: sum of the shard trees'.
    pub fn ram_bytes(&self) -> u64 {
        self.shards.iter().map(LogGecko::ram_bytes).sum()
    }

    /// Report an invalidated physical page to its owning shard.
    pub fn mark_invalid(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppn: Ppn) {
        let shard = self.shard_of(self.geo.block_of(ppn));
        self.shards[shard].mark_invalid(dev, sink, ppn);
    }

    /// Report an erased block to its owning shard.
    pub fn note_erase(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, block: BlockId) {
        let shard = self.shard_of(block);
        self.shards[shard].note_erase(dev, sink, block);
    }

    /// GC query, routed to the owning shard.
    pub fn gc_query(&mut self, dev: &mut FlashDevice, block: BlockId) -> Bitmap {
        let shard = self.shard_of(block);
        self.shards[shard].gc_query(dev, block)
    }

    /// GC query with an explicit IO purpose, routed to the owning shard.
    pub fn gc_query_with_purpose(
        &mut self,
        dev: &mut FlashDevice,
        block: BlockId,
        purpose: IoPurpose,
    ) -> Bitmap {
        let shard = self.shard_of(block);
        self.shards[shard].gc_query_with_purpose(dev, block, purpose)
    }

    /// Batched GC query: partition the victim list by shard, run each
    /// shard's sub-batch (keeping that shard's probe coalescing), and
    /// reassemble results in caller order.
    pub fn gc_query_batch(&mut self, dev: &mut FlashDevice, blocks: &[BlockId]) -> Vec<Bitmap> {
        self.gc_query_batch_with_purpose(dev, blocks, IoPurpose::ValidityQuery)
    }

    /// [`ShardedGecko::gc_query_batch`] with an explicit IO purpose.
    pub fn gc_query_batch_with_purpose(
        &mut self,
        dev: &mut FlashDevice,
        blocks: &[BlockId],
        purpose: IoPurpose,
    ) -> Vec<Bitmap> {
        let n = self.shards.len();
        let mut by_shard: Vec<Vec<(usize, BlockId)>> = vec![Vec::new(); n];
        for (i, &b) in blocks.iter().enumerate() {
            by_shard[self.shard_of(b)].push((i, b));
        }
        let mut results: Vec<Option<Bitmap>> = blocks.iter().map(|_| None).collect();
        for (shard, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let sub: Vec<BlockId> = group.iter().map(|&(_, b)| b).collect();
            let bitmaps = self.shards[shard].gc_query_batch_with_purpose(dev, &sub, purpose);
            for ((i, _), bm) in group.into_iter().zip(bitmaps) {
                results[i] = Some(bm);
            }
        }
        results.into_iter().map(Option::unwrap).collect()
    }

    /// Linear-scan baseline query, routed to the owning shard.
    pub fn gc_query_naive(&mut self, dev: &mut FlashDevice, block: BlockId) -> Bitmap {
        let shard = self.shard_of(block);
        self.shards[shard].gc_query_naive(dev, block)
    }

    /// Flush every shard's buffer. Shards flush independently in steady
    /// state (each tracks its own fill); this forces all of them, for
    /// shutdown/checkpoint quiescence.
    pub fn flush(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        for s in &mut self.shards {
            s.flush(dev, sink);
        }
    }

    /// Advance every shard's pending merge work by one bounded slice each,
    /// inside **one** device overlap window: with `shards == channels`,
    /// shard `i`'s page-IOs land on channel `i`'s lane, so the simulated
    /// wall-clock charge for the whole sweep is the busiest lane — the
    /// per-channel merge queues drain concurrently, which is the point of
    /// sharding by channel. Returns `true` while any shard has work left.
    pub fn pump_merges(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        budget: u64,
    ) -> bool {
        let any_pending = self.shards.iter().any(|s| s.merge_jobs_pending() > 0);
        if !any_pending {
            return false;
        }
        dev.begin_overlap();
        let mut more = false;
        for s in &mut self.shards {
            more |= s.pump_merges(dev, sink, budget);
        }
        dev.end_overlap();
        more
    }

    /// Run all shards' pending merge work to completion (quiescence for
    /// shutdown/recovery/tests). Delegates to each shard's drain so the
    /// forced-stall accounting matches the single tree's exactly.
    pub fn drain_merges(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        if self.merge_jobs_pending() == 0 {
            return;
        }
        dev.begin_overlap();
        for s in &mut self.shards {
            s.drain_merges(dev, sink);
        }
        dev.end_overlap();
    }

    /// Pending incremental merge work across all shards, in page-IOs.
    pub fn merge_backlog_pages(&self) -> u64 {
        self.shards.iter().map(LogGecko::merge_backlog_pages).sum()
    }

    /// Merge jobs queued or in flight across all shards.
    pub fn merge_jobs_pending(&self) -> usize {
        self.shards.iter().map(LogGecko::merge_jobs_pending).sum()
    }

    /// Unsealed merge-output pages across all shards (crash-orphan count).
    pub fn unsealed_merge_pages(&self) -> u64 {
        self.shards.iter().map(LogGecko::unsealed_merge_pages).sum()
    }

    /// BVC recovery scan: union of every shard's full-bitmap scan. Shards
    /// partition the block space, so the per-shard maps are disjoint.
    pub fn scan_all_bitmaps(
        &mut self,
        dev: &mut FlashDevice,
        purpose: IoPurpose,
    ) -> HashMap<BlockId, Bitmap> {
        let mut all = HashMap::new();
        for s in &mut self.shards {
            all.extend(s.scan_all_bitmaps(dev, purpose));
        }
        all
    }

    /// Seed the owning shard's buffer with a recovered erase marker.
    pub fn recover_erase_marker(&mut self, block: BlockId) {
        let shard = self.shard_of(block);
        self.shards[shard].recover_erase_marker(block);
    }

    /// Seed the owning shard's buffer with a recovered invalidation.
    pub fn recover_invalidation(&mut self, ppn: Ppn) {
        let shard = self.shard_of(self.geo.block_of(ppn));
        self.shards[shard].recover_invalidation(ppn);
    }
}

/// A [`ValidityStore`] façade over [`ShardedGecko`].
impl ValidityStore for ShardedGecko {
    fn mark_invalid(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppn: Ppn) {
        ShardedGecko::mark_invalid(self, dev, sink, ppn);
    }

    fn mark_invalid_batch(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, ppns: &[Ppn]) {
        // Partition by shard and forward each sub-batch whole, preserving
        // the no-straddled-flush guarantee *within* each shard (each shard
        // flushes on its own fill, so cross-shard atomicity is not a
        // meaningful notion here).
        let n = self.shards.len();
        let mut by_shard: Vec<Vec<Ppn>> = vec![Vec::new(); n];
        for &ppn in ppns {
            by_shard[self.shard_of(self.geo.block_of(ppn))].push(ppn);
        }
        for (shard, group) in by_shard.into_iter().enumerate() {
            if !group.is_empty() {
                self.shards[shard].mark_invalid_batch(dev, sink, &group);
            }
        }
    }

    fn note_erase(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink, block: BlockId) {
        ShardedGecko::note_erase(self, dev, sink, block);
    }

    fn gc_query(
        &mut self,
        dev: &mut FlashDevice,
        _sink: &mut dyn MetaSink,
        block: BlockId,
    ) -> Bitmap {
        ShardedGecko::gc_query(self, dev, block)
    }

    fn gc_query_batch(
        &mut self,
        dev: &mut FlashDevice,
        _sink: &mut dyn MetaSink,
        blocks: &[BlockId],
    ) -> Vec<Bitmap> {
        ShardedGecko::gc_query_batch(self, dev, blocks)
    }

    fn ram_bytes(&self) -> u64 {
        ShardedGecko::ram_bytes(self)
    }

    fn name(&self) -> &'static str {
        "logarithmic-gecko-sharded"
    }

    fn flush(&mut self, dev: &mut FlashDevice, sink: &mut dyn MetaSink) {
        ShardedGecko::flush(self, dev, sink);
    }
}
