//! # flash-sim
//!
//! An event-counting NAND flash device simulator, built as the substrate for
//! the GeckoFTL reproduction (Dayan, Bonnet, Idreos — SIGMOD 2016).
//!
//! The paper evaluates FTL designs inside the EagleTree simulation framework.
//! This crate plays the same role: it models a NAND flash device precisely
//! enough that flash-translation-layer algorithms running on top of it are
//! subject to the real constraints of flash memory, and it accounts every
//! internal IO by *purpose* so that write-amplification can be decomposed the
//! way the paper's evaluation does.
//!
//! ## Modelled flash idiosyncrasies (paper §2)
//!
//! 1. The minimum granularity of reads and writes is a flash page.
//! 2. A page cannot be rewritten until its containing block is erased.
//! 3. Blocks have limited lifetime (erase counts are tracked).
//! 4. Writes within a block must be sequential (append-only write pointer).
//! 5. Reads and writes have asymmetric latencies (defaults: 100 µs page read,
//!    1 ms page write, 3 µs spare-area read, matching the paper's §5 model).
//!
//! Page *contents* are stored symbolically (typed payloads instead of raw
//! bytes) so that recovery algorithms can genuinely read state back from
//! flash after a simulated power failure, while byte sizes are accounted
//! analytically from the device [`Geometry`].
//!
//! ## Quick example
//!
//! ```
//! use flash_sim::{FlashDevice, Geometry, PageData, SpareInfo, IoPurpose, BlockId, Lpn};
//!
//! let geo = Geometry::tiny();
//! let mut dev = FlashDevice::new(geo);
//! let blk = BlockId(0);
//! let ppn = dev
//!     .write_page(blk, PageData::User { lpn: Lpn(7), version: 1 }, SpareInfo::User { lpn: Lpn(7), before: None }, IoPurpose::UserWrite)
//!     .unwrap();
//! let spare = dev.read_spare(ppn, IoPurpose::Recovery).unwrap();
//! assert_eq!(spare.info, SpareInfo::User { lpn: Lpn(7), before: None });
//! ```

pub mod block;
pub mod device;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod latency;
pub mod page;
pub mod stats;

pub use block::Block;
pub use device::FlashDevice;
pub use error::{FlashError, Result};
pub use fault::{EraseFault, FaultPlan, FaultStats, WriteFault};
/// Re-export of the telemetry crate (spans, histograms, metrics registry,
/// trace export) so device users need only one dependency.
pub use ftl_telemetry as telemetry;
pub use ftl_telemetry::{Histogram, IoOp, MetricsSnapshot, SpanKind, Telemetry, TraceEvent};
pub use geometry::{BlockId, Geometry, Lpn, PageOffset, Ppn};
pub use latency::{LatencyModel, SimClock};
pub use page::{MetaKind, PageData, Spare, SpareInfo};
pub use stats::{IoCounts, IoPurpose, IoStats, StatsSnapshot, WaBreakdown, WaCategory};
