//! Capacity sweeps: the data behind Figure 1 ("RAM-resident FTL metadata
//! and recovery time are increasing unsustainably as device capacity
//! grows").

use crate::ram::ram_model;
use crate::recovery::recovery_model;
use crate::FtlName;
use flash_sim::{Geometry, LatencyModel};

/// One capacity point of the Figure-1 curves.
#[derive(Clone, Debug, PartialEq)]
pub struct CapacityPoint {
    /// Device capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of blocks (`K`).
    pub blocks: u32,
    /// Total integrated RAM required, in bytes.
    pub ram_bytes: u64,
    /// Recovery time, in seconds.
    pub recovery_seconds: f64,
}

/// Sweep device capacity for one FTL, doubling `K` from `min_blocks` to
/// `max_blocks` while keeping the paper's B, P, R and cache configuration.
///
/// The cache is scaled with capacity at the paper's ratio (2¹⁹ entries per
/// 2 TB) so Figure 1 reflects a constant *fraction* of the logical space.
pub fn capacity_sweep(
    ftl: FtlName,
    min_blocks: u32,
    max_blocks: u32,
    dirty_fraction: f64,
) -> Vec<CapacityPoint> {
    let lat = LatencyModel::paper();
    let mut out = Vec::new();
    let mut k = min_blocks;
    while k <= max_blocks {
        let geo = Geometry::paper_scaled(k);
        let cache_entries =
            ((geo.logical_pages() as f64 * (1 << 19) as f64 / 375_809_638.0) as u64).max(64);
        let ram = ram_model(ftl, &geo, cache_entries);
        let rec = recovery_model(ftl, &geo, cache_entries, dirty_fraction);
        out.push(CapacityPoint {
            capacity_bytes: geo.physical_bytes(),
            blocks: k,
            ram_bytes: ram.total(),
            recovery_seconds: rec.total_seconds(&lat),
        });
        if k > max_blocks / 2 {
            break;
        }
        k *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_1_shape_for_lazyftl() {
        // 64 GB → 8 TB sweep.
        let pts = capacity_sweep(FtlName::LazyFtl, 1 << 17, 1 << 24, 0.1);
        assert!(pts.len() >= 7);
        // Monotonic growth in both metrics.
        for w in pts.windows(2) {
            assert!(w[1].ram_bytes > w[0].ram_bytes);
            assert!(w[1].recovery_seconds > w[0].recovery_seconds);
        }
        // "integrated RAM reemerges as a dominant cost for low-end devices
        // at capacities of ≈128 GB, at which point 4 MB of SRAM are needed"
        let at_128gb = pts
            .iter()
            .find(|p| p.capacity_bytes == 1 << 37)
            .expect("128 GB point");
        assert!(
            (3 * (1 << 20)..16 * (1 << 20)).contains(&at_128gb.ram_bytes),
            "RAM at 128 GB = {} MB",
            at_128gb.ram_bytes >> 20
        );
        // "recovery time becomes impractical at ≈2 TB, at which point
        // recovery takes tens of seconds."
        let at_2tb = pts
            .iter()
            .find(|p| p.capacity_bytes == 1 << 41)
            .expect("2 TB point");
        assert!(
            (10.0..120.0).contains(&at_2tb.recovery_seconds),
            "recovery at 2 TB = {:.1} s",
            at_2tb.recovery_seconds
        );
    }

    #[test]
    fn geckoftl_flattens_both_curves() {
        let lazy = capacity_sweep(FtlName::LazyFtl, 1 << 20, 1 << 23, 0.1);
        let gecko = capacity_sweep(FtlName::GeckoFtl, 1 << 20, 1 << 23, 0.1);
        for (l, g) in lazy.iter().zip(&gecko) {
            assert!(g.ram_bytes < l.ram_bytes / 2, "RAM at {} blocks", l.blocks);
            assert!(
                g.recovery_seconds < l.recovery_seconds,
                "recovery at {} blocks",
                l.blocks
            );
        }
    }
}
