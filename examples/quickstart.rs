//! Quickstart: build GeckoFTL on a simulated flash device, write and read
//! some pages, survive a power failure, and inspect the costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use geckoftl::flash_sim::{Geometry, Lpn};
use geckoftl::geckoftl_core::ftl::FtlEngine;
use geckoftl::geckoftl_core::recovery::gecko_recover;

fn main() {
    // A small simulated device: 256 blocks × 128 pages × 4 KB = 128 MB,
    // with the paper's 70 % logical/physical ratio.
    let geo = Geometry::new(256, 128, 4096, 0.7);
    let mut ftl = FtlEngine::geckoftl(geo);
    println!(
        "device: {} blocks × {} pages × {} B  ({} logical pages exposed)",
        geo.blocks,
        geo.pages_per_block,
        geo.page_bytes,
        geo.logical_pages()
    );

    // Write every logical page once, then update a hot subset.
    for lpn in 0..geo.logical_pages() as u32 {
        ftl.write(Lpn(lpn), u64::from(lpn));
    }
    for round in 1..=50u64 {
        for lpn in 0..500u32 {
            ftl.write(Lpn(lpn), round * 1000 + u64::from(lpn));
        }
    }
    assert_eq!(ftl.read(Lpn(42)), Some(50 * 1000 + 42));
    println!(
        "after {} writes: {} GC operations, {} checkpoints, {} syncs",
        ftl.counters.writes,
        ftl.counters.gc_operations,
        ftl.counters.checkpoints,
        ftl.counters.syncs
    );

    // Integrated RAM, as the paper accounts it.
    let ram = ftl.ram_report();
    println!(
        "integrated RAM: GMD {} B + cache {} B + BVC {} B + gecko {} B = {} B",
        ram.gmd,
        ram.cache,
        ram.bvc,
        ram.validity,
        ram.total()
    );

    // Write-amplification decomposition (the paper's §5 metric).
    let wa = ftl.device().stats().snapshot().wa_breakdown(10.0);
    println!(
        "write-amplification: user {:.3} + translation {:.3} + validity {:.3} = {:.3}",
        wa.user,
        wa.translation,
        wa.validity,
        wa.total()
    );

    // Pull the plug. All RAM state is gone; only flash survives.
    let cfg = ftl.config();
    let gecko_cfg = ftl.backend().gecko().expect("gecko").config();
    let dev = ftl.crash();
    let (mut recovered, report) = gecko_recover(dev, cfg, gecko_cfg);
    println!(
        "power failure → GeckoRec recovered in {:.1} simulated ms \
         ({} spare reads, {} page reads, {} cache entries recreated)",
        report.total_secs() * 1e3,
        report.total_spare_reads(),
        report.total_page_reads(),
        report.recovered_entries
    );

    // Data is intact.
    assert_eq!(recovered.read(Lpn(42)), Some(50 * 1000 + 42));
    assert_eq!(recovered.read(Lpn(499)), Some(50 * 1000 + 499));
    println!("all data verified after recovery ✔");
}
