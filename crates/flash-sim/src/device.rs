//! The flash device: geometry + blocks + clock + purpose-tagged statistics.

use crate::block::Block;
use crate::error::{FlashError, Result};
use crate::fault::{EraseFault, FaultPlan, FaultStats, WriteFault};
use crate::geometry::{BlockId, Geometry, PageOffset, Ppn};
use crate::latency::{LatencyModel, SimClock};
use crate::page::{PageData, Spare, SpareInfo};
use crate::stats::{IoPurpose, IoStats};
use ftl_telemetry::{IoOp, Telemetry};

/// A simulated NAND flash device.
///
/// The device is the only *persistent* component of the simulation: a power
/// failure is modelled by dropping all FTL RAM state while keeping the
/// [`FlashDevice`] intact, then running a recovery algorithm that may only
/// learn about the world through `read_page` / `read_spare` calls (which are
/// duly charged to [`IoPurpose::Recovery`]).
#[derive(Clone, Debug)]
pub struct FlashDevice {
    geo: Geometry,
    blocks: Vec<Block>,
    latency: LatencyModel,
    clock: SimClock,
    stats: IoStats,
    seq: u64,
    erase_budget: Option<u32>,
    /// Per-channel accumulated latency of the overlap window in flight
    /// (`None` outside a window). See [`FlashDevice::begin_overlap`].
    overlap_lanes: Option<Vec<f64>>,
    /// Nesting depth of overlap windows: inner `begin`/`end` pairs join the
    /// outermost window's lanes, and only the outermost `end` advances the
    /// clock. This is how per-channel time domains compose: each shard's
    /// merge pump opens its own window, and a multi-shard pump wraps them
    /// all in one outer window — the sync point where the domains join.
    overlap_depth: u32,
    /// Scheduled hardware faults (see [`crate::fault`]).
    fault: FaultPlan,
    /// Faults actually delivered so far.
    fault_stats: FaultStats,
    /// Lifetime program attempts (the write-fault attempt index).
    writes_attempted: u64,
    /// Lifetime erase attempts (the erase-fault attempt index).
    erases_attempted: u64,
    /// Bad-block table. Persistent like the erase counters (real firmware
    /// keeps it in spare areas / a reserved block), so it survives a crash
    /// and recovery can consult it without IO.
    bad: Vec<bool>,
    /// Snapshot captured by a torn-write or mid-erase power-cut fault; see
    /// [`crate::fault`] for the mechanism.
    crash_image: Option<Box<FlashDevice>>,
    /// Observability sink: per-channel IO events and FTL spans. Disabled by
    /// default (no allocations, no recording); purely observational — it
    /// never advances the clock or touches stats, so enabling it cannot
    /// change simulation outcomes.
    telemetry: Telemetry,
}

impl FlashDevice {
    /// Create a device with the paper's latency model.
    pub fn new(geo: Geometry) -> Self {
        FlashDevice::with_latency(geo, LatencyModel::paper())
    }

    /// Create a device with a custom latency model.
    pub fn with_latency(geo: Geometry, latency: LatencyModel) -> Self {
        FlashDevice {
            geo,
            blocks: (0..geo.blocks)
                .map(|_| Block::new(geo.pages_per_block))
                .collect(),
            latency,
            clock: SimClock::default(),
            stats: IoStats::default(),
            seq: 1,
            erase_budget: None,
            overlap_lanes: None,
            overlap_depth: 0,
            fault: FaultPlan::default(),
            fault_stats: FaultStats::default(),
            writes_attempted: 0,
            erases_attempted: 0,
            bad: vec![false; geo.blocks as usize],
            crash_image: None,
            telemetry: Telemetry::default(),
        }
    }

    /// Open a channel-overlap window: until [`FlashDevice::end_overlap`],
    /// each operation's latency accumulates on its block's channel lane
    /// instead of advancing the clock, and the window closes by advancing
    /// the clock once by the *busiest lane* — operations on distinct
    /// channels overlap, operations on the same channel serialize. This is
    /// how background work (e.g. incremental Gecko merge steps) scheduled
    /// across `Geometry::channels` shows up as parallel in simulated time.
    ///
    /// IO counts and per-purpose busy time are recorded exactly as outside
    /// a window; only the clock sees the overlap. Windows nest: an inner
    /// `begin`/`end` pair joins the outermost window's lanes instead of
    /// opening fresh ones, so independent work wrapped in one outer window
    /// (e.g. several validity shards' merge pumps) overlaps across channels
    /// while same-channel work still serializes.
    pub fn begin_overlap(&mut self) {
        self.overlap_depth += 1;
        if self.overlap_lanes.is_none() {
            self.overlap_lanes = Some(vec![0.0; self.geo.channels as usize]);
        }
    }

    /// Close one overlap window level. The outermost close — the sync point
    /// where the per-channel time domains join — advances the clock by the
    /// busiest channel's accumulated latency and returns that elapsed time
    /// in µs; inner closes return 0 and leave the lanes accumulating.
    pub fn end_overlap(&mut self) -> f64 {
        assert!(self.overlap_depth > 0, "end_overlap without begin_overlap");
        self.overlap_depth -= 1;
        if self.overlap_depth > 0 {
            return 0.0;
        }
        let lanes = self
            .overlap_lanes
            .take()
            .expect("end_overlap without begin_overlap");
        let elapsed = lanes.iter().copied().fold(0.0, f64::max);
        self.clock.advance_us(elapsed);
        elapsed
    }

    /// Charge one operation's latency: onto the open overlap window's lane
    /// for `block`'s channel, or straight onto the clock. The same charge
    /// point records the operation as a telemetry channel-lane event, so a
    /// trace's per-purpose duration sums reconcile with
    /// [`IoStats::busy_us`] exactly.
    fn charge_us(&mut self, block: BlockId, purpose: IoPurpose, op: IoOp, us: f64) {
        self.stats.record_busy_us(purpose, us);
        let ch = self.geo.channel_of(block) as usize;
        if self.telemetry.is_enabled() {
            // Start time mirrors the clock semantics: inside an overlap
            // window the operation begins after the work already queued on
            // its channel's lane; outside, the clock itself is the start.
            let start = match &self.overlap_lanes {
                Some(lanes) => self.clock.now_us() + lanes[ch],
                None => self.clock.now_us(),
            };
            self.telemetry
                .record_io(purpose.index() as u8, op, ch as u16, start, us);
        }
        match &mut self.overlap_lanes {
            Some(lanes) => lanes[ch] += us,
            None => self.clock.advance_us(us),
        }
    }

    /// Configure a per-block erase budget; further erases return
    /// [`FlashError::BlockWornOut`]. Used by wear-leveling stress tests.
    pub fn set_erase_budget(&mut self, budget: Option<u32>) {
        self.erase_budget = budget;
    }

    /// Device geometry.
    pub fn geometry(&self) -> Geometry {
        self.geo
    }

    /// Latency model in effect.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Simulated clock (advanced by every IO).
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Mutable statistics (the FTL bumps `logical_writes` here).
    pub fn stats_mut(&mut self) -> &mut IoStats {
        &mut self.stats
    }

    /// Telemetry sink (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mutable telemetry sink: enable recording, record FTL spans.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// Current global write sequence number ("device timestamp").
    pub fn now_seq(&self) -> u64 {
        self.seq
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Reserve and consume one sequence number without performing IO.
    ///
    /// Used to mint run identities at merge *plan* time, so several merge
    /// jobs can be in flight per validity tree without two write phases
    /// minting the same id from `now_seq`. The reservation advances the
    /// sequence, which is what keeps reserved ids unique against crashes:
    /// every page programmed after a reservation `R` carries a spare
    /// sequence `> R`, so no later-minted identity can collide with `R`.
    /// (The simulator's crash image clones the counter; real firmware
    /// re-deriving its sequence from the max spare seq after power loss
    /// regains the same guarantee by skipping ahead of it.)
    pub fn reserve_seq(&mut self) -> u64 {
        self.bump_seq()
    }

    fn check_block(&self, block: BlockId) -> Result<()> {
        if block.0 < self.geo.blocks {
            Ok(())
        } else {
            Err(FlashError::BlockOutOfRange(block))
        }
    }

    fn check_ppn(&self, ppn: Ppn) -> Result<()> {
        if self.geo.contains(ppn) {
            Ok(())
        } else {
            Err(FlashError::OutOfRange(ppn))
        }
    }

    /// Program the next free page of `block` (sequential-write constraint).
    /// Returns the physical page number that was written.
    ///
    /// Subject to fault injection: a scheduled [`WriteFault::ProgramFail`]
    /// (or a write aimed at a bad block) fails with
    /// [`FlashError::ProgramFailed`] after charging the program latency,
    /// and a scheduled torn-write fault captures a crash image with the
    /// in-flight page torn while this live write completes normally.
    pub fn write_page(
        &mut self,
        block: BlockId,
        data: PageData,
        info: SpareInfo,
        purpose: IoPurpose,
    ) -> Result<Ppn> {
        self.check_block(block)?;
        if self.blocks[block.0 as usize].is_full() {
            return Err(FlashError::BlockFull(block));
        }
        let attempt = self.writes_attempted;
        self.writes_attempted += 1;
        let fault = self.fault.write_fault(attempt);
        if self.bad[block.0 as usize] || fault == Some(WriteFault::ProgramFail) {
            // A failed program costs real time, persists nothing (the write
            // pointer does not advance) and takes the whole block out of
            // service; writes aimed at an already-bad block always fail.
            self.bad[block.0 as usize] = true;
            self.fault_stats.program_failures += 1;
            self.charge_us(block, purpose, IoOp::PageWrite, self.latency.page_write_us);
            return Err(FlashError::ProgramFailed(block));
        }
        let seq = self.bump_seq();
        if let Some(f @ (WriteFault::TornData | WriteFault::TornSpare)) = fault {
            let mut image = self.clone();
            image.fault = FaultPlan::default();
            image.crash_image = None;
            let (torn_data, torn_spare) = match f {
                WriteFault::TornData => (None, Some(Spare { seq, info })),
                _ => (Some(data.clone()), None),
            };
            image.blocks[block.0 as usize].append_torn(torn_data, torn_spare);
            self.crash_image = Some(Box::new(image));
            self.fault_stats.torn_writes += 1;
        }
        let off = self.blocks[block.0 as usize].append(block, data, Spare { seq, info })?;
        self.stats.record_page_write(purpose);
        self.charge_us(block, purpose, IoOp::PageWrite, self.latency.page_write_us);
        Ok(self.geo.ppn(block, off))
    }

    /// Read a programmed page. Returns a cheap clone of the payload.
    pub fn read_page(&mut self, ppn: Ppn, purpose: IoPurpose) -> Result<PageData> {
        self.check_ppn(ppn)?;
        let block = self.geo.block_of(ppn);
        let off = self.geo.offset_of(ppn);
        let page = self.blocks[block.0 as usize].page(off);
        let data = page.data.clone().ok_or(FlashError::PageNotWritten(ppn))?;
        self.stats.record_page_read(purpose);
        self.charge_us(block, purpose, IoOp::PageRead, self.latency.page_read_us);
        Ok(data)
    }

    /// Read only the spare area of a programmed page (≈32× cheaper than a
    /// full page read; the workhorse of the paper's recovery algorithms).
    pub fn read_spare(&mut self, ppn: Ppn, purpose: IoPurpose) -> Result<Spare> {
        self.check_ppn(ppn)?;
        let block = self.geo.block_of(ppn);
        let off = self.geo.offset_of(ppn);
        let page = self.blocks[block.0 as usize].page(off);
        let spare = page.spare.ok_or(FlashError::PageNotWritten(ppn))?;
        self.stats.record_spare_read(purpose);
        self.charge_us(block, purpose, IoOp::SpareRead, self.latency.spare_read_us);
        Ok(spare)
    }

    /// Erase a whole block, freeing all of its pages.
    ///
    /// Subject to fault injection: a scheduled [`EraseFault::Fail`] (or an
    /// erase of a bad block) fails with [`FlashError::EraseFailed`] leaving
    /// the contents intact, and a scheduled [`EraseFault::Crash`] captures
    /// a crash image with the erase just applied while live execution
    /// continues.
    pub fn erase_block(&mut self, block: BlockId, purpose: IoPurpose) -> Result<()> {
        self.check_block(block)?;
        let attempt = self.erases_attempted;
        self.erases_attempted += 1;
        let fault = self.fault.erase_fault(attempt);
        if self.bad[block.0 as usize] || fault == Some(EraseFault::Fail) {
            self.bad[block.0 as usize] = true;
            self.fault_stats.erase_failures += 1;
            self.charge_us(block, purpose, IoOp::Erase, self.latency.erase_us);
            return Err(FlashError::EraseFailed(block));
        }
        if let Some(budget) = self.erase_budget {
            if self.blocks[block.0 as usize].erase_count() >= budget {
                return Err(FlashError::BlockWornOut(block));
            }
        }
        let seq = self.bump_seq();
        self.blocks[block.0 as usize].erase(seq);
        self.stats.record_erase(purpose);
        self.charge_us(block, purpose, IoOp::Erase, self.latency.erase_us);
        if fault == Some(EraseFault::Crash) {
            let mut image = self.clone();
            image.fault = FaultPlan::default();
            image.crash_image = None;
            self.crash_image = Some(Box::new(image));
            self.fault_stats.erase_crashes += 1;
        }
        Ok(())
    }

    /// Install a fault plan (replacing any previous one). Attempt indices
    /// keep counting from the device's construction, so installing a plan
    /// mid-run schedules faults relative to the *lifetime* attempt counts —
    /// see [`FlashDevice::write_attempts`] / [`FlashDevice::erase_attempts`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// The fault plan currently installed.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault
    }

    /// Counters of faults actually delivered.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// Lifetime program attempts (including failed ones) — the index space
    /// of [`FaultPlan::on_write`].
    pub fn write_attempts(&self) -> u64 {
        self.writes_attempted
    }

    /// Lifetime erase attempts (including failed ones) — the index space of
    /// [`FaultPlan::on_erase`].
    pub fn erase_attempts(&self) -> u64 {
        self.erases_attempted
    }

    /// Whether a block is marked bad. Free to query (the bad-block table is
    /// firmware-resident, persisted like erase counters), so recovery can
    /// consult it without IO.
    pub fn is_bad(&self, block: BlockId) -> bool {
        self.bad[block.0 as usize]
    }

    /// Mark a block bad by hand (tests / harness setup).
    pub fn mark_bad(&mut self, block: BlockId) {
        self.bad[block.0 as usize] = true;
    }

    /// Number of blocks currently marked bad.
    pub fn bad_blocks(&self) -> usize {
        self.bad.iter().filter(|&&b| b).count()
    }

    /// Whether a fault captured a crash image since the last
    /// [`FlashDevice::take_crash_image`].
    pub fn crash_image_ready(&self) -> bool {
        self.crash_image.is_some()
    }

    /// Take the pending crash image, if any: the device state as a power
    /// cut inside a faulted operation would have left it. Feed it to
    /// recovery in place of the live device (which is abandoned — its
    /// history past the fault never happened).
    pub fn take_crash_image(&mut self) -> Option<FlashDevice> {
        self.crash_image.take().map(|b| *b)
    }

    /// Block-level inspection: number of pages programmed since last erase.
    ///
    /// This is free (no IO charge): firmware can detect erased pages at
    /// negligible cost, and the recovery algorithms that need it have already
    /// paid for a spare-area scan of the block.
    pub fn written_pages(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].written_pages()
    }

    /// Whether the block's write pointer has reached the end.
    pub fn block_is_full(&self, block: BlockId) -> bool {
        self.blocks[block.0 as usize].is_full()
    }

    /// Erase count of a block (persisted across power failures in a spare
    /// area, per Appendix D).
    pub fn erase_count(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].erase_count()
    }

    /// Sequence number of the block's last erase.
    pub fn erase_seq(&self, block: BlockId) -> u64 {
        self.blocks[block.0 as usize].erase_seq()
    }

    /// Whether a page is currently programmed (readable).
    pub fn is_written(&self, ppn: Ppn) -> bool {
        let block = self.geo.block_of(ppn);
        let off = self.geo.offset_of(ppn);
        self.blocks[block.0 as usize].page(off).is_written()
    }

    /// Peek at a page without charging IO. **Test/debug only** — recovery
    /// algorithms must use [`FlashDevice::read_page`].
    pub fn peek_page(&self, ppn: Ppn) -> Option<&PageData> {
        let block = self.geo.block_of(ppn);
        let off = self.geo.offset_of(ppn);
        self.blocks[block.0 as usize].page(off).data.as_ref()
    }

    /// Peek at a spare area without charging IO. **Test/debug only.**
    pub fn peek_spare(&self, ppn: Ppn) -> Option<Spare> {
        let block = self.geo.block_of(ppn);
        let off = self.geo.offset_of(ppn);
        self.blocks[block.0 as usize].page(off).spare
    }

    /// Iterate the programmed pages of one block in write order, without
    /// charging IO. **Test/debug only.**
    pub fn peek_block_pages(&self, block: BlockId) -> impl Iterator<Item = (Ppn, &PageData)> {
        let geo = self.geo;
        let b = &self.blocks[block.0 as usize];
        (0..b.written_pages()).map(move |off| {
            let ppn = geo.ppn(block, PageOffset(off));
            (
                ppn,
                b.page(PageOffset(off))
                    .data
                    .as_ref()
                    .expect("written page has data"),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Lpn;

    fn dev() -> FlashDevice {
        FlashDevice::new(Geometry::tiny())
    }

    fn write_user(dev: &mut FlashDevice, block: u32, lpn: u32, version: u64) -> Ppn {
        dev.write_page(
            BlockId(block),
            PageData::User {
                lpn: Lpn(lpn),
                version,
            },
            SpareInfo::User {
                lpn: Lpn(lpn),
                before: None,
            },
            IoPurpose::UserWrite,
        )
        .unwrap()
    }

    #[test]
    fn write_read_round_trip() {
        let mut d = dev();
        let ppn = write_user(&mut d, 3, 42, 7);
        assert_eq!(d.geometry().block_of(ppn), BlockId(3));
        let data = d.read_page(ppn, IoPurpose::UserRead).unwrap();
        assert_eq!(data.as_user(), Some((Lpn(42), 7)));
        let spare = d.read_spare(ppn, IoPurpose::Recovery).unwrap();
        assert_eq!(
            spare.info,
            SpareInfo::User {
                lpn: Lpn(42),
                before: None
            }
        );
    }

    #[test]
    fn sequential_write_constraint() {
        let mut d = dev();
        let p0 = write_user(&mut d, 0, 1, 1);
        let p1 = write_user(&mut d, 0, 2, 1);
        assert_eq!(p1.0, p0.0 + 1);
    }

    #[test]
    fn read_of_unwritten_page_fails() {
        let mut d = dev();
        assert!(matches!(
            d.read_page(Ppn(5), IoPurpose::UserRead),
            Err(FlashError::PageNotWritten(Ppn(5)))
        ));
        assert!(d.read_spare(Ppn(5), IoPurpose::Recovery).is_err());
    }

    #[test]
    fn block_fills_and_erase_frees() {
        let mut d = dev();
        let b = d.geometry().pages_per_block;
        for i in 0..b {
            write_user(&mut d, 0, i, 1);
        }
        assert!(d.block_is_full(BlockId(0)));
        let err = d.write_page(
            BlockId(0),
            PageData::User {
                lpn: Lpn(0),
                version: 2,
            },
            SpareInfo::User {
                lpn: Lpn(0),
                before: None,
            },
            IoPurpose::UserWrite,
        );
        assert_eq!(err, Err(FlashError::BlockFull(BlockId(0))));
        d.erase_block(BlockId(0), IoPurpose::GcMigrateUser).unwrap();
        assert_eq!(d.written_pages(BlockId(0)), 0);
        assert_eq!(d.erase_count(BlockId(0)), 1);
        write_user(&mut d, 0, 9, 3);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let mut d = dev();
        let p0 = write_user(&mut d, 0, 1, 1);
        let p1 = write_user(&mut d, 1, 2, 1);
        let s0 = d.read_spare(p0, IoPurpose::Recovery).unwrap();
        let s1 = d.read_spare(p1, IoPurpose::Recovery).unwrap();
        assert!(s1.seq > s0.seq);
        d.erase_block(BlockId(2), IoPurpose::GcMigrateUser).unwrap();
        assert!(d.erase_seq(BlockId(2)) > s1.seq);
    }

    #[test]
    fn clock_and_stats_account_io() {
        let mut d = dev();
        let ppn = write_user(&mut d, 0, 1, 1);
        d.read_page(ppn, IoPurpose::UserRead).unwrap();
        d.read_spare(ppn, IoPurpose::Recovery).unwrap();
        d.erase_block(BlockId(5), IoPurpose::GcMigrateUser).unwrap();
        // 1000 + 100 + 3 + 2000 µs
        assert!((d.clock().now_us() - 3103.0).abs() < 1e-9);
        assert_eq!(d.stats().counts(IoPurpose::UserWrite).page_writes, 1);
        assert_eq!(d.stats().counts(IoPurpose::UserRead).page_reads, 1);
        assert_eq!(d.stats().counts(IoPurpose::Recovery).spare_reads, 1);
        assert_eq!(d.stats().counts(IoPurpose::GcMigrateUser).erases, 1);
    }

    #[test]
    fn overlap_window_advances_clock_by_busiest_channel() {
        let geo = Geometry::tiny().with_channels(4);
        let mut d = FlashDevice::with_latency(geo, LatencyModel::paper());
        // Blocks 0..4 land on channels 0..4.
        let mut ppns = Vec::new();
        for b in 0..4 {
            ppns.push(write_user(&mut d, b, b, 1));
        }
        let before = d.clock().now_us();
        d.begin_overlap();
        for &p in &ppns {
            d.read_page(p, IoPurpose::ValidityMerge).unwrap();
        }
        let elapsed = d.end_overlap();
        // Four reads on four distinct channels overlap into one read time.
        assert!((elapsed - 100.0).abs() < 1e-9, "elapsed = {elapsed}");
        assert!((d.clock().now_us() - before - 100.0).abs() < 1e-9);
        // Counts and busy time stay serial: 4 reads, 400 µs busy.
        assert_eq!(d.stats().counts(IoPurpose::ValidityMerge).page_reads, 4);
        assert!((d.stats().busy_us(IoPurpose::ValidityMerge) - 400.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_window_serializes_same_channel() {
        let geo = Geometry::tiny().with_channels(4);
        let mut d = FlashDevice::with_latency(geo, LatencyModel::paper());
        let p0 = write_user(&mut d, 0, 1, 1); // channel 0
        let p1 = write_user(&mut d, 4, 2, 1); // channel 0 again (4 % 4)
        d.begin_overlap();
        d.read_page(p0, IoPurpose::ValidityMerge).unwrap();
        d.read_page(p1, IoPurpose::ValidityMerge).unwrap();
        let elapsed = d.end_overlap();
        assert!((elapsed - 200.0).abs() < 1e-9, "same-channel IO serializes");
    }

    #[test]
    fn busy_time_tracks_purposes_outside_windows() {
        let mut d = dev();
        let ppn = write_user(&mut d, 0, 1, 1);
        d.read_page(ppn, IoPurpose::UserRead).unwrap();
        let snap = d.stats().snapshot();
        d.read_spare(ppn, IoPurpose::Recovery).unwrap();
        let delta = d.stats().since(&snap);
        assert!((delta.busy_us(IoPurpose::Recovery) - 3.0).abs() < 1e-9);
        assert!((delta.busy_us(IoPurpose::UserRead)).abs() < 1e-9);
        assert!((d.stats().total_busy_us() - 1103.0).abs() < 1e-9);
    }

    #[test]
    fn erase_budget_enforced() {
        let mut d = dev();
        d.set_erase_budget(Some(1));
        d.erase_block(BlockId(0), IoPurpose::WearLevel).unwrap();
        assert_eq!(
            d.erase_block(BlockId(0), IoPurpose::WearLevel),
            Err(FlashError::BlockWornOut(BlockId(0)))
        );
    }

    #[test]
    fn program_fail_persists_nothing_and_marks_bad() {
        let mut d = dev();
        d.set_fault_plan(FaultPlan::new().on_write(1, WriteFault::ProgramFail));
        write_user(&mut d, 0, 1, 1);
        let before = d.clock().now_us();
        let err = d.write_page(
            BlockId(0),
            PageData::User {
                lpn: Lpn(2),
                version: 1,
            },
            SpareInfo::User {
                lpn: Lpn(2),
                before: None,
            },
            IoPurpose::UserWrite,
        );
        assert_eq!(err, Err(FlashError::ProgramFailed(BlockId(0))));
        // Nothing persisted, but the attempt cost real time.
        assert_eq!(d.written_pages(BlockId(0)), 1);
        assert!(d.clock().now_us() > before);
        assert!(d.is_bad(BlockId(0)));
        assert_eq!(d.bad_blocks(), 1);
        assert_eq!(d.fault_stats().program_failures, 1);
        // Once bad, every further write to the block fails too.
        let err = d.write_page(
            BlockId(0),
            PageData::User {
                lpn: Lpn(3),
                version: 1,
            },
            SpareInfo::User {
                lpn: Lpn(3),
                before: None,
            },
            IoPurpose::UserWrite,
        );
        assert_eq!(err, Err(FlashError::ProgramFailed(BlockId(0))));
        assert_eq!(d.fault_stats().program_failures, 2);
        // Other blocks are unaffected.
        write_user(&mut d, 1, 2, 1);
    }

    #[test]
    fn torn_data_write_captures_crash_image_and_live_continues() {
        let mut d = dev();
        d.set_fault_plan(FaultPlan::new().on_write(1, WriteFault::TornData));
        write_user(&mut d, 0, 1, 1);
        assert!(!d.crash_image_ready());
        let ppn = write_user(&mut d, 0, 2, 1);
        assert!(d.crash_image_ready());
        assert_eq!(d.fault_stats().torn_writes, 1);
        // Live device is oblivious: the write completed normally.
        assert!(d.is_written(ppn));
        assert_eq!(
            d.read_page(ppn, IoPurpose::UserRead).unwrap().as_user(),
            Some((Lpn(2), 1))
        );
        // The image holds the torn page: consumed, spare intact, data lost.
        let image = d.take_crash_image().unwrap();
        assert!(!d.crash_image_ready());
        assert_eq!(image.written_pages(BlockId(0)), 2);
        assert!(!image.is_written(ppn), "torn data area reads as unwritten");
        let spare = image.peek_spare(ppn).expect("spare survived");
        assert_eq!(
            spare.info,
            SpareInfo::User {
                lpn: Lpn(2),
                before: None
            }
        );
        // The torn page is the image's newest write: nothing after it.
        assert!(image.now_seq() <= d.now_seq());
        assert!(image.fault_plan().is_empty(), "images replay fault-free");
    }

    #[test]
    fn torn_spare_write_loses_identity_keeps_data() {
        let mut d = dev();
        d.set_fault_plan(FaultPlan::new().on_write(0, WriteFault::TornSpare));
        let ppn = write_user(&mut d, 0, 7, 1);
        let mut image = d.take_crash_image().unwrap();
        assert_eq!(image.written_pages(BlockId(0)), 1);
        assert!(image.peek_spare(ppn).is_none(), "spare area lost");
        assert!(image.read_spare(ppn, IoPurpose::Recovery).is_err());
        assert_eq!(
            image.peek_page(ppn).and_then(|p| p.as_user()),
            Some((Lpn(7), 1)),
            "data area survived"
        );
    }

    #[test]
    fn erase_fail_keeps_contents_and_marks_bad() {
        let mut d = dev();
        let ppn = write_user(&mut d, 0, 1, 1);
        d.set_fault_plan(FaultPlan::new().on_erase(0, EraseFault::Fail));
        assert_eq!(
            d.erase_block(BlockId(0), IoPurpose::GcMigrateUser),
            Err(FlashError::EraseFailed(BlockId(0)))
        );
        assert!(d.is_written(ppn), "failed erase leaves contents intact");
        assert!(d.is_bad(BlockId(0)));
        assert_eq!(d.fault_stats().erase_failures, 1);
        assert_eq!(d.erase_count(BlockId(0)), 0);
        // Later erases of the bad block keep failing.
        assert_eq!(
            d.erase_block(BlockId(0), IoPurpose::GcMigrateUser),
            Err(FlashError::EraseFailed(BlockId(0)))
        );
        assert_eq!(d.fault_stats().erase_failures, 2);
    }

    #[test]
    fn erase_crash_erases_live_and_captures_image() {
        let mut d = dev();
        let ppn = write_user(&mut d, 0, 1, 1);
        d.set_fault_plan(FaultPlan::new().on_erase(0, EraseFault::Crash));
        d.erase_block(BlockId(0), IoPurpose::GcMigrateUser).unwrap();
        assert!(!d.is_written(ppn), "live erase succeeded");
        assert_eq!(d.fault_stats().erase_crashes, 1);
        let image = d.take_crash_image().unwrap();
        assert!(!image.is_written(ppn), "image sees the erase applied");
        assert_eq!(image.erase_count(BlockId(0)), 1);
        assert!(image.fault_plan().is_empty());
    }

    #[test]
    fn attempt_counters_index_the_fault_plan() {
        let mut d = dev();
        assert_eq!(d.write_attempts(), 0);
        write_user(&mut d, 0, 1, 1);
        d.mark_bad(BlockId(5));
        // A failed attempt still consumes an attempt index.
        let _ = d.write_page(
            BlockId(5),
            PageData::User {
                lpn: Lpn(9),
                version: 1,
            },
            SpareInfo::User {
                lpn: Lpn(9),
                before: None,
            },
            IoPurpose::UserWrite,
        );
        assert_eq!(d.write_attempts(), 2);
        d.erase_block(BlockId(1), IoPurpose::WearLevel).unwrap();
        let _ = d.erase_block(BlockId(5), IoPurpose::WearLevel);
        assert_eq!(d.erase_attempts(), 2);
    }

    #[test]
    fn telemetry_io_events_reconcile_with_busy_us() {
        use ftl_telemetry::TraceEvent;
        let geo = Geometry::tiny().with_channels(4);
        let mut d = FlashDevice::with_latency(geo, LatencyModel::paper());
        d.telemetry_mut().enable(1024);
        let mut ppns = Vec::new();
        for b in 0..4 {
            ppns.push(write_user(&mut d, b, b, 1));
        }
        d.begin_overlap();
        for &p in &ppns {
            d.read_page(p, IoPurpose::ValidityMerge).unwrap();
        }
        d.end_overlap();
        d.read_spare(ppns[0], IoPurpose::Recovery).unwrap();
        d.erase_block(BlockId(5), IoPurpose::GcMigrateUser).unwrap();
        // Summing event durations per purpose reproduces busy_us exactly
        // (events are recorded at the same point the busy time is charged).
        for p in IoPurpose::ALL {
            let summed: f64 = d
                .telemetry()
                .events()
                .filter_map(|e| match *e {
                    TraceEvent::Io {
                        purpose, dur_us, ..
                    } if purpose as usize == p.index() => Some(dur_us as f64),
                    _ => None,
                })
                .sum();
            assert!(
                (summed - d.stats().busy_us(p)).abs() < 1e-9,
                "purpose {}: events {} vs busy_us {}",
                p.label(),
                summed,
                d.stats().busy_us(p)
            );
        }
        // Inside the overlap window the four reads start together (distinct
        // channels), and per-channel events never overlap.
        let mut per_channel: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 4];
        for e in d.telemetry().events() {
            if let TraceEvent::Io {
                channel,
                start_us,
                dur_us,
                ..
            } = *e
            {
                per_channel[channel as usize].push((start_us, start_us + dur_us as f64));
            }
        }
        for lane in &per_channel {
            for w in lane.windows(2) {
                assert!(
                    w[1].0 >= w[0].1 - 1e-9,
                    "channel-lane events must not overlap: {w:?}"
                );
            }
        }
        // Telemetry observed but never perturbed the simulation.
        assert!((d.clock().now_us() - (4.0 * 1000.0 + 100.0 + 3.0 + 2000.0)).abs() < 1e-9);
    }

    #[test]
    fn crash_image_telemetry_is_the_precrash_prefix() {
        let mut d = dev();
        d.telemetry_mut().enable(64);
        d.set_fault_plan(FaultPlan::new().on_write(1, WriteFault::TornData));
        write_user(&mut d, 0, 1, 1);
        let events_before_fault = d.telemetry().events().count();
        write_user(&mut d, 0, 2, 1); // torn: image cloned before this IO lands
        write_user(&mut d, 0, 3, 1);
        let image = d.take_crash_image().unwrap();
        assert!(image.telemetry().is_enabled(), "image keeps recording");
        assert_eq!(
            image.telemetry().events().count(),
            events_before_fault,
            "image history stops at the power cut"
        );
        assert_eq!(d.telemetry().events().count(), 3);
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let mut d = dev();
        let total = d.geometry().total_pages() as u32;
        assert!(matches!(
            d.read_page(Ppn(total), IoPurpose::UserRead),
            Err(FlashError::OutOfRange(p)) if p == Ppn(total)
        ));
        assert_eq!(
            d.erase_block(BlockId(64), IoPurpose::GcMigrateUser),
            Err(FlashError::BlockOutOfRange(BlockId(64)))
        );
    }
}
