//! Figure 13: the full five-FTL comparison — integrated RAM (top), recovery
//! time (middle) and write-amplification decomposition (bottom).
//!
//! RAM and recovery panels are analytical at the paper's 2 TB scale (as in
//! the paper); the WA panel replays one recorded uniform-update trace
//! against all five simulated FTLs.

use crate::harness::{drive, fill_sequential, sim_geometry};
use crate::report::{f3, human_bytes, Table};
use flash_sim::Geometry;
use ftl_baselines::{build, BaselineKind};
use ftl_models::{ram_model, recovery_model, FtlName};
use ftl_workloads::Uniform;

const PAPER_CACHE: u64 = 1 << 19;

fn model_name(kind: BaselineKind) -> FtlName {
    match kind {
        BaselineKind::Dftl => FtlName::Dftl,
        BaselineKind::LazyFtl => FtlName::LazyFtl,
        BaselineKind::MuFtl => FtlName::MuFtl,
        BaselineKind::IbFtl => FtlName::IbFtl,
        BaselineKind::GeckoFtl => FtlName::GeckoFtl,
    }
}

/// Run the three Figure-13 panels.
pub fn run() -> Vec<Table> {
    let paper = Geometry::paper_2tb();
    let lat = flash_sim::LatencyModel::paper();

    // ---- Top: integrated RAM by structure (2 TB, model). ----------------
    let mut ram = Table::new(
        "Figure 13 (top) — integrated RAM by data structure, 2 TB device",
        &["FTL", "structure", "bytes", "human"],
    );
    let mut ram_total = Table::new(
        "Figure 13 (top, totals) — integrated RAM per FTL",
        &["FTL", "total_bytes", "human", "battery"],
    );
    for name in FtlName::ALL {
        let m = ram_model(name, &paper, PAPER_CACHE);
        for c in &m.components {
            ram.row(vec![
                name.label().into(),
                c.name.into(),
                c.bytes.to_string(),
                human_bytes(c.bytes),
            ]);
        }
        ram_total.row(vec![
            name.label().into(),
            m.total().to_string(),
            human_bytes(m.total()),
            if name.needs_battery() { "yes" } else { "no" }.into(),
        ]);
    }

    // ---- Middle: recovery time by step (2 TB, model). -------------------
    let mut rec = Table::new(
        "Figure 13 (middle) — recovery time by step, 2 TB device (battery FTLs skip dirty-entry sync)",
        &["FTL", "step", "seconds"],
    );
    let mut rec_total = Table::new(
        "Figure 13 (middle, totals) — recovery seconds per FTL",
        &["FTL", "seconds", "battery"],
    );
    for name in FtlName::ALL {
        let m = recovery_model(name, &paper, PAPER_CACHE, 0.1);
        for c in &m.components {
            rec.row(vec![
                name.label().into(),
                c.name.into(),
                f3(c.seconds(&lat)),
            ]);
        }
        rec_total.row(vec![
            name.label().into(),
            f3(m.total_seconds(&lat)),
            if name.needs_battery() { "yes" } else { "no" }.into(),
        ]);
    }

    // ---- Bottom: simulated WA decomposition (identical trace). ----------
    let geo = sim_geometry();
    let mut wa = Table::new(
        "Figure 13 (bottom) — write-amplification by category (uniform updates, simulated)",
        &["FTL", "user", "translation", "validity", "total"],
    );
    for kind in BaselineKind::ALL {
        let mut engine = build(kind, geo);
        fill_sequential(&mut engine);
        let logical = engine.geometry().logical_pages();
        let mut gen = Uniform::new(77, logical);
        drive(&mut engine, &mut gen, logical / 2); // warm-up
        let snap = engine.device().stats().snapshot();
        drive(&mut engine, &mut gen, 60_000);
        let d = engine.device().stats().since(&snap);
        let b = d.wa_breakdown(10.0);
        wa.row(vec![
            model_name(kind).label().into(),
            f3(b.user),
            f3(b.translation),
            f3(b.validity),
            f3(b.total()),
        ]);
    }

    vec![ram_total, ram, rec_total, rec, wa]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn headline_claims_hold() {
        let tables = super::run();
        let ram_total = &tables[0];
        let rec_total = &tables[2];
        let wa = &tables[4];

        let ram_of = |n: &str| -> u64 {
            ram_total.rows.iter().find(|r| r[0] == n).unwrap()[1]
                .parse()
                .unwrap()
        };
        // GeckoFTL and µ-FTL far below DFTL/LazyFTL on RAM.
        assert!(ram_of("GeckoFTL") < ram_of("DFTL") / 3);
        assert!(ram_of("u-FTL") <= ram_of("GeckoFTL"));

        let rec_of = |n: &str| -> f64 {
            rec_total.rows.iter().find(|r| r[0] == n).unwrap()[1]
                .parse()
                .unwrap()
        };
        // ≥51 % recovery reduction vs LazyFTL, without a battery.
        assert!(rec_of("GeckoFTL") < 0.49 * rec_of("LazyFTL"));

        let wa_of = |n: &str, col: usize| -> f64 {
            wa.rows.iter().find(|r| r[0] == n).unwrap()[col]
                .parse()
                .unwrap()
        };
        // µ-FTL has the highest validity WA; GeckoFTL is far lower.
        assert!(wa_of("u-FTL", 3) > 5.0 * wa_of("GeckoFTL", 3));
        // RAM-PVB FTLs have ~zero validity WA.
        assert!(wa_of("DFTL", 3) < 0.05);
        // Restricted-dirty FTLs pay more translation WA than battery FTLs.
        assert!(wa_of("LazyFTL", 2) > wa_of("DFTL", 2));
        // GeckoFTL's total is the lowest of the flash-validity FTLs.
        assert!(wa_of("GeckoFTL", 4) < wa_of("u-FTL", 4));
        assert!(wa_of("GeckoFTL", 4) < wa_of("IB-FTL", 4));
    }
}
