//! Physical space management: block groups, active blocks, the free pool and
//! the Blocks Validity Counter (BVC).
//!
//! GeckoFTL separates flash pages into groups of blocks by type (Figure 8):
//! user blocks, translation blocks, and metadata blocks (Gecko runs — or,
//! for the baselines, PVB/PVL pages). Each group has one *active block*
//! written append-only; when it fills up, a new active block is allocated
//! from the free pool.
//!
//! The BVC (Figure 7) tracks the number of valid pages per block and drives
//! garbage-collection victim selection. Under the metadata-aware GC policy
//! (§4.2) translation/metadata blocks are never migrated: they are erased as
//! soon as their last valid page is superseded, which this module detects on
//! [`BlockManager::page_obsolete`].

use crate::validity::MetaSink;
use flash_sim::{
    BlockId, FlashDevice, FlashError, Geometry, IoPurpose, MetaKind, PageData, Ppn, SpareInfo,
};
use std::collections::{HashSet, VecDeque};

/// The block groups of Figure 8. PVB and PVL blocks take the "Gecko blocks"
/// role for the baseline FTLs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BlockGroup {
    /// User data (≈99.9 % of the device).
    User,
    /// Translation pages (≈0.1 %).
    Translation,
    /// Page-validity metadata (≈0.01 %): Gecko runs, PVB pages or PVL pages.
    Meta(MetaKind),
}

impl BlockGroup {
    /// All block groups, for reports and sweeps.
    pub const ALL: [BlockGroup; 5] = [
        BlockGroup::User,
        BlockGroup::Translation,
        BlockGroup::Meta(MetaKind::GeckoRun),
        BlockGroup::Meta(MetaKind::Pvb),
        BlockGroup::Meta(MetaKind::Pvl),
    ];

    fn index(self) -> usize {
        match self {
            BlockGroup::User => 0,
            BlockGroup::Translation => 1,
            BlockGroup::Meta(MetaKind::GeckoRun) => 2,
            BlockGroup::Meta(MetaKind::Pvb) => 3,
            BlockGroup::Meta(MetaKind::Pvl) => 4,
        }
    }

    /// Whether this group holds metadata (eligible for erase-when-empty
    /// under the metadata-aware policy).
    pub fn is_metadata(self) -> bool {
        !matches!(self, BlockGroup::User)
    }

    /// IO purpose charged when a block of this group is erased by the
    /// erase-when-empty path.
    fn erase_purpose(self) -> IoPurpose {
        match self {
            BlockGroup::User => IoPurpose::GcMigrateUser,
            BlockGroup::Translation => IoPurpose::TranslationGc,
            BlockGroup::Meta(_) => IoPurpose::ValidityGc,
        }
    }
}

/// Per-block bookkeeping state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockState {
    /// In the free pool.
    Free,
    /// Allocated to a group (the write pointer lives in the device).
    InUse(BlockGroup),
}

/// Manager of block allocation, groups and validity counters.
#[derive(Clone, Debug)]
pub struct BlockManager {
    geo: Geometry,
    state: Vec<BlockState>,
    active: [Option<BlockId>; 5],
    free: VecDeque<BlockId>,
    /// BVC: number of valid pages per block.
    bvc: Vec<u32>,
    /// Whether metadata blocks are erased as soon as they become fully
    /// invalid (GeckoFTL's §4.2 policy). When false, they wait for the
    /// greedy garbage-collector like any other block.
    pub erase_empty_metadata: bool,
    /// Blocks that must not be erased or garbage-collected right now:
    /// GeckoRec's buffer recovery (App. C.2.2) needs the previous version of
    /// recently updated translation pages, so the engine protects their
    /// blocks until the next Gecko buffer flush.
    protected: HashSet<BlockId>,
    /// Blocks permanently taken out of service after an erase failure (or
    /// wear-out). A retired block stays `InUse` forever — it can never be
    /// erased, so it must never reach the free pool — and is excluded from
    /// victim selection so GC does not livelock re-picking a 0-valid block
    /// it cannot reclaim.
    retired: Vec<bool>,
}

impl BlockManager {
    /// A fresh manager: every block free.
    pub fn new(geo: Geometry) -> Self {
        BlockManager {
            geo,
            state: vec![BlockState::Free; geo.blocks as usize],
            active: [None; 5],
            free: geo.iter_blocks().collect(),
            bvc: vec![0; geo.blocks as usize],
            erase_empty_metadata: true,
            protected: HashSet::new(),
            retired: vec![false; geo.blocks as usize],
        }
    }

    /// Rebuild a manager from recovered per-block state (used by GeckoRec).
    /// Consults the device's persistent bad-block table so that bad blocks
    /// never re-enter the free pool (an empty bad block scans as `Free` —
    /// a pre-crash program failure persists nothing — but can never be
    /// programmed again). Bad *in-use* blocks are not pre-retired: their
    /// valid pages stay readable, GC drains them like any bad block and
    /// retires them when the erase fails, exactly as on the live path.
    pub fn from_recovered(
        dev: &FlashDevice,
        geo: Geometry,
        state: Vec<BlockState>,
        bvc: Vec<u32>,
        erase_empty_metadata: bool,
    ) -> Self {
        assert_eq!(state.len(), geo.blocks as usize);
        assert_eq!(bvc.len(), geo.blocks as usize);
        let free = geo
            .iter_blocks()
            .filter(|b| state[b.0 as usize] == BlockState::Free && !dev.is_bad(*b))
            .collect();
        BlockManager {
            geo,
            state,
            active: [None; 5],
            free,
            bvc,
            erase_empty_metadata,
            protected: HashSet::new(),
            retired: vec![false; geo.blocks as usize],
        }
    }

    /// Number of blocks currently in the free pool.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// The BVC value (valid pages) for a block.
    pub fn valid_pages(&self, block: BlockId) -> u32 {
        self.bvc[block.0 as usize]
    }

    /// Group a block belongs to, if allocated.
    pub fn group_of(&self, block: BlockId) -> Option<BlockGroup> {
        match self.state[block.0 as usize] {
            BlockState::Free => None,
            BlockState::InUse(g) => Some(g),
        }
    }

    /// Whether `block` is the active (append-target) block of its group.
    pub fn is_active(&self, block: BlockId) -> bool {
        self.active.contains(&Some(block))
    }

    /// Protect a block from erasure and GC until the next
    /// [`BlockManager::clear_protection`] (App. C.2.2's no-erase list).
    pub fn protect(&mut self, block: BlockId) {
        self.protected.insert(block);
    }

    /// Whether a block is currently protected.
    pub fn is_protected(&self, block: BlockId) -> bool {
        self.protected.contains(&block)
    }

    /// Number of currently protected blocks.
    pub fn protected_count(&self) -> usize {
        self.protected.len()
    }

    /// Drop all protections (called when Gecko's buffer flushes) and return
    /// the blocks that were protected so the engine can erase any that have
    /// become fully invalid in the meantime. Sorted: the caller erases these
    /// in order, and erase order feeds the free pool and hence future victim
    /// selection — draining the `HashSet` unsorted leaked per-process hash
    /// randomization into GC victim order (±2 reads/query jitter in
    /// BENCH_gecko_query).
    pub fn clear_protection(&mut self) -> Vec<BlockId> {
        let mut blocks: Vec<BlockId> = self.protected.drain().collect();
        blocks.sort_unstable();
        blocks
    }

    /// Integrated-RAM footprint of BVC: 2 bytes per block (Appendix B).
    pub fn bvc_ram_bytes(&self) -> u64 {
        2 * self.geo.blocks as u64
    }

    /// Iterate blocks allocated to a group.
    pub fn blocks_of_group(&self, group: BlockGroup) -> impl Iterator<Item = BlockId> + '_ {
        self.geo
            .iter_blocks()
            .filter(move |b| self.state[b.0 as usize] == BlockState::InUse(group))
    }

    fn ensure_active(&mut self, dev: &FlashDevice, group: BlockGroup) -> BlockId {
        let slot = group.index();
        if let Some(b) = self.active[slot] {
            if !dev.block_is_full(b) {
                return b;
            }
            self.active[slot] = None; // sealed
        }
        let b = self
            .free
            .pop_front()
            .expect("free pool exhausted — GC threshold must keep a reserve");
        debug_assert!(dev.written_pages(b) == 0, "free block must be erased");
        debug_assert!(!dev.is_bad(b), "free pool must not contain bad blocks");
        self.state[b.0 as usize] = BlockState::InUse(group);
        self.active[slot] = Some(b);
        b
    }

    /// Adopt an existing partially-written block as the group's active block
    /// (used after recovery, which finds the old actives half-full).
    pub fn adopt_active(&mut self, block: BlockId, group: BlockGroup) {
        debug_assert_eq!(self.state[block.0 as usize], BlockState::InUse(group));
        self.active[group.index()] = Some(block);
    }

    /// Append a page to the active block of `group`. The caller guarantees a
    /// free-block reserve via the GC trigger threshold.
    ///
    /// A program failure (the active block went bad mid-write) is handled
    /// here: the block is abandoned as append target and the write retries
    /// on a fresh free block. The bad block keeps its already-written valid
    /// pages; GC drains it later and retires it when its erase fails.
    pub fn append(
        &mut self,
        dev: &mut FlashDevice,
        group: BlockGroup,
        data: PageData,
        info: SpareInfo,
        purpose: IoPurpose,
    ) -> Ppn {
        loop {
            let block = self.ensure_active(dev, group);
            match dev.write_page(block, data.clone(), info, purpose) {
                Ok(ppn) => {
                    self.bvc[block.0 as usize] += 1;
                    return ppn;
                }
                Err(FlashError::ProgramFailed(_)) => {
                    self.active[group.index()] = None;
                }
                Err(e) => panic!("active block has free pages: {e}"),
            }
        }
    }

    /// Report that a written page no longer holds live data. Decrements BVC
    /// and, for metadata blocks under the metadata-aware policy, erases the
    /// block once it holds no valid pages (§4.2: "waits until all pages in a
    /// Gecko block or a translation block have become invalid and only then
    /// erases the block").
    pub fn page_obsolete(&mut self, dev: &mut FlashDevice, ppn: Ppn) {
        let block = self.geo.block_of(ppn);
        let i = block.0 as usize;
        debug_assert!(self.bvc[i] > 0, "BVC underflow on {block:?}");
        self.bvc[i] = self.bvc[i].saturating_sub(1);
        if self.bvc[i] == 0
            && self.erase_empty_metadata
            && !self.is_active(block)
            && !self.is_protected(block)
        {
            if let BlockState::InUse(group) = self.state[i] {
                if group.is_metadata() {
                    self.erase_and_free(dev, block, group.erase_purpose());
                }
            }
        }
    }

    /// Like [`BlockManager::page_obsolete`], but tolerates a zero counter.
    /// Used only by the post-recovery flag-correction path (App. C.3.2),
    /// which may re-report a page whose invalidation was already counted
    /// during BVC recovery; the paper accepts this benign double-report.
    pub fn page_obsolete_lenient(&mut self, dev: &mut FlashDevice, ppn: Ppn) {
        if self.bvc[self.geo.block_of(ppn).0 as usize] > 0 {
            self.page_obsolete(dev, ppn);
        }
    }

    /// Erase a block and return it to the free pool. If the erase fails
    /// (bad block, or past its wear budget) the block is *retired* instead:
    /// it stays `InUse` forever, drops out of victim selection, and never
    /// reaches the free pool. The caller has already migrated any valid
    /// pages, so nothing is lost. Returns `false` on retirement: the block
    /// keeps its stale contents, so a caller tracking per-page validity
    /// must report those pages invalid (an erase marker issued in
    /// anticipation of this erase claims a *clean* block — the opposite of
    /// what a retired block holds).
    pub fn erase_and_free(
        &mut self,
        dev: &mut FlashDevice,
        block: BlockId,
        purpose: IoPurpose,
    ) -> bool {
        debug_assert!(!self.is_active(block), "cannot erase an active block");
        let i = block.0 as usize;
        match dev.erase_block(block, purpose) {
            Ok(()) => {
                self.state[i] = BlockState::Free;
                self.bvc[i] = 0;
                self.free.push_back(block);
                true
            }
            Err(FlashError::EraseFailed(_) | FlashError::BlockWornOut(_)) => {
                self.retired[i] = true;
                self.bvc[i] = 0;
                false
            }
            Err(e) => panic!("erase of in-range block: {e}"),
        }
    }

    /// Whether a block has been permanently retired after an erase failure.
    pub fn is_retired(&self, block: BlockId) -> bool {
        self.retired[block.0 as usize]
    }

    /// Number of permanently retired blocks (lost device capacity).
    pub fn retired_blocks(&self) -> usize {
        self.retired.iter().filter(|&&r| r).count()
    }

    /// GC victim candidates among `eligible` groups: full, non-active,
    /// unprotected blocks with at least one invalid page, as `(valid
    /// pages, block)` pairs in block order. Single source of the victim
    /// eligibility rules for both selection flavors below.
    fn victim_candidates<'a>(
        &'a self,
        dev: &'a FlashDevice,
        eligible: impl Fn(BlockGroup) -> bool + 'a,
    ) -> impl Iterator<Item = (u32, BlockId)> + 'a {
        self.geo
            .iter_blocks()
            .filter(move |&b| self.is_victim_eligible(dev, b, &eligible))
            .map(|b| (self.bvc[b.0 as usize], b))
    }

    /// Greedy victim selection: the full, non-active block with the fewest
    /// valid pages among `eligible` groups. Returns `None` if no block has
    /// any invalid page.
    pub fn pick_victim(
        &self,
        dev: &FlashDevice,
        eligible: impl Fn(BlockGroup) -> bool,
    ) -> Option<BlockId> {
        self.victim_candidates(dev, eligible)
            .min_by_key(|&(valid, b)| (valid, b))
            .map(|(_, b)| b)
    }

    /// Whether `block` currently satisfies every victim-eligibility rule
    /// for its group (allocated to an `eligible` group, sealed, non-active,
    /// unprotected, with at least one invalid page) — the same rules as
    /// [`BlockManager::victim_candidates`], answered in O(1) for one block.
    /// Used by the engine to re-validate a planned burst victim whose state
    /// may have shifted since the batch prefetch ranked it.
    pub fn is_victim_eligible(
        &self,
        dev: &FlashDevice,
        block: BlockId,
        eligible: impl Fn(BlockGroup) -> bool,
    ) -> bool {
        let BlockState::InUse(group) = self.state[block.0 as usize] else {
            return false;
        };
        // A bad block counts as sealed even when not full: its write pointer
        // will never advance again, and GC is the only way to drain its
        // remaining valid pages. Retired blocks are out for good.
        eligible(group)
            && !self.retired[block.0 as usize]
            && !self.is_active(block)
            && (dev.block_is_full(block) || dev.is_bad(block))
            && !self.is_protected(block)
            && self.bvc[block.0 as usize] < self.geo.pages_per_block
    }

    /// The `k` best greedy victims: fewest valid pages first, and — among
    /// candidates tied at the burst's worst valid count, where greedy is
    /// indifferent — the *densest block-id window*, so the burst's Gecko
    /// keys (`(block, part)`, ordered by block id) cluster on shared run
    /// pages and the batched validity query coalesces more probes. Strictly
    /// better (fewer-valid) candidates are never displaced by clustering.
    /// Used by the engine to prefetch validity bitmaps for a whole GC burst
    /// in one batched query.
    pub fn pick_victims(
        &self,
        dev: &FlashDevice,
        k: usize,
        eligible: impl Fn(BlockGroup) -> bool,
    ) -> Vec<BlockId> {
        if k == 0 {
            return Vec::new();
        }
        let mut candidates: Vec<(u32, BlockId)> = self.victim_candidates(dev, eligible).collect();
        candidates.sort_unstable_by_key(|&(valid, b)| (valid, b));
        if candidates.len() <= k {
            return candidates.into_iter().map(|(_, b)| b).collect();
        }
        // Greedy mandates every candidate strictly below the k-th best's
        // valid count; the remaining slots go to the equal-valid group,
        // where any choice is equally good for migration cost — pick the
        // tightest id window there (candidates are id-sorted within a
        // valid count, so windows are contiguous slices).
        let threshold = candidates[k - 1].0;
        let mandatory = candidates.partition_point(|&(v, _)| v < threshold);
        let eq_end = candidates.partition_point(|&(v, _)| v <= threshold);
        let need = k - mandatory;
        let equals = &candidates[mandatory..eq_end];
        let start = (0..=equals.len() - need)
            .min_by_key(|&i| equals[i + need - 1].1 .0 - equals[i].1 .0)
            .expect("need ≤ equals.len() by construction");
        let mut victims: Vec<BlockId> = candidates[..mandatory].iter().map(|&(_, b)| b).collect();
        victims.extend(equals[start..start + need].iter().map(|&(_, b)| b));
        victims
    }
}

/// Flash-resident validity stores write their pages through the block
/// manager like everything else.
impl MetaSink for BlockManager {
    fn append_meta(
        &mut self,
        dev: &mut FlashDevice,
        kind: MetaKind,
        tag: u64,
        data: PageData,
        purpose: IoPurpose,
    ) -> Ppn {
        self.append(
            dev,
            BlockGroup::Meta(kind),
            data,
            SpareInfo::Meta { kind, tag },
            purpose,
        )
    }

    fn meta_page_obsolete(&mut self, dev: &mut FlashDevice, ppn: Ppn) {
        self.page_obsolete(dev, ppn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flash_sim::Lpn;

    fn setup() -> (FlashDevice, BlockManager) {
        let geo = Geometry::tiny();
        (FlashDevice::new(geo), BlockManager::new(geo))
    }

    fn user_page(lpn: u32) -> (PageData, SpareInfo) {
        (
            PageData::User {
                lpn: Lpn(lpn),
                version: 0,
            },
            SpareInfo::User {
                lpn: Lpn(lpn),
                before: None,
            },
        )
    }

    #[test]
    fn appends_stay_in_group_active_block() {
        let (mut dev, mut bm) = setup();
        let (d1, s1) = user_page(1);
        let p1 = bm.append(&mut dev, BlockGroup::User, d1, s1, IoPurpose::UserWrite);
        let (d2, s2) = user_page(2);
        let p2 = bm.append(&mut dev, BlockGroup::User, d2, s2, IoPurpose::UserWrite);
        assert_eq!(dev.geometry().block_of(p1), dev.geometry().block_of(p2));
        assert_eq!(bm.valid_pages(dev.geometry().block_of(p1)), 2);
        assert_eq!(
            bm.group_of(dev.geometry().block_of(p1)),
            Some(BlockGroup::User)
        );
    }

    #[test]
    fn groups_use_distinct_blocks() {
        let (mut dev, mut bm) = setup();
        let (d, s) = user_page(1);
        let pu = bm.append(&mut dev, BlockGroup::User, d, s, IoPurpose::UserWrite);
        let pt = bm.append(
            &mut dev,
            BlockGroup::Translation,
            PageData::blob_of(0u32),
            SpareInfo::Translation { tpage: 0 },
            IoPurpose::TranslationSync,
        );
        assert_ne!(dev.geometry().block_of(pu), dev.geometry().block_of(pt));
    }

    #[test]
    fn full_active_block_rolls_over() {
        let (mut dev, mut bm) = setup();
        let per_block = dev.geometry().pages_per_block;
        let mut first_block = None;
        for i in 0..=per_block {
            let (d, s) = user_page(i);
            let p = bm.append(&mut dev, BlockGroup::User, d, s, IoPurpose::UserWrite);
            let b = dev.geometry().block_of(p);
            match first_block {
                None => first_block = Some(b),
                Some(fb) if i < per_block => assert_eq!(b, fb),
                Some(fb) => assert_ne!(b, fb, "rollover expected after {per_block} pages"),
            }
        }
    }

    #[test]
    fn metadata_block_erased_when_fully_invalid() {
        let (mut dev, mut bm) = setup();
        let per_block = dev.geometry().pages_per_block;
        // Fill one gecko block and roll into a second so the first seals.
        let mut pages = Vec::new();
        for i in 0..=per_block {
            let p = bm.append_meta(
                &mut dev,
                MetaKind::GeckoRun,
                i as u64,
                PageData::blob_of(i),
                IoPurpose::ValidityUpdate,
            );
            pages.push(p);
        }
        let first = dev.geometry().block_of(pages[0]);
        let free_before = bm.free_blocks();
        for p in &pages[..per_block as usize] {
            bm.meta_page_obsolete(&mut dev, *p);
        }
        assert_eq!(
            bm.group_of(first),
            None,
            "fully-invalid metadata block must be erased"
        );
        assert_eq!(bm.free_blocks(), free_before + 1);
        assert_eq!(dev.erase_count(first), 1);
    }

    #[test]
    fn metadata_erase_when_empty_can_be_disabled() {
        let (mut dev, mut bm) = setup();
        bm.erase_empty_metadata = false;
        let per_block = dev.geometry().pages_per_block;
        let mut pages = Vec::new();
        for i in 0..=per_block {
            pages.push(bm.append_meta(
                &mut dev,
                MetaKind::Pvb,
                i as u64,
                PageData::blob_of(i),
                IoPurpose::ValidityUpdate,
            ));
        }
        let first = dev.geometry().block_of(pages[0]);
        for p in &pages[..per_block as usize] {
            bm.meta_page_obsolete(&mut dev, *p);
        }
        assert_eq!(bm.group_of(first), Some(BlockGroup::Meta(MetaKind::Pvb)));
        assert_eq!(dev.erase_count(first), 0);
    }

    #[test]
    fn greedy_victim_is_min_valid_full_block() {
        let (mut dev, mut bm) = setup();
        let per_block = dev.geometry().pages_per_block;
        // Fill three user blocks.
        let mut pages = Vec::new();
        for i in 0..3 * per_block {
            let (d, s) = user_page(i);
            pages.push(bm.append(&mut dev, BlockGroup::User, d, s, IoPurpose::UserWrite));
        }
        let b0 = dev.geometry().block_of(pages[0]);
        let b1 = dev.geometry().block_of(pages[per_block as usize]);
        // Invalidate 2 pages in b0 and 5 in b1.
        for p in &pages[..2] {
            bm.page_obsolete(&mut dev, *p);
        }
        for p in &pages[per_block as usize..per_block as usize + 5] {
            bm.page_obsolete(&mut dev, *p);
        }
        assert_eq!(bm.pick_victim(&dev, |_| true), Some(b1));
        // Fully-valid or active blocks are never chosen.
        assert_ne!(
            bm.pick_victim(&dev, |_| true),
            Some(b0.min(b1).min(BlockId(2)))
        );
    }

    #[test]
    fn pick_victims_clusters_equal_valid_candidates() {
        let (mut dev, mut bm) = setup();
        let per_block = dev.geometry().pages_per_block;
        // Fill 8 user blocks; the 8th stays the active block.
        let mut pages = Vec::new();
        for i in 0..8 * per_block {
            let (d, s) = user_page(i);
            pages.push(bm.append(&mut dev, BlockGroup::User, d, s, IoPurpose::UserWrite));
        }
        let obsolete = |bm: &mut BlockManager, dev: &mut FlashDevice, blk: u32, n: u32| {
            for p in &pages[(blk * per_block) as usize..][..n as usize] {
                bm.page_obsolete(dev, *p);
            }
        };
        // Block 1 is strictly best (8 invalid); blocks 0, 3, 4, 5 tie at 4
        // invalid. Asking for 3 victims must keep block 1 and fill the two
        // remaining slots with the densest id window of the tie group —
        // {3, 4}, not the id-minimal {0, 3} a plain sort would give.
        obsolete(&mut bm, &mut dev, 1, 8);
        for blk in [0u32, 3, 4, 5] {
            obsolete(&mut bm, &mut dev, blk, 4);
        }
        let victims = bm.pick_victims(&dev, 3, |g| g == BlockGroup::User);
        assert_eq!(victims, vec![BlockId(1), BlockId(3), BlockId(4)]);
        // Every planned victim must pass the single-victim eligibility
        // re-check the engine applies before collecting it.
        for v in &victims {
            assert!(bm.is_victim_eligible(&dev, *v, |g| g == BlockGroup::User));
        }
        // Asking for more victims than exist degrades to the plain ranking.
        let all = bm.pick_victims(&dev, 10, |g| g == BlockGroup::User);
        assert_eq!(
            all,
            vec![BlockId(1), BlockId(0), BlockId(3), BlockId(4), BlockId(5)]
        );
    }

    #[test]
    fn append_retries_on_program_failure() {
        let (mut dev, mut bm) = setup();
        let (d, s) = user_page(1);
        let p1 = bm.append(&mut dev, BlockGroup::User, d, s, IoPurpose::UserWrite);
        let b1 = dev.geometry().block_of(p1);
        // Fail the next program attempt: the active block goes bad and the
        // write must land on a fresh block, invisibly to the caller.
        dev.set_fault_plan(
            flash_sim::FaultPlan::new()
                .on_write(dev.write_attempts(), flash_sim::WriteFault::ProgramFail),
        );
        let (d, s) = user_page(2);
        let p2 = bm.append(&mut dev, BlockGroup::User, d, s, IoPurpose::UserWrite);
        let b2 = dev.geometry().block_of(p2);
        assert_ne!(b1, b2, "retry must move to a fresh block");
        assert!(dev.is_bad(b1));
        assert_eq!(bm.valid_pages(b1), 1, "pre-fault page stays valid");
        assert_eq!(bm.valid_pages(b2), 1);
        // The bad half-written block counts as sealed: GC can drain it.
        assert!(bm.is_victim_eligible(&dev, b1, |g| g == BlockGroup::User));
    }

    #[test]
    fn failed_erase_retires_block() {
        let (mut dev, mut bm) = setup();
        let per_block = dev.geometry().pages_per_block;
        let mut pages = Vec::new();
        for i in 0..=per_block {
            let (d, s) = user_page(i);
            pages.push(bm.append(&mut dev, BlockGroup::User, d, s, IoPurpose::UserWrite));
        }
        let first = dev.geometry().block_of(pages[0]);
        for p in &pages[..per_block as usize] {
            bm.page_obsolete(&mut dev, *p);
        }
        let free_before = bm.free_blocks();
        dev.set_fault_plan(
            flash_sim::FaultPlan::new().on_erase(dev.erase_attempts(), flash_sim::EraseFault::Fail),
        );
        bm.erase_and_free(&mut dev, first, IoPurpose::GcMigrateUser);
        assert!(bm.is_retired(first));
        assert_eq!(bm.retired_blocks(), 1);
        assert_eq!(bm.free_blocks(), free_before, "retired ≠ freed");
        assert_eq!(bm.valid_pages(first), 0);
        assert_eq!(bm.group_of(first), Some(BlockGroup::User), "stays InUse");
        // Never a victim again: no GC livelock on the unreclaimable block.
        assert!(!bm.is_victim_eligible(&dev, first, |_| true));
        assert_eq!(bm.pick_victim(&dev, |_| true), None);
    }

    #[test]
    fn recovered_free_pool_excludes_bad_blocks() {
        let (mut dev, bm) = setup();
        drop(bm);
        dev.mark_bad(BlockId(3));
        let geo = dev.geometry();
        let state = vec![BlockState::Free; geo.blocks as usize];
        let bvc = vec![0u32; geo.blocks as usize];
        let bm = BlockManager::from_recovered(&dev, geo, state, bvc, true);
        assert_eq!(bm.free_blocks(), geo.blocks as usize - 1);
    }

    #[test]
    fn victim_selection_respects_group_filter() {
        let (mut dev, mut bm) = setup();
        let per_block = dev.geometry().pages_per_block;
        let mut pages = Vec::new();
        for i in 0..=per_block {
            pages.push(bm.append_meta(
                &mut dev,
                MetaKind::Pvb,
                i as u64,
                PageData::blob_of(i),
                IoPurpose::ValidityUpdate,
            ));
        }
        bm.meta_page_obsolete(&mut dev, pages[0]);
        assert!(bm.pick_victim(&dev, |g| g == BlockGroup::User).is_none());
        assert!(bm.pick_victim(&dev, |g| g.is_metadata()).is_some());
    }
}
