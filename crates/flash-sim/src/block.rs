//! A single flash block: an append-only array of pages.

use crate::error::{FlashError, Result};
use crate::geometry::{BlockId, PageOffset};
use crate::page::{Page, PageData, Spare};

/// One flash block. Enforces the two central NAND constraints: writes are
/// sequential within the block, and pages only become writable again after a
/// whole-block erase.
#[derive(Clone, Debug)]
pub struct Block {
    pages: Vec<Page>,
    write_ptr: u32,
    erase_count: u32,
    /// Global sequence number of the last erase (0 if never erased).
    /// Persisted in a spare area in the real design (Appendix D), so it
    /// survives power failure.
    erase_seq: u64,
}

impl Block {
    pub(crate) fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![Page::default(); pages_per_block as usize],
            write_ptr: 0,
            erase_count: 0,
            erase_seq: 0,
        }
    }

    /// Number of pages programmed since the last erase.
    pub fn written_pages(&self) -> u32 {
        self.write_ptr
    }

    /// Whether the write pointer has reached the end of the block.
    pub fn is_full(&self) -> bool {
        self.write_ptr as usize == self.pages.len()
    }

    /// Whether no page has been programmed since the last erase.
    pub fn is_empty(&self) -> bool {
        self.write_ptr == 0
    }

    /// How many times this block has been erased.
    pub fn erase_count(&self) -> u32 {
        self.erase_count
    }

    /// Global sequence number at the time of the last erase.
    pub fn erase_seq(&self) -> u64 {
        self.erase_seq
    }

    pub(crate) fn append(
        &mut self,
        id: BlockId,
        data: PageData,
        spare: Spare,
    ) -> Result<PageOffset> {
        if self.is_full() {
            return Err(FlashError::BlockFull(id));
        }
        let off = self.write_ptr;
        let page = &mut self.pages[off as usize];
        debug_assert!(
            !page.is_written(),
            "write pointer points at a programmed page"
        );
        page.data = Some(data);
        page.spare = Some(spare);
        self.write_ptr += 1;
        Ok(PageOffset(off))
    }

    /// Program a page torn by a mid-write power cut: the write pointer
    /// advances (the page is physically consumed and can never be
    /// programmed again), but one of the data and spare areas was lost.
    /// Only reachable through fault injection; the lost side reads back as
    /// unwritten.
    pub(crate) fn append_torn(&mut self, data: Option<PageData>, spare: Option<Spare>) {
        debug_assert!(!self.is_full(), "torn write needs a free page");
        let off = self.write_ptr as usize;
        self.pages[off] = Page { data, spare };
        self.write_ptr += 1;
    }

    pub(crate) fn erase(&mut self, seq: u64) {
        for p in &mut self.pages {
            *p = Page::default();
        }
        self.write_ptr = 0;
        self.erase_count += 1;
        self.erase_seq = seq;
    }

    pub(crate) fn page(&self, off: PageOffset) -> &Page {
        &self.pages[off.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Lpn;
    use crate::page::SpareInfo;

    fn user(lpn: u32, seq: u64) -> (PageData, Spare) {
        (
            PageData::User {
                lpn: Lpn(lpn),
                version: seq,
            },
            Spare {
                seq,
                info: SpareInfo::User {
                    lpn: Lpn(lpn),
                    before: None,
                },
            },
        )
    }

    #[test]
    fn appends_sequentially_until_full() {
        let mut b = Block::new(4);
        for i in 0..4 {
            let (d, s) = user(i, i as u64);
            let off = b.append(BlockId(0), d, s).unwrap();
            assert_eq!(off, PageOffset(i));
        }
        assert!(b.is_full());
        let (d, s) = user(9, 9);
        assert_eq!(
            b.append(BlockId(0), d, s),
            Err(FlashError::BlockFull(BlockId(0)))
        );
    }

    #[test]
    fn erase_resets_and_counts() {
        let mut b = Block::new(2);
        let (d, s) = user(0, 1);
        b.append(BlockId(0), d, s).unwrap();
        assert_eq!(b.written_pages(), 1);
        b.erase(17);
        assert!(b.is_empty());
        assert_eq!(b.erase_count(), 1);
        assert_eq!(b.erase_seq(), 17);
        assert!(!b.page(PageOffset(0)).is_written());
    }
}
