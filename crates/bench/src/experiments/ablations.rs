//! Ablations of GeckoFTL's design choices (DESIGN.md §3):
//!
//! 1. Multi-way merging (Appendix A) on/off.
//! 2. Metadata-aware GC (§4.2) vs the greedy policy.
//! 3. Checkpoints (§4.3) on/off: runtime sync cost vs recovery-scan size.

use crate::harness::{drive, fill_sequential, measure_uniform, sim_geometry};
use crate::report::{f3, Table};
use ftl_baselines::ftls::{build_geckoftl_tuned, build_with};
use ftl_baselines::BaselineKind;
use ftl_workloads::Uniform;
use geckoftl_core::ftl::{FtlConfig, GcPolicy, RecoveryPolicy};
use geckoftl_core::gecko::GeckoConfig;
use geckoftl_core::recovery::{gecko_recover, RecoveryStep};

fn base_cfg(geo: &flash_sim::Geometry) -> FtlConfig {
    FtlConfig {
        cache_entries: FtlConfig::scaled_cache_entries(geo),
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    }
}

/// Run all ablations.
pub fn run() -> Vec<Table> {
    let geo = sim_geometry();

    // ---- 1. Multi-way merging. ------------------------------------------
    let mut merges = Table::new(
        "Ablation — multi-way merging (Appendix A)",
        &["merging", "validity WA", "merge ops", "entries dropped"],
    );
    for multiway in [true, false] {
        let gecko_cfg = GeckoConfig {
            multiway_merge: multiway,
            ..GeckoConfig::paper_default(&geo)
        };
        let mut engine = build_geckoftl_tuned(geo, base_cfg(&geo), gecko_cfg);
        let d = measure_uniform(&mut engine, 60_000, 51);
        let stats = engine.backend().gecko().expect("gecko").stats;
        merges.row(vec![
            if multiway { "multi-way" } else { "two-way" }.into(),
            f3(d.wa_breakdown(10.0).validity),
            stats.merges.to_string(),
            stats.entries_dropped.to_string(),
        ]);
    }

    // ---- 2. GC victim policy. ---------------------------------------------
    let mut gc = Table::new(
        "Ablation — metadata-aware GC (§4.2) vs greedy",
        &[
            "policy",
            "user",
            "translation",
            "validity",
            "total WA",
            "migrations",
        ],
    );
    for policy in [GcPolicy::MetadataAware, GcPolicy::GreedyAll] {
        // GeckoFTL and DFTL: the policy matters most for FTLs whose greedy
        // collector would migrate translation/PVB blocks (the baselines).
        for kind in [BaselineKind::GeckoFtl, BaselineKind::Dftl] {
            let cfg = FtlConfig {
                gc_policy: policy,
                recovery: kind.recovery_policy(),
                ..base_cfg(&geo)
            };
            let mut engine = match kind {
                BaselineKind::GeckoFtl => {
                    build_geckoftl_tuned(geo, cfg, GeckoConfig::paper_default(&geo))
                }
                other => build_with(other, geo, cfg),
            };
            let before = engine.counters.gc_migrations;
            let d = measure_uniform(&mut engine, 60_000, 52);
            let b = d.wa_breakdown(10.0);
            gc.row(vec![
                format!("{} / {policy:?}", kind.name()),
                f3(b.user),
                f3(b.translation),
                f3(b.validity),
                f3(b.total()),
                (engine.counters.gc_migrations - before).to_string(),
            ]);
        }
    }

    // ---- 3. Checkpoints. ---------------------------------------------------
    let mut ckpt = Table::new(
        "Ablation — checkpoints (§4.3): runtime syncs vs recovery-scan size",
        &[
            "checkpoints",
            "translation WA",
            "syncs",
            "recovery scan (spare reads)",
        ],
    );
    for period in [None::<u64>, Some(u64::MAX)] {
        let mut cfg = base_cfg(&geo);
        cfg.checkpoint_period = period; // None → default C; MAX → disabled
        let gecko_cfg = GeckoConfig::paper_default(&geo);
        let mut engine = build_geckoftl_tuned(geo, cfg, gecko_cfg);
        fill_sequential(&mut engine);
        let logical = geo.logical_pages();
        let mut gen = Uniform::new(53, logical);
        drive(&mut engine, &mut gen, logical / 2);
        let snap = engine.device().stats().snapshot();
        drive(&mut engine, &mut gen, 40_000);
        let d = engine.device().stats().since(&snap);
        let syncs = engine.counters.syncs;
        let cfg = engine.config();
        let dev = engine.crash();
        let (_, report) = gecko_recover(dev, cfg, gecko_cfg);
        let scan = report
            .steps
            .iter()
            .find(|(s, _)| *s == RecoveryStep::DirtyEntries)
            .map(|(_, c)| c.spare_reads)
            .unwrap_or(0);
        ckpt.row(vec![
            if period.is_none() {
                "on (period C)"
            } else {
                "off"
            }
            .into(),
            f3(d.wa_breakdown(10.0).translation),
            syncs.to_string(),
            scan.to_string(),
        ]);
    }

    vec![merges, gc, ckpt]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn ablations_show_expected_tradeoffs() {
        let tables = super::run();
        // Metadata-aware GC must not be worse overall than greedy, and for
        // DFTL (whose greedy collector migrates translation blocks) it must
        // cut translation WA.
        let gc = &tables[1];
        let gecko_aware: f64 = gc.rows[0][4].parse().unwrap();
        let gecko_greedy: f64 = gc.rows[2][4].parse().unwrap();
        assert!(
            gecko_aware <= gecko_greedy * 1.1,
            "{gecko_aware} vs {gecko_greedy}"
        );
        let dftl_aware_t: f64 = gc.rows[1][2].parse().unwrap();
        let dftl_greedy_t: f64 = gc.rows[3][2].parse().unwrap();
        assert!(
            dftl_aware_t < dftl_greedy_t,
            "metadata-aware must cut DFTL translation WA: {dftl_aware_t} vs {dftl_greedy_t}"
        );
        // Checkpoints bound the recovery scan.
        let ckpt = &tables[2];
        let scan_on: u64 = ckpt.rows[0][3].parse().unwrap();
        let scan_off: u64 = ckpt.rows[1][3].parse().unwrap();
        assert!(
            scan_on < scan_off,
            "checkpointed scan {scan_on} must be below unbounded {scan_off}"
        );
    }
}
