//! Figure 1: LazyFTL's integrated-RAM requirement and recovery time as
//! device capacity grows (the paper's motivation figure). Pure model, at
//! full paper scale, exactly as the paper derives it.

use crate::report::{human_bytes, Table};
use ftl_models::{capacity_sweep, FtlName};

/// Run the Figure-1 sweep: 8 GB → 16 TB.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Figure 1 — LazyFTL RAM requirement and recovery time vs device capacity",
        &["capacity", "ram", "ram_bytes", "recovery_s"],
    );
    for p in capacity_sweep(FtlName::LazyFtl, 1 << 14, 1 << 25, 0.1) {
        t.row(vec![
            human_bytes(p.capacity_bytes),
            human_bytes(p.ram_bytes),
            p.ram_bytes.to_string(),
            format!("{:.1}", p.recovery_seconds),
        ]);
    }

    let mut g = Table::new(
        "Figure 1 (companion) — the same sweep for GeckoFTL",
        &["capacity", "ram", "ram_bytes", "recovery_s"],
    );
    for p in capacity_sweep(FtlName::GeckoFtl, 1 << 14, 1 << 25, 0.1) {
        g.row(vec![
            human_bytes(p.capacity_bytes),
            human_bytes(p.ram_bytes),
            p.ram_bytes.to_string(),
            format!("{:.1}", p.recovery_seconds),
        ]);
    }
    vec![t, g]
}

#[cfg(test)]
mod tests {
    #[test]
    fn produces_monotone_curves() {
        let tables = super::run();
        assert_eq!(tables.len(), 2);
        let ram: Vec<u64> = tables[0]
            .rows
            .iter()
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(ram.windows(2).all(|w| w[1] > w[0]));
    }
}
