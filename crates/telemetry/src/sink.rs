//! Event types and the preallocated ring-buffer sink.

/// The kind of physical operation behind a device IO event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoOp {
    /// Full-page read.
    PageRead,
    /// Full-page program.
    PageWrite,
    /// Spare-area read.
    SpareRead,
    /// Block erase.
    Erase,
}

impl IoOp {
    /// Stable label used by the trace exporter.
    pub fn label(self) -> &'static str {
        match self {
            IoOp::PageRead => "page_read",
            IoOp::PageWrite => "page_write",
            IoOp::SpareRead => "spare_read",
            IoOp::Erase => "erase",
        }
    }
}

/// The span taxonomy: one lane per kind on the exported timeline, one
/// streaming histogram per kind. See `docs/OBSERVABILITY.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One host `write(lpn)` end to end, including any GC / flush / merge
    /// work it triggered.
    HostWrite,
    /// One host `read(lpn)` end to end.
    HostRead,
    /// One host `trim(lpn)` end to end, including the forced translation
    /// sync and unmap writes.
    HostTrim,
    /// Garbage collection of one victim block (arg = victim block id).
    GcCollect,
    /// One incremental Gecko merge slice across the channels.
    MergeSlice,
    /// One Gecko buffer flush (arg = entries flushed).
    BufferFlush,
    /// One wear-leveling spare-area scan chunk.
    WearScan,
    /// One recovery step (arg = GeckoRec step number, 1-based).
    Recovery,
}

impl SpanKind {
    /// Number of span kinds (lane count).
    pub const COUNT: usize = 8;

    /// All kinds in lane order.
    pub const ALL: [SpanKind; SpanKind::COUNT] = [
        SpanKind::HostWrite,
        SpanKind::HostRead,
        SpanKind::HostTrim,
        SpanKind::GcCollect,
        SpanKind::MergeSlice,
        SpanKind::BufferFlush,
        SpanKind::WearScan,
        SpanKind::Recovery,
    ];

    /// Lane index (also the `tid` on the exported FTL timeline).
    pub fn index(self) -> usize {
        match self {
            SpanKind::HostWrite => 0,
            SpanKind::HostRead => 1,
            SpanKind::HostTrim => 2,
            SpanKind::GcCollect => 3,
            SpanKind::MergeSlice => 4,
            SpanKind::BufferFlush => 5,
            SpanKind::WearScan => 6,
            SpanKind::Recovery => 7,
        }
    }

    /// Stable label used in metric names and the trace exporter.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::HostWrite => "host_write",
            SpanKind::HostRead => "host_read",
            SpanKind::HostTrim => "host_trim",
            SpanKind::GcCollect => "gc_collect",
            SpanKind::MergeSlice => "merge_slice",
            SpanKind::BufferFlush => "buffer_flush",
            SpanKind::WearScan => "wear_scan",
            SpanKind::Recovery => "recovery",
        }
    }
}

/// One recorded event. Durations are stored as `f32` to keep the ring
/// compact; the latency model's constants are exactly representable, and
/// histograms record the full-precision `f64` before narrowing.
#[derive(Clone, Copy, Debug)]
pub enum TraceEvent {
    /// A device IO on one channel.
    Io {
        /// Caller's purpose index (`IoPurpose::index` in the device crate).
        purpose: u8,
        /// Physical operation kind.
        op: IoOp,
        /// Channel the target block lives on.
        channel: u16,
        /// Start time on the simulated clock, µs.
        start_us: f64,
        /// Nominal (serial) duration, µs.
        dur_us: f32,
    },
    /// A closed FTL span.
    Span {
        /// Lane / taxonomy kind.
        kind: SpanKind,
        /// Kind-specific argument (victim block, step number, ...).
        arg: u32,
        /// Start time on the simulated clock, µs.
        start_us: f64,
        /// Duration, µs.
        dur_us: f32,
    },
}

impl TraceEvent {
    /// Event start time on the simulated clock, µs.
    pub fn start_us(&self) -> f64 {
        match *self {
            TraceEvent::Io { start_us, .. } | TraceEvent::Span { start_us, .. } => start_us,
        }
    }

    /// Event duration, µs.
    pub fn dur_us(&self) -> f64 {
        match *self {
            TraceEvent::Io { dur_us, .. } | TraceEvent::Span { dur_us, .. } => dur_us as f64,
        }
    }
}

/// Fixed-capacity ring buffer of [`TraceEvent`]s. The backing storage is
/// allocated once at construction; when full, new events overwrite the
/// oldest and the overwrite count is tracked (never silently).
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Next slot to overwrite once `buf` reached capacity.
    head: usize,
    /// Events overwritten so far.
    dropped: u64,
    /// Events pushed over the ring's lifetime.
    total: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (allocated eagerly so the
    /// hot path never reallocates).
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            buf: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            dropped: 0,
            total: 0,
        }
    }

    /// Append one event, overwriting the oldest if full.
    pub fn push(&mut self, ev: TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let (wrapped, fresh) = self.buf.split_at(self.head);
        fresh.iter().chain(wrapped.iter())
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events pushed over the ring's lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes of the preallocated backing storage.
    pub fn ram_bytes(&self) -> u64 {
        (self.capacity * std::mem::size_of::<TraceEvent>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(start: f64) -> TraceEvent {
        TraceEvent::Span {
            kind: SpanKind::HostWrite,
            arg: 0,
            start_us: start,
            dur_us: 1.0,
        }
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut r = EventRing::with_capacity(3);
        for i in 0..5 {
            r.push(span(i as f64));
        }
        let starts: Vec<f64> = r.iter().map(|e| e.start_us()).collect();
        assert_eq!(starts, vec![2.0, 3.0, 4.0]);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.total(), 5);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ring_ram_is_capacity_not_fill() {
        let r = EventRing::with_capacity(100);
        assert_eq!(
            r.ram_bytes(),
            100 * std::mem::size_of::<TraceEvent>() as u64
        );
    }
}
