//! Property-based tests for the full FTL: for any workload and any crash
//! point, GeckoFTL never loses an acknowledged write (DESIGN.md invariants
//! 2–4), and the baseline FTLs satisfy read-your-writes.

use geckoftl::flash_sim::{Geometry, Lpn};
use geckoftl::ftl_baselines::{build, BaselineKind};
use geckoftl::geckoftl_core::ftl::{
    FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend,
};
use geckoftl::geckoftl_core::gecko::{GeckoConfig, LogGecko};
use geckoftl::geckoftl_core::recovery::gecko_recover;
use proptest::prelude::*;
use std::collections::HashMap;

fn tiny_gecko_engine(cache: usize) -> FtlEngine {
    let geo = Geometry::tiny();
    let cfg = FtlConfig {
        cache_entries: cache,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
    };
    let gecko = LogGecko::new(
        geo,
        GeckoConfig {
            page_header_bytes: geo.page_bytes - 64, // force real flush/merge activity
            ..GeckoConfig::paper_default(&geo)
        },
    );
    FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Crash anywhere; recovery must restore every acknowledged write, and
    /// the device must keep operating correctly afterwards.
    #[test]
    fn geckoftl_survives_arbitrary_crash_points(
        writes in prop::collection::vec((0u32..716, any::<u64>()), 100..1200),
        crash_at_frac in 0.0f64..1.0,
        cache in 24usize..96,
    ) {
        let mut engine = tiny_gecko_engine(cache);
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        let crash_at = ((writes.len() as f64) * crash_at_frac) as usize;

        for (i, &(lpn, version)) in writes.iter().enumerate() {
            if i == crash_at {
                let cfg = engine.config();
                let gecko_cfg = engine.backend().gecko().unwrap().config();
                let dev = engine.crash();
                let (rec, _) = gecko_recover(dev, cfg, gecko_cfg);
                engine = rec;
                for (&l, &want) in &oracle {
                    prop_assert_eq!(engine.read(Lpn(l)), Some(want), "post-crash read of L{}", l);
                }
            }
            engine.write(Lpn(lpn), version);
            oracle.insert(lpn, version);
        }
        for (&l, &want) in &oracle {
            prop_assert_eq!(engine.read(Lpn(l)), Some(want), "final read of L{}", l);
        }
    }

    /// Interleaved reads and writes on every baseline keep read-your-writes.
    #[test]
    fn baselines_read_your_writes(
        ops in prop::collection::vec((0u32..716, any::<bool>()), 200..800),
        kind_idx in 0usize..5,
    ) {
        let kind = BaselineKind::ALL[kind_idx];
        let mut engine = build(kind, Geometry::tiny());
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        let mut version = 0u64;
        for &(lpn, is_write) in &ops {
            if is_write {
                version += 1;
                engine.write(Lpn(lpn), version);
                oracle.insert(lpn, version);
            } else {
                prop_assert_eq!(engine.read(Lpn(lpn)), oracle.get(&lpn).copied());
            }
        }
    }

    /// Clean shutdown + recovery resolves every recovered entry to clean
    /// without losing data (App. C.3.1 false-alarm path).
    #[test]
    fn clean_shutdown_round_trip(
        writes in prop::collection::vec((0u32..716, any::<u64>()), 50..600),
    ) {
        let mut engine = tiny_gecko_engine(64);
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        for &(lpn, version) in &writes {
            engine.write(Lpn(lpn), version);
            oracle.insert(lpn, version);
        }
        engine.shutdown_clean();
        let cfg = engine.config();
        let gecko_cfg = engine.backend().gecko().unwrap().config();
        let dev = engine.crash();
        let (mut rec, _) = gecko_recover(dev, cfg, gecko_cfg);
        rec.sync_all_dirty();
        for (&l, &want) in &oracle {
            prop_assert_eq!(rec.read(Lpn(l)), Some(want));
        }
        prop_assert_eq!(rec.cache().dirty_count(), 0);
    }
}
