//! Criterion benches mirroring the paper's tables/figures — one target per
//! experiment, each measuring the steady-state cost of the operation that
//! experiment studies (reduced sizes so `cargo bench` stays fast). The full
//! figure data comes from the `reproduce` binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flash_sim::{Geometry, Lpn};
use ftl_baselines::ftls::{build_geckoftl_tuned, build_with};
use ftl_baselines::BaselineKind;
use ftl_models::{capacity_sweep, ram_model, recovery_model, FtlName};
use ftl_workloads::{Uniform, WorkloadOp};
use geckoftl_core::ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy};
use geckoftl_core::gecko::GeckoConfig;
use geckoftl_core::recovery::gecko_recover;

fn bench_geo() -> Geometry {
    Geometry::new(256, 128, 4096, 0.7) // 128 MB simulated device
}

fn cfg(geo: &Geometry, policy: GcPolicy, recovery: RecoveryPolicy) -> FtlConfig {
    FtlConfig {
        cache_entries: FtlConfig::scaled_cache_entries(geo),
        gc_free_threshold: 8,
        gc_policy: policy,
        recovery,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    }
}

fn warmed(mut engine: FtlEngine, seed: u64) -> (FtlEngine, Uniform) {
    let logical = engine.geometry().logical_pages();
    for lpn in 0..logical as u32 {
        engine.write(Lpn(lpn), 0);
    }
    let mut gen = Uniform::new(seed, logical);
    for op in (&mut gen).take((logical / 2) as usize) {
        if let WorkloadOp::Write(lpn) = op {
            engine.write(lpn, 1);
        }
    }
    (engine, gen)
}

fn bench_update(c: &mut Criterion, name: &str, engine: FtlEngine, seed: u64) {
    let (mut engine, mut gen) = warmed(engine, seed);
    c.bench_function(name, |b| {
        b.iter(|| {
            if let Some(WorkloadOp::Write(lpn)) = gen.next() {
                engine.write(black_box(lpn), 2);
            }
        });
    });
}

/// Figure 9: steady-state update cost, Gecko (T=2) vs flash PVB.
fn fig09(c: &mut Criterion) {
    let geo = bench_geo();
    bench_update(
        c,
        "fig09_update_gecko_t2",
        build_geckoftl_tuned(
            geo,
            cfg(
                &geo,
                GcPolicy::MetadataAware,
                RecoveryPolicy::CheckpointDeferred,
            ),
            GeckoConfig::paper_default(&geo),
        ),
        1,
    );
    bench_update(
        c,
        "fig09_update_flash_pvb",
        build_with(
            BaselineKind::MuFtl,
            geo,
            cfg(&geo, GcPolicy::MetadataAware, RecoveryPolicy::Battery),
        ),
        1,
    );
}

/// Figure 10: update cost with and without entry-partitioning at B=512.
fn fig10(c: &mut Criterion) {
    let geo = Geometry::new(256, 512, 4096, 0.7);
    for (name, s) in [
        ("fig10_update_s1_b512", 1u32),
        ("fig10_update_s16_b512", 16),
    ] {
        let gecko_cfg = GeckoConfig {
            partitions: s,
            ..GeckoConfig::paper_default(&geo)
        };
        bench_update(
            c,
            name,
            build_geckoftl_tuned(
                geo,
                cfg(
                    &geo,
                    GcPolicy::MetadataAware,
                    RecoveryPolicy::CheckpointDeferred,
                ),
                gecko_cfg,
            ),
            2,
        );
    }
}

/// Figure 11: update cost at two device sizes (logarithmic growth).
fn fig11(c: &mut Criterion) {
    for (name, blocks) in [("fig11_update_k256", 256u32), ("fig11_update_k1024", 1024)] {
        let geo = Geometry::new(blocks, 128, 4096, 0.7);
        bench_update(
            c,
            name,
            build_geckoftl_tuned(
                geo,
                cfg(
                    &geo,
                    GcPolicy::MetadataAware,
                    RecoveryPolicy::CheckpointDeferred,
                ),
                GeckoConfig::paper_default(&geo),
            ),
            3,
        );
    }
}

/// Figure 12: update cost at low over-provisioning (frequent GC).
fn fig12(c: &mut Criterion) {
    let geo = Geometry::new(256, 128, 4096, 0.85);
    bench_update(
        c,
        "fig12_update_r085",
        build_geckoftl_tuned(
            geo,
            cfg(
                &geo,
                GcPolicy::MetadataAware,
                RecoveryPolicy::CheckpointDeferred,
            ),
            GeckoConfig::paper_default(&geo),
        ),
        4,
    );
}

/// Figures 1 & 13 (models): evaluating the RAM/recovery models across all
/// five FTLs at full 2 TB paper scale.
fn fig13_models(c: &mut Criterion) {
    let geo = Geometry::paper_2tb();
    c.bench_function("fig13_ram_and_recovery_models", |b| {
        b.iter(|| {
            for name in FtlName::ALL {
                black_box(ram_model(name, &geo, 1 << 19).total());
                black_box(
                    recovery_model(name, &geo, 1 << 19, 0.1)
                        .total_seconds(&flash_sim::LatencyModel::paper()),
                );
            }
        });
    });
    c.bench_function("fig01_capacity_sweep", |b| {
        b.iter(|| black_box(capacity_sweep(FtlName::LazyFtl, 1 << 17, 1 << 23, 0.1)));
    });
}

/// Figure 13 (bottom) / 14: one steady-state update on DFTL and GeckoFTL
/// under the shared-GC configuration.
fn fig14(c: &mut Criterion) {
    let geo = bench_geo();
    bench_update(
        c,
        "fig14_update_dftl_small_cache",
        build_with(
            BaselineKind::Dftl,
            geo,
            cfg(&geo, GcPolicy::MetadataAware, RecoveryPolicy::Battery),
        ),
        5,
    );
}

/// GeckoRec end-to-end on a freshly crashed small device.
fn recovery(c: &mut Criterion) {
    let geo = Geometry::tiny();
    c.bench_function("geckorec_full_recovery", |b| {
        b.iter_batched(
            || {
                let gecko_cfg = GeckoConfig {
                    page_header_bytes: geo.page_bytes - 64,
                    ..GeckoConfig::paper_default(&geo)
                };
                let mut engine = build_geckoftl_tuned(
                    geo,
                    FtlConfig {
                        cache_entries: 64,
                        gc_free_threshold: 8,
                        gc_policy: GcPolicy::MetadataAware,
                        recovery: RecoveryPolicy::CheckpointDeferred,
                        checkpoint_period: None,
                        qos_headroom_blocks: 0,
                    },
                    gecko_cfg,
                );
                let logical = engine.geometry().logical_pages();
                for op in Uniform::new(6, logical).take(2000) {
                    if let WorkloadOp::Write(lpn) = op {
                        engine.write(lpn, 1);
                    }
                }
                let cfg = engine.config();
                (engine.crash(), cfg, gecko_cfg)
            },
            |(dev, cfg, gecko_cfg)| black_box(gecko_recover(dev, cfg, gecko_cfg)),
            criterion::BatchSize::LargeInput,
        );
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = fig09, fig10, fig11, fig12, fig13_models, fig14, recovery
}
criterion_main!(benches);
