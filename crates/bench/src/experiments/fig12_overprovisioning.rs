//! Figure 12: over-provisioning barely affects Gecko's write-amplification.
//! Lower over-provisioning (higher R) means GC runs more often relative to
//! application writes — more GC *queries* — but queries are cheap reads, so
//! the WA contribution stays small (§5.2).

use crate::harness::measure_uniform;
use crate::report::{f3, Table};
use flash_sim::{Geometry, IoPurpose};
use ftl_baselines::ftls::build_geckoftl_tuned;
use geckoftl_core::ftl::{FtlConfig, GcPolicy, RecoveryPolicy};
use geckoftl_core::gecko::GeckoConfig;

/// Run the Figure-12 sweep over R ∈ {0.5 .. 0.9}.
pub fn run() -> Vec<Table> {
    let mut t = Table::new(
        "Figure 12 — Gecko validity IO vs over-provisioning (R = logical/physical)",
        &[
            "R",
            "query reads /10k",
            "validity writes /10k",
            "validity WA",
            "GC ops /10k",
        ],
    );
    for r10 in [5u32, 6, 7, 8, 9] {
        let r = r10 as f64 / 10.0;
        let geo = Geometry::new(1 << 10, 1 << 7, 1 << 12, r);
        let cfg = FtlConfig {
            cache_entries: FtlConfig::scaled_cache_entries(&geo),
            gc_free_threshold: 8,
            gc_policy: GcPolicy::MetadataAware,
            recovery: RecoveryPolicy::CheckpointDeferred,
            checkpoint_period: None,
            qos_headroom_blocks: 0,
        };
        let mut engine = build_geckoftl_tuned(geo, cfg, GeckoConfig::paper_default(&geo));
        let gcs_before = engine.counters.gc_operations;
        let d = measure_uniform(&mut engine, 40_000, 31);
        let gcs = engine.counters.gc_operations - gcs_before;
        let n = d.logical_writes.max(1) as f64;
        let queries = d.counts(IoPurpose::ValidityQuery).page_reads;
        let mut writes = 0u64;
        for p in [
            IoPurpose::ValidityUpdate,
            IoPurpose::ValidityMerge,
            IoPurpose::ValidityGc,
        ] {
            writes += d.counts(p).page_writes;
        }
        t.row(vec![
            format!("{r:.1}"),
            f3(queries as f64 / n * 10_000.0),
            f3(writes as f64 / n * 10_000.0),
            f3(d.wa_breakdown(10.0).validity),
            f3(gcs as f64 / n * 10_000.0),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn queries_rise_with_r_but_wa_stays_low() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let q_low: f64 = rows.first().unwrap()[1].parse().unwrap();
        let q_high: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(
            q_high > q_low,
            "GC queries must rise as over-provisioning shrinks"
        );
        for r in rows {
            let wa: f64 = r[3].parse().unwrap();
            assert!(wa < 0.5, "R={}: validity WA {wa} should stay low", r[0]);
        }
    }
}
