//! Device endurance: the paper's introduction motivates low
//! write-amplification with device *lifetime* — "flash blocks have a limited
//! lifetime with respect to the number of times they have each been
//! overwritten" (§1, §2 idiosyncrasy 3). This experiment runs the same
//! workload on every FTL and reports the erase pressure each design puts on
//! the device, plus the wear spread that the Appendix-D leveler would have
//! to even out.

use crate::harness::{drive, fill_sequential, sim_geometry};
use crate::report::{f3, Table};
use ftl_baselines::{build, BaselineKind};
use ftl_workloads::Uniform;

/// Run the endurance comparison.
pub fn run() -> Vec<Table> {
    let geo = sim_geometry();
    let mut t = Table::new(
        "Endurance — erase pressure per FTL for the same 60k-update workload",
        &[
            "FTL",
            "total erases",
            "erases /1k writes",
            "max block erases",
            "mean erases",
            "projected lifetime (×)",
        ],
    );
    let mut baseline_rate = None;
    for kind in BaselineKind::ALL {
        let mut engine = build(kind, geo);
        fill_sequential(&mut engine);
        let logical = geo.logical_pages();
        let mut gen = Uniform::new(99, logical);
        drive(&mut engine, &mut gen, logical / 2);
        let snap_erases: u64 = geo
            .iter_blocks()
            .map(|b| engine.device().erase_count(b) as u64)
            .sum();
        drive(&mut engine, &mut gen, 60_000);
        let counts: Vec<u64> = geo
            .iter_blocks()
            .map(|b| engine.device().erase_count(b) as u64)
            .collect();
        let total: u64 = counts.iter().sum::<u64>() - snap_erases;
        let max = counts.iter().max().copied().unwrap_or(0);
        let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        let rate = total as f64 / 60.0; // erases per 1k writes
        let lifetime = match baseline_rate {
            None => {
                baseline_rate = Some(rate);
                1.0
            }
            Some(base) => base / rate,
        };
        t.row(vec![
            kind.name().into(),
            total.to_string(),
            f3(rate),
            max.to_string(),
            f3(mean),
            f3(lifetime),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn geckoftl_extends_lifetime_over_flash_pvb() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let rate = |ftl: &str| -> f64 {
            rows.iter().find(|r| r[0] == ftl).unwrap()[2]
                .parse()
                .unwrap()
        };
        // Erase pressure tracks write-amplification: µ-FTL (flash PVB)
        // erases the most; GeckoFTL the least of the flash-validity FTLs.
        assert!(rate("GeckoFTL") < rate("u-FTL"));
        assert!(rate("GeckoFTL") < rate("IB-FTL"));
        assert!(rate("GeckoFTL") <= rate("DFTL") * 1.05);
    }
}
