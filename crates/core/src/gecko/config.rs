//! Tuning knobs of Logarithmic Gecko (paper §3.2–3.3, Figure 2 terms).

use flash_sim::Geometry;

/// Configuration of a [`crate::gecko::LogGecko`] instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeckoConfig {
    /// `T`: size ratio between runs at adjacent levels. Controls the
    /// update-cost vs query-cost trade-off; minimum (and, per §5.1, optimal)
    /// value is 2.
    pub size_ratio: u32,
    /// `S`: entry-partitioning factor (§3.3). Each block's B-bit bitmap is
    /// split into S sub-entries of B/S bits. Must divide the block size.
    pub partitions: u32,
    /// Whether merges use the multi-way policy of Appendix A (merge all
    /// cascading runs at once) instead of recursive two-way merges.
    pub multiway_merge: bool,
    /// Size of a Gecko key in bytes (4 in the paper: a block ID).
    pub key_bytes: u32,
    /// Bytes reserved per run page for the in-page header (run ID, page
    /// index) and pre/postamble bookkeeping (Appendix C.1).
    pub page_header_bytes: u32,
    /// RAM bits per key for the per-run blocked Bloom filter built at
    /// flush/merge time (see [`crate::gecko::filter`]). 0 disables filters;
    /// 8 (the default) targets a ≈2–3 % false-positive rate, letting GC
    /// queries skip runs that cannot contain the victim's keys.
    pub bloom_bits_per_key: u32,
    /// Use the Bloom-filter + fence-pointer fast path for GC queries. When
    /// false, queries use the pre-optimization linear directory scan — kept
    /// as an A/B baseline for the `gecko_query` benchmark and as the
    /// equivalence oracle's twin in property tests.
    pub fast_path: bool,
    /// Run merges to completion inside the update path (the paper's
    /// behavior). When false — the default — a due merge is enqueued on the
    /// incremental merge scheduler ([`crate::gecko::scheduler`]) and drained
    /// in bounded steps charged to subsequent updates or idle ticks; a flush
    /// that finds the previous merge still unfinished forces the remainder
    /// synchronously, so both modes perform the identical merge sequence.
    /// Kept as the A/B baseline for the `merge_latency` experiment.
    pub sync_merge: bool,
    /// Page-IO budget (run-page reads + writes) of one incremental merge
    /// step. Each application write piggybacks at most one step; pages on
    /// distinct flash channels within a step overlap in simulated time.
    /// Ignored when [`GeckoConfig::sync_merge`] is true. Must be ≥ 1.
    pub merge_step_pages: u32,
    /// Number of independent Gecko trees the validity store is split into.
    /// Block `b` belongs to shard `b % shards`, which is exactly
    /// [`flash_sim::Geometry::channel_of`] when `shards == channels`: each
    /// shard's merge queue then holds jobs for one channel and the shards
    /// can be pumped concurrently inside one device overlap window. `1`
    /// (the default) keeps the single-tree layout and is the A/B baseline
    /// the sharded layout is property-tested against. Must be ≥ 1.
    pub shards: u32,
}

impl Default for GeckoConfig {
    /// Geometry-independent defaults: the paper's `T = 2` with multi-way
    /// merging, no entry-partitioning (callers size `S` from the geometry
    /// via [`GeckoConfig::paper_default`]), and the fast query path on.
    fn default() -> Self {
        GeckoConfig {
            size_ratio: 2,
            partitions: 1,
            multiway_merge: true,
            key_bytes: 4,
            page_header_bytes: 32,
            bloom_bits_per_key: 8,
            fast_path: true,
            sync_merge: false,
            merge_step_pages: 4,
            shards: 1,
        }
    }
}

impl GeckoConfig {
    /// The paper's recommended tuning for a device geometry: `T = 2`
    /// (Figure 9) and `S = B / key-bits` (§3.3), with multi-way merging.
    pub fn paper_default(geo: &Geometry) -> Self {
        let cfg = GeckoConfig {
            partitions: Self::recommended_partitions(geo, 4),
            ..GeckoConfig::default()
        };
        cfg.validate(geo);
        cfg
    }

    /// The §3.3 tuning rule `S = B / key` (in bits), clamped to a divisor of
    /// B and at least 1.
    pub fn recommended_partitions(geo: &Geometry, key_bytes: u32) -> u32 {
        let key_bits = key_bytes * 8;
        let b = geo.pages_per_block;
        let mut s = (b / key_bits).max(1);
        while !b.is_multiple_of(s) {
            s -= 1;
        }
        s
    }

    /// Panic if this configuration is inconsistent with the geometry.
    pub fn validate(&self, geo: &Geometry) {
        assert!(self.size_ratio >= 2, "size ratio T must be at least 2");
        assert!(
            self.partitions >= 1,
            "partitioning factor S must be at least 1"
        );
        assert_eq!(
            geo.pages_per_block % self.partitions,
            0,
            "S must divide the block size B"
        );
        assert!(
            self.entries_per_page(geo) >= 2,
            "a Gecko page must hold at least two entries (page too small or B/S too large)"
        );
        assert!(
            self.merge_step_pages >= 1,
            "an incremental merge step must make progress (merge_step_pages ≥ 1)"
        );
        assert!(
            self.shards >= 1,
            "the validity store needs at least 1 shard"
        );
        assert!(
            self.shards <= geo.blocks,
            "cannot have more shards than blocks"
        );
    }

    /// Width in bits of one sub-entry's bitmap: `B / S`.
    pub fn sub_bits(&self, geo: &Geometry) -> u32 {
        geo.pages_per_block / self.partitions
    }

    /// Size of one (sub-)entry in bits: key + bitmap slice + erase flag.
    /// The sub-key is packed into the key field's spare high bits, as in the
    /// paper's S=4 example ("a 32 bits key and a 32 bits chunk").
    pub fn bits_per_entry(&self, geo: &Geometry) -> u32 {
        self.key_bytes * 8 + self.sub_bits(geo) + 1
    }

    /// `V`: number of Gecko entries that fit into one flash page (and hence
    /// into the RAM buffer, whose size is one flash page).
    pub fn entries_per_page(&self, geo: &Geometry) -> u32 {
        let usable_bits = (geo.page_bytes - self.page_header_bytes) * 8;
        usable_bits / self.bits_per_entry(geo)
    }

    /// Maximum number of entries Logarithmic Gecko can hold: one sub-entry
    /// per (block, part).
    pub fn max_entries(&self, geo: &Geometry) -> u64 {
        geo.blocks as u64 * self.partitions as u64
    }

    /// `L = ⌈log_T(max-entries / V)⌉`: number of levels (§3.2).
    pub fn levels(&self, geo: &Geometry) -> u32 {
        let v = self.entries_per_page(geo) as f64;
        let max_pages = (self.max_entries(geo) as f64 / v).max(1.0);
        max_pages.log(self.size_ratio as f64).ceil().max(1.0) as u32
    }

    /// Level a run of `pages` flash pages belongs to: the unique `i` with
    /// `T^i ≤ pages ≤ T^(i+1) − 1` (Figure 2).
    pub fn level_for(&self, pages: u64) -> u32 {
        debug_assert!(pages >= 1);
        let mut level = 0u32;
        let mut bound = self.size_ratio as u64;
        while pages >= bound {
            level += 1;
            bound = bound.saturating_mul(self.size_ratio as u64);
        }
        level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_tuning_rules() {
        let geo = Geometry::paper_2tb();
        let cfg = GeckoConfig::paper_default(&geo);
        assert_eq!(cfg.size_ratio, 2);
        // B=128, key=32 bits → S = 4, sub-entries of 32 bits (§3.3 example).
        assert_eq!(cfg.partitions, 4);
        assert_eq!(cfg.sub_bits(&geo), 32);
        assert_eq!(cfg.bits_per_entry(&geo), 32 + 32 + 1);
    }

    #[test]
    fn entries_per_page_shrinks_with_block_size() {
        let small_b = Geometry::new(1024, 64, 4096, 0.7);
        let big_b = Geometry::new(1024, 512, 4096, 0.7);
        let unpartitioned = |geo: &Geometry| {
            GeckoConfig {
                size_ratio: 2,
                partitions: 1,
                multiway_merge: true,
                key_bytes: 4,
                page_header_bytes: 32,
                ..GeckoConfig::default()
            }
            .entries_per_page(geo)
        };
        assert!(unpartitioned(&small_b) > unpartitioned(&big_b));
    }

    #[test]
    fn partitioning_decouples_v_from_block_size() {
        // With S = B/32, bits-per-entry is constant, so V is too (§3.3).
        let mut vs = Vec::new();
        for b in [64, 128, 256, 512] {
            let geo = Geometry::new(1024, b, 4096, 0.7);
            let cfg = GeckoConfig::paper_default(&geo);
            vs.push(cfg.entries_per_page(&geo));
        }
        assert!(
            vs.windows(2).all(|w| w[0] == w[1]),
            "V must be independent of B: {vs:?}"
        );
    }

    #[test]
    fn level_placement_boundaries() {
        let cfg = GeckoConfig {
            size_ratio: 2,
            partitions: 1,
            multiway_merge: true,
            key_bytes: 4,
            page_header_bytes: 32,
            ..GeckoConfig::default()
        };
        assert_eq!(cfg.level_for(1), 0);
        assert_eq!(cfg.level_for(2), 1);
        assert_eq!(cfg.level_for(3), 1);
        assert_eq!(cfg.level_for(4), 2);
        assert_eq!(cfg.level_for(7), 2);
        assert_eq!(cfg.level_for(8), 3);
        let t4 = GeckoConfig {
            size_ratio: 4,
            ..cfg
        };
        assert_eq!(t4.level_for(1), 0);
        assert_eq!(t4.level_for(3), 0);
        assert_eq!(t4.level_for(4), 1);
        assert_eq!(t4.level_for(15), 1);
        assert_eq!(t4.level_for(16), 2);
    }

    #[test]
    fn level_count_is_logarithmic() {
        let geo = Geometry::paper_2tb();
        let cfg = GeckoConfig::paper_default(&geo);
        let l = cfg.levels(&geo);
        // K·S = 2^24 entries, V ≈ 500 ⇒ ~2^15 pages ⇒ ~15 levels at T=2.
        assert!((10..=20).contains(&l), "levels = {l}");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn validate_rejects_non_divisor_partitions() {
        let geo = Geometry::tiny(); // B = 16
        let cfg = GeckoConfig {
            size_ratio: 2,
            partitions: 3,
            multiway_merge: true,
            key_bytes: 4,
            page_header_bytes: 32,
            ..GeckoConfig::default()
        };
        cfg.validate(&geo);
    }
}
