//! Recovery-time models (paper §2, §4.3, Appendix C; Figure 13 middle).
//!
//! Recovery cost is a sum of per-structure rebuild steps, each a count of
//! spare reads (3 µs), page reads (100 µs) and page writes (1 ms). Battery-
//! backed FTLs skip the steps their battery pre-pays (annotated so figures
//! can show the "battery" tags of Figure 13).

use crate::ram::{gecko_entries_per_page, gecko_pages, pvb_bytes, translation_table_bytes};
use crate::FtlName;
use flash_sim::{Geometry, LatencyModel};

/// One recovery step in the model.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryComponent {
    /// Step name as labelled in Figure 13 (middle).
    pub name: &'static str,
    /// Spare-area reads.
    pub spare_reads: u64,
    /// Full page reads.
    pub page_reads: u64,
    /// Full page writes.
    pub page_writes: u64,
}

impl RecoveryComponent {
    /// Simulated seconds under a latency model.
    pub fn seconds(&self, lat: &LatencyModel) -> f64 {
        (self.spare_reads as f64 * lat.spare_read_us
            + self.page_reads as f64 * lat.page_read_us
            + self.page_writes as f64 * lat.page_write_us)
            / 1e6
    }
}

/// Full recovery model for one FTL.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryModel {
    /// Which FTL this models.
    pub ftl: FtlName,
    /// Steps in execution order.
    pub components: Vec<RecoveryComponent>,
    /// Parallel logical units available for the bulk scans.
    pub channels: u32,
}

impl RecoveryModel {
    /// Total recovery time in seconds.
    pub fn total_seconds(&self, lat: &LatencyModel) -> f64 {
        self.components.iter().map(|c| c.seconds(lat)).sum()
    }

    /// Total recovery time when the bulk scans are striped across the
    /// device's parallel logical units (the paper's suggested mitigation of
    /// the init-scan bottleneck). Every recovery step is a device-wide scan,
    /// so it divides evenly.
    pub fn total_seconds_parallel(&self, lat: &LatencyModel) -> f64 {
        self.total_seconds(lat) / self.channels.max(1) as f64
    }

    /// Seconds spent in one named step (0 if absent).
    pub fn component_seconds(&self, name: &str, lat: &LatencyModel) -> f64 {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map_or(0.0, |c| c.seconds(lat))
    }
}

/// Number of translation pages (live versions) in the device.
fn translation_pages(geo: &Geometry) -> u64 {
    translation_table_bytes(geo).div_ceil(geo.page_bytes as u64)
}

/// The brute-force alternative the paper rules out (§2): scanning every
/// spare area in the device — ≈26 minutes at 2 TB.
pub fn brute_force_scan_seconds(geo: &Geometry, lat: &LatencyModel) -> f64 {
    geo.total_pages() as f64 * lat.spare_read_us / 1e6
}

/// Recovery model for one FTL at a geometry with an LRU cache of
/// `cache_entries` (`C`) entries and (for the restricted-dirty FTLs) the
/// given dirty fraction.
pub fn recovery_model(
    ftl: FtlName,
    geo: &Geometry,
    cache_entries: u64,
    dirty_fraction: f64,
) -> RecoveryModel {
    let k = geo.blocks as u64;
    let tpages = translation_pages(geo);
    let mut components = Vec::new();

    // Step shared by all FTLs: classify every block (BID-style init scan).
    components.push(RecoveryComponent {
        name: "init scan",
        spare_reads: k,
        page_reads: 0,
        page_writes: 0,
    });

    // Rebuilding the translation directory (GMD or B-tree root): scan the
    // spare areas of all pages in translation blocks (live + stale ≈ 2×).
    components.push(RecoveryComponent {
        name: "translation",
        spare_reads: 2 * tpages,
        page_reads: 0,
        page_writes: 0,
    });

    match ftl {
        FtlName::Dftl => {
            // Battery persisted PVB at shutdown; read it back from flash.
            components.push(RecoveryComponent {
                name: "PVB",
                spare_reads: 0,
                page_reads: pvb_bytes(geo).div_ceil(geo.page_bytes as u64),
                page_writes: 0,
            });
            // Dirty entries: battery → free.
        }
        FtlName::LazyFtl => {
            // Rebuild the RAM PVB by scanning the whole translation table.
            components.push(RecoveryComponent {
                name: "PVB",
                spare_reads: 0,
                page_reads: tpages,
                page_writes: 0,
            });
            // Synchronize the ≤ f·C dirty entries before resuming: each is
            // a translation-page read-modify-write.
            let dirty = (cache_entries as f64 * dirty_fraction) as u64;
            components.push(RecoveryComponent {
                name: "LRU cache",
                spare_reads: 0,
                page_reads: dirty,
                page_writes: dirty,
            });
        }
        FtlName::MuFtl => {
            // PVB already in flash; rebuild BVC by reading it once.
            components.push(RecoveryComponent {
                name: "validity metadata",
                spare_reads: 0,
                page_reads: pvb_bytes(geo).div_ceil(geo.page_bytes as u64),
                page_writes: 0,
            });
            // Dirty entries: battery → free.
        }
        FtlName::IbFtl => {
            // Scan the entire page validity log (size bounded to 2·D
            // entries by cleaning) to rebuild chain heads and BVC.
            let entries_per_page = (geo.page_bytes as u64 - 32) / 16;
            let log_pages = (2 * geo.overprovisioned_pages()).div_ceil(entries_per_page);
            components.push(RecoveryComponent {
                name: "validity metadata",
                spare_reads: 0,
                page_reads: log_pages,
                page_writes: 0,
            });
            let dirty = (cache_entries as f64 * dirty_fraction) as u64;
            components.push(RecoveryComponent {
                name: "LRU cache",
                spare_reads: 0,
                page_reads: dirty,
                page_writes: dirty,
            });
        }
        FtlName::GeckoFtl => {
            // Run directories: spare-scan the Gecko pages + read one
            // postamble per run (≈ L pages).
            let gpages = gecko_pages(geo);
            components.push(RecoveryComponent {
                name: "run directories",
                spare_reads: gpages,
                page_reads: 20, // preambles/postambles: one or two per run
                page_writes: 0,
            });
            // Buffer recovery: compare up to 2·V translation pages (C.2.2).
            let v = gecko_entries_per_page(geo);
            components.push(RecoveryComponent {
                name: "gecko buffer",
                spare_reads: v, // before-image spot checks
                page_reads: 2 * v,
                page_writes: 0,
            });
            // BVC: read every live Gecko page once (step 5).
            components.push(RecoveryComponent {
                name: "validity metadata",
                spare_reads: 0,
                page_reads: gpages,
                page_writes: 0,
            });
            // Dirty entries: K recency probes + 2·C backwards-scan spare
            // reads; synchronization deferred (no reads/writes here —
            // that is the paper's headline recovery win).
            components.push(RecoveryComponent {
                name: "LRU cache",
                spare_reads: k + 2 * cache_entries,
                page_reads: 0,
                page_writes: 0,
            });
        }
    }

    RecoveryModel {
        ftl,
        components,
        channels: geo.channels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (Geometry, LatencyModel) {
        (Geometry::paper_2tb(), LatencyModel::paper())
    }

    const C: u64 = 1 << 19;

    #[test]
    fn brute_force_takes_about_26_minutes() {
        let (g, lat) = paper();
        let secs = brute_force_scan_seconds(&g, &lat);
        assert!(
            (1500.0..1700.0).contains(&secs),
            "brute force = {secs:.0} s"
        );
    }

    #[test]
    fn lazyftl_pvb_rebuild_takes_about_36_seconds() {
        let (g, lat) = paper();
        let m = recovery_model(FtlName::LazyFtl, &g, C, 0.1);
        let pvb = m.component_seconds("PVB", &lat);
        assert!((33.0..40.0).contains(&pvb), "PVB rebuild = {pvb:.1} s");
    }

    #[test]
    fn unrestricted_sync_would_take_about_7_minutes() {
        // min(C, TT/P) page reads+writes if all dirty entries had to be
        // synchronized before resuming (paper §2).
        let (g, lat) = paper();
        let tpages = translation_table_bytes(&g).div_ceil(g.page_bytes as u64);
        let n = C.min(tpages);
        let secs = n as f64 * (lat.page_read_us + lat.page_write_us) / 1e6;
        assert!((380.0..440.0).contains(&secs), "full sync = {secs:.0} s");
    }

    #[test]
    fn geckoftl_recovers_at_least_51_percent_faster_than_lazyftl() {
        let (g, lat) = paper();
        let lazy = recovery_model(FtlName::LazyFtl, &g, C, 0.1).total_seconds(&lat);
        let gecko = recovery_model(FtlName::GeckoFtl, &g, C, 0.1).total_seconds(&lat);
        let reduction = 1.0 - gecko / lazy;
        assert!(
            reduction >= 0.51,
            "reduction = {reduction:.3} (lazy {lazy:.1}s, gecko {gecko:.1}s)"
        );
    }

    #[test]
    fn battery_ftls_skip_dirty_entry_recovery() {
        let (g, lat) = paper();
        for ftl in [FtlName::Dftl, FtlName::MuFtl] {
            let m = recovery_model(ftl, &g, C, 0.1);
            assert_eq!(m.component_seconds("LRU cache", &lat), 0.0, "{:?}", ftl);
            assert!(ftl.needs_battery());
        }
    }

    #[test]
    fn init_scan_is_shared_bottleneck() {
        // "the time to initially scan the device ... is emerging as a
        // bottleneck for all FTLs."
        let (g, lat) = paper();
        for ftl in FtlName::ALL {
            let m = recovery_model(ftl, &g, C, 0.1);
            let scan = m.component_seconds("init scan", &lat);
            assert!(
                (12.0..14.0).contains(&scan),
                "{:?}: init scan = {scan:.1} s",
                ftl
            );
        }
    }

    #[test]
    fn channel_parallelism_divides_scan_time() {
        let lat = LatencyModel::paper();
        let serial = recovery_model(FtlName::GeckoFtl, &Geometry::paper_2tb(), C, 0.1);
        let striped = recovery_model(
            FtlName::GeckoFtl,
            &Geometry::paper_2tb().with_channels(8),
            C,
            0.1,
        );
        assert!(
            (striped.total_seconds_parallel(&lat) - serial.total_seconds(&lat) / 8.0).abs() < 1e-9
        );
        assert_eq!(striped.total_seconds(&lat), serial.total_seconds(&lat));
    }

    #[test]
    fn recovery_time_grows_with_capacity() {
        let lat = LatencyModel::paper();
        let small = recovery_model(FtlName::LazyFtl, &Geometry::paper_scaled(1 << 20), C, 0.1)
            .total_seconds(&lat);
        let big = recovery_model(FtlName::LazyFtl, &Geometry::paper_scaled(1 << 23), C, 0.1)
            .total_seconds(&lat);
        // The capacity-proportional steps (init scan, PVB rebuild) grow 8×;
        // the constant dirty-entry sync term dampens the total.
        assert!(
            big > 2.0 * small,
            "8× capacity should grow recovery >2×: {small:.1} → {big:.1}"
        );
    }
}
