//! # gecko-bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation, shared simulation drivers, and plain-text/CSV reporting.
//!
//! Run everything with the `reproduce` binary:
//!
//! ```text
//! cargo run --release -p gecko-bench --bin reproduce -- all
//! ```
//!
//! Experiments use scaled-down device geometries (see DESIGN.md): RAM and
//! recovery comparisons come from the analytical models at full paper scale
//! (as in the paper), write-amplification comparisons from simulation.

pub mod experiments;
pub mod fuzz;
pub mod golden;
pub mod harness;
pub mod report;

/// Process-wide smoke switch: `reproduce --smoke` shrinks the heavy
/// experiments to CI-sized runs (and skips rewriting committed JSON
/// baselines). Plain `cargo test` never sets it, so the release-only
/// experiment tests always exercise the full configuration.
pub mod smoke {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SMOKE: AtomicBool = AtomicBool::new(false);

    /// Turn smoke mode on or off (set once, before experiments run).
    pub fn set(on: bool) {
        SMOKE.store(on, Ordering::Relaxed);
    }

    /// Whether experiments should run their shrunken smoke configuration.
    pub fn on() -> bool {
        SMOKE.load(Ordering::Relaxed)
    }
}

/// Process-wide trace switch: `reproduce <exp> --trace out.json` makes the
/// experiments that support it (currently `merge_latency`) record telemetry
/// over the measured interval and export a Chrome Trace Event Format JSON
/// timeline (load it in `chrome://tracing` / Perfetto).
pub mod tracing {
    use std::sync::OnceLock;

    static PATH: OnceLock<String> = OnceLock::new();

    /// Set the trace output path (set once, before experiments run).
    pub fn set(path: &str) {
        let _ = PATH.set(path.to_string());
    }

    /// The trace output path, if `--trace` was given.
    pub fn path() -> Option<&'static str> {
        PATH.get().map(|s| s.as_str())
    }
}

/// Process-wide shard override: `reproduce <exp> --shards N` runs the
/// experiments that support it (currently `merge_latency`) with the
/// validity store split into N per-channel Gecko trees instead of one.
/// 0 (the default) means "use the experiment's own configuration".
pub mod shards {
    use std::sync::atomic::{AtomicU32, Ordering};

    static SHARDS: AtomicU32 = AtomicU32::new(0);

    /// Set the shard-count override (set once, before experiments run).
    pub fn set(n: u32) {
        SHARDS.store(n, Ordering::Relaxed);
    }

    /// The `--shards` override, if one was given.
    pub fn get() -> Option<u32> {
        match SHARDS.load(Ordering::Relaxed) {
            0 => None,
            n => Some(n),
        }
    }
}

pub use harness::{
    drive, fill_sequential, measure_uniform, replay_trace, sim_geometry, Driver, MeasuredInterval,
};
pub use report::{format_table, write_csv, Table};
