//! A minimal JSON parser and Chrome-trace validator.
//!
//! The workspace has no serde (offline container, no crates.io), and the
//! exporters hand-roll their JSON — so the CI gate that proves an exported
//! trace actually *parses* needs a real parser on this side. This is a
//! small recursive-descent implementation covering the full JSON grammar,
//! plus a validator for the Trace Event Format subset the exporter emits.

use std::collections::BTreeSet;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected byte '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected literal '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad utf8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex).map_err(|_| self.err("bad utf8"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("bad utf8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// What a validated trace contained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSummary {
    /// All events including metadata.
    pub total_events: usize,
    /// `ph:"X"` complete events.
    pub complete_events: usize,
    /// Distinct `tid`s among `pid 0` (flash channel) complete events.
    pub channel_lanes: usize,
    /// Distinct `tid`s among `pid 1` (FTL span) complete events.
    pub span_lanes: usize,
    /// `otherData.dropped_events`, if the exporter reported it.
    pub dropped_events: u64,
}

/// Validate that `text` is a Chrome Trace Event Format document of the
/// shape the telemetry exporter emits: a `traceEvents` array of events
/// carrying `ph`, with every complete (`ph:"X"`) event carrying numeric
/// `ts`, `dur`, `pid`, `tid` and a `name` — and at least one complete
/// event on a `pid 0` channel lane. Empty traces are an error.
pub fn validate_chrome_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing top-level 'traceEvents'")?
        .as_arr()
        .ok_or("'traceEvents' is not an array")?;
    let mut complete = 0usize;
    let mut channel_lanes = BTreeSet::new();
    let mut span_lanes = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing 'ph'"))?;
        if ph != "X" {
            continue;
        }
        complete += 1;
        for field in ["ts", "dur", "pid", "tid"] {
            ev.get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i}: missing numeric '{field}'"))?;
        }
        ev.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing 'name'"))?;
        let pid = ev.get("pid").and_then(Json::as_num).expect("checked") as i64;
        let tid = ev.get("tid").and_then(Json::as_num).expect("checked") as i64;
        match pid {
            0 => {
                channel_lanes.insert(tid);
            }
            1 => {
                span_lanes.insert(tid);
            }
            other => return Err(format!("event {i}: unknown pid {other}")),
        }
    }
    if complete == 0 {
        return Err("trace has no complete (ph:\"X\") events".to_string());
    }
    if channel_lanes.is_empty() {
        return Err("trace has no pid-0 channel-lane events".to_string());
    }
    let dropped = doc
        .get("otherData")
        .and_then(|o| o.get("dropped_events"))
        .and_then(Json::as_num)
        .unwrap_or(0.0) as u64;
    Ok(TraceSummary {
        total_events: events.len(),
        complete_events: complete,
        channel_lanes: channel_lanes.len(),
        span_lanes: span_lanes.len(),
        dropped_events: dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse_json(r#"{"a": [1, -2.5, 1e3, "x\ny", true, null], "b": {}}"#).unwrap();
        let a = doc.get("a").unwrap().as_arr().unwrap();
        assert_eq!(a[0].as_num(), Some(1.0));
        assert_eq!(a[1].as_num(), Some(-2.5));
        assert_eq!(a[2].as_num(), Some(1000.0));
        assert_eq!(a[3].as_str(), Some("x\ny"));
        assert_eq!(a[4], Json::Bool(true));
        assert_eq!(a[5], Json::Null);
        assert_eq!(doc.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "01x",
            "\"unterminated",
            "{} extra",
        ] {
            assert!(parse_json(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn validator_requires_channel_lanes() {
        let no_channels = r#"{"traceEvents":[
            {"name":"s","cat":"span","ph":"X","ts":0,"dur":1,"pid":1,"tid":0,"args":{}}
        ]}"#;
        assert!(validate_chrome_trace(no_channels).is_err());
        let ok = r#"{"traceEvents":[
            {"name":"w","cat":"io","ph":"X","ts":0,"dur":1000,"pid":0,"tid":3,"args":{}}
        ]}"#;
        let s = validate_chrome_trace(ok).unwrap();
        assert_eq!(s.complete_events, 1);
        assert_eq!(s.channel_lanes, 1);
    }

    #[test]
    fn validator_rejects_incomplete_x_events() {
        let missing_dur = r#"{"traceEvents":[
            {"name":"w","ph":"X","ts":0,"pid":0,"tid":0}
        ]}"#;
        assert!(validate_chrome_trace(missing_dur).is_err());
    }
}
