//! Property-based tests for the full FTL: for any workload and any crash
//! point, GeckoFTL never loses an acknowledged write (DESIGN.md invariants
//! 2–4), and the baseline FTLs satisfy read-your-writes.

use geckoftl::flash_sim::{EraseFault, FaultPlan, Geometry, Lpn, WriteFault};
use geckoftl::ftl_baselines::{build, BaselineKind};
use geckoftl::geckoftl_core::ftl::{
    FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend,
};
use geckoftl::geckoftl_core::gecko::{GeckoConfig, LogGecko};
use geckoftl::geckoftl_core::recovery::gecko_recover;
use proptest::prelude::*;
use std::collections::HashMap;

fn tiny_gecko_engine(cache: usize) -> FtlEngine {
    let geo = Geometry::tiny();
    let cfg = FtlConfig {
        cache_entries: cache,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko = LogGecko::new(
        geo,
        GeckoConfig {
            page_header_bytes: geo.page_bytes - 64, // force real flush/merge activity
            ..GeckoConfig::paper_default(&geo)
        },
    );
    FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko))
}

/// Drive `writes` against an engine carrying `plan`. Recoverable faults
/// (program/erase failures) are absorbed inline by the FTL; crash faults
/// (torn pages, mid-erase power cuts) surface as a crash image, which we
/// recover from mid-run exactly as the fuzz harness does: the interrupted
/// write is unacknowledged (old-or-new), everything older must survive.
fn run_faulted(writes: &[(u32, u64)], cache: usize, plan: FaultPlan) -> Result<bool, String> {
    let mut engine = tiny_gecko_engine(cache);
    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko().unwrap().config();
    engine.with_raw_parts(|dev, _| dev.set_fault_plan(plan));
    let mut oracle: HashMap<u32, u64> = HashMap::new();
    let mut crashed = false;
    for &(lpn, version) in writes {
        engine.write(Lpn(lpn), version);
        let image = engine.with_raw_parts(|dev, _| dev.take_crash_image());
        if let Some(image) = image {
            crashed = true;
            drop(engine);
            let (rec, _) = gecko_recover(image, cfg, gecko_cfg);
            engine = rec;
            for (&l, &want) in &oracle {
                if l == lpn {
                    continue;
                }
                let got = engine.read(Lpn(l));
                if got != Some(want) {
                    return Err(format!("post-crash read of L{l}: got {got:?}, want {want}"));
                }
            }
            let got = engine.read(Lpn(lpn));
            let old = oracle.get(&lpn).copied();
            if got != old && got != Some(version) {
                return Err(format!(
                    "in-flight L{lpn}: got {got:?}, want old {old:?} or new Some({version})"
                ));
            }
            engine.write(Lpn(lpn), version); // host retry of the lost op
        }
        oracle.insert(lpn, version);
    }
    for (&l, &want) in &oracle {
        let got = engine.read(Lpn(l));
        if got != Some(want) {
            return Err(format!("final read of L{l}: got {got:?}, want {want}"));
        }
    }
    Ok(crashed)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Crash anywhere; recovery must restore every acknowledged write, and
    /// the device must keep operating correctly afterwards.
    #[test]
    fn geckoftl_survives_arbitrary_crash_points(
        writes in prop::collection::vec((0u32..716, any::<u64>()), 100..1200),
        crash_at_frac in 0.0f64..1.0,
        cache in 24usize..96,
    ) {
        let mut engine = tiny_gecko_engine(cache);
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        let crash_at = ((writes.len() as f64) * crash_at_frac) as usize;

        for (i, &(lpn, version)) in writes.iter().enumerate() {
            if i == crash_at {
                let cfg = engine.config();
                let gecko_cfg = engine.backend().gecko().unwrap().config();
                let dev = engine.crash();
                let (rec, _) = gecko_recover(dev, cfg, gecko_cfg);
                engine = rec;
                for (&l, &want) in &oracle {
                    prop_assert_eq!(engine.read(Lpn(l)), Some(want), "post-crash read of L{}", l);
                }
            }
            engine.write(Lpn(lpn), version);
            oracle.insert(lpn, version);
        }
        for (&l, &want) in &oracle {
            prop_assert_eq!(engine.read(Lpn(l)), Some(want), "final read of L{}", l);
        }
    }

    /// Interleaved reads and writes on every baseline keep read-your-writes.
    #[test]
    fn baselines_read_your_writes(
        ops in prop::collection::vec((0u32..716, any::<bool>()), 200..800),
        kind_idx in 0usize..5,
    ) {
        let kind = BaselineKind::ALL[kind_idx];
        let mut engine = build(kind, Geometry::tiny());
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        let mut version = 0u64;
        for &(lpn, is_write) in &ops {
            if is_write {
                version += 1;
                engine.write(Lpn(lpn), version);
                oracle.insert(lpn, version);
            } else {
                prop_assert_eq!(engine.read(Lpn(lpn)), oracle.get(&lpn).copied());
            }
        }
    }

    /// Clean shutdown + recovery resolves every recovered entry to clean
    /// without losing data (App. C.3.1 false-alarm path).
    #[test]
    fn clean_shutdown_round_trip(
        writes in prop::collection::vec((0u32..716, any::<u64>()), 50..600),
    ) {
        let mut engine = tiny_gecko_engine(64);
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        for &(lpn, version) in &writes {
            engine.write(Lpn(lpn), version);
            oracle.insert(lpn, version);
        }
        engine.shutdown_clean();
        let cfg = engine.config();
        let gecko_cfg = engine.backend().gecko().unwrap().config();
        let dev = engine.crash();
        let (mut rec, _) = gecko_recover(dev, cfg, gecko_cfg);
        rec.sync_all_dirty();
        for (&l, &want) in &oracle {
            prop_assert_eq!(rec.read(Lpn(l)), Some(want));
        }
        prop_assert_eq!(rec.cache().dirty_count(), 0);
    }

    /// Power cut *inside an erase operation* (the pulse completed, firmware
    /// never resumed), searched over erase-attempt indices. A narrow LPN
    /// range forces heavy overwrite traffic, so GC and Gecko merges erase
    /// blocks throughout the run and most sampled indices are reached.
    #[test]
    fn geckoftl_survives_crash_inside_erase(
        writes in prop::collection::vec((0u32..180, any::<u64>()), 300..1000),
        erase_at in 0u64..40,
        cache in 24usize..96,
    ) {
        let plan = FaultPlan::new().on_erase(erase_at, EraseFault::Crash);
        let res = run_faulted(&writes, cache, plan);
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }

    /// Power cut mid-program with the spare area lost (the page's identity
    /// never made it to flash), searched over write-attempt indices. Also
    /// mixes in a torn *data* page at a second index: only the first fault
    /// reached delivers a crash image, so both orderings get exercised.
    #[test]
    fn geckoftl_survives_mid_spare_write_crash(
        writes in prop::collection::vec((0u32..716, any::<u64>()), 200..900),
        torn_spare_at in 0u64..1500,
        torn_data_at in 0u64..1500,
        cache in 24usize..96,
    ) {
        let plan = FaultPlan::new()
            .on_write(torn_spare_at, WriteFault::TornSpare)
            .on_write(torn_data_at, WriteFault::TornData);
        let res = run_faulted(&writes, cache, plan);
        prop_assert!(res.is_ok(), "{}", res.unwrap_err());
    }

    /// Recoverable hardware faults — failed programs and failed erases —
    /// must be absorbed on the write path (retry on a fresh page, retire
    /// the bad block) without the host ever noticing: no crash image, no
    /// lost write.
    #[test]
    fn geckoftl_absorbs_program_and_erase_failures(
        writes in prop::collection::vec((0u32..300, any::<u64>()), 300..900),
        program_at in 0u64..1200,
        erase_at in 0u64..30,
    ) {
        let plan = FaultPlan::new()
            .on_write(program_at, WriteFault::ProgramFail)
            .on_erase(erase_at, EraseFault::Fail);
        match run_faulted(&writes, 64, plan) {
            Ok(crashed) => prop_assert!(!crashed, "recoverable faults must not crash"),
            Err(e) => prop_assert!(false, "{}", e),
        }
    }
}
