//! Figure 14: even when integrated RAM is plentiful enough to hold the PVB,
//! GeckoFTL wins by spending that RAM on a larger mapping cache instead
//! (§5.4).
//!
//! Three FTLs share one RAM budget (scaled from the paper's ≈70 MB):
//! * DFTL keeps the PVB in RAM and gets only the small cache;
//! * µ-FTL pushes the PVB to flash and gets the big cache — but pays PVB IO;
//! * GeckoFTL gets the big cache *and* cheap validity maintenance.
//!
//! All three run GeckoFTL's garbage-collection scheme, per the paper's
//! apples-to-apples setup.

use crate::harness::{drive, fill_sequential, sim_geometry};
use crate::report::{f3, Table};
use ftl_baselines::{build_with, BaselineKind};
use ftl_workloads::Uniform;
use geckoftl_core::ftl::{FtlConfig, GcPolicy, RecoveryPolicy};

/// Run the Figure-14 comparison.
pub fn run() -> Vec<Table> {
    let geo = sim_geometry();
    // Budget: the RAM PVB size converted into cache entries (8 B each),
    // mirroring the paper's 64 MB → +60 MB-of-cache trade.
    let small_cache = FtlConfig::scaled_cache_entries(&geo);
    let pvb_entries = (geo.total_pages() / 8 / 8) as usize;
    let big_cache =
        (small_cache + pvb_entries).min((geo.overprovisioned_pages() / 2 - 64) as usize);

    let mut t = Table::new(
        "Figure 14 — same RAM budget: RAM-PVB + small cache vs flash validity + big cache",
        &[
            "FTL",
            "cache entries",
            "user",
            "translation",
            "validity",
            "total WA",
        ],
    );
    let cases = [
        (
            BaselineKind::Dftl,
            small_cache,
            "DFTL (RAM PVB, small cache)",
        ),
        (
            BaselineKind::MuFtl,
            big_cache,
            "u-FTL (flash PVB, big cache)",
        ),
        (
            BaselineKind::GeckoFtl,
            big_cache,
            "GeckoFTL (gecko, big cache)",
        ),
    ];
    for (kind, cache, label) in cases {
        let cfg = FtlConfig {
            cache_entries: cache,
            gc_free_threshold: 8,
            // The paper gives DFTL and µ-FTL GeckoFTL's GC scheme here.
            gc_policy: GcPolicy::MetadataAware,
            recovery: match kind {
                BaselineKind::GeckoFtl => RecoveryPolicy::CheckpointDeferred,
                _ => RecoveryPolicy::Battery,
            },
            checkpoint_period: None,
            qos_headroom_blocks: 0,
        };
        let mut engine = build_with(kind, geo, cfg);
        fill_sequential(&mut engine);
        let logical = geo.logical_pages();
        let mut gen = Uniform::new(14, logical);
        drive(&mut engine, &mut gen, logical / 2);
        let snap = engine.device().stats().snapshot();
        drive(&mut engine, &mut gen, 60_000);
        let d = engine.device().stats().since(&snap);
        let b = d.wa_breakdown(10.0);
        t.row(vec![
            label.into(),
            cache.to_string(),
            f3(b.user),
            f3(b.translation),
            f3(b.validity),
            f3(b.total()),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg_attr(debug_assertions, ignore = "simulation-heavy; run with --release")]
    fn geckoftl_gets_best_of_both_worlds() {
        let tables = super::run();
        let rows = &tables[0].rows;
        let get = |i: usize, col: usize| -> f64 { rows[i][col].parse().unwrap() };
        let (dftl, mu, gecko) = (0, 1, 2);
        // DFTL: no validity IO, but high translation overhead (small cache).
        assert!(get(dftl, 4) < 0.05);
        // Big-cache FTLs amortize synchronization far better.
        assert!(
            get(mu, 3) < get(dftl, 3) / 2.0,
            "µ-FTL translation must drop"
        );
        assert!(
            get(gecko, 3) < get(dftl, 3) / 2.0,
            "GeckoFTL translation must drop"
        );
        // µ-FTL pays for its flash PVB; GeckoFTL doesn't.
        assert!(get(mu, 4) > 0.5);
        assert!(get(gecko, 4) < get(mu, 4) / 5.0);
        // Net: GeckoFTL has the lowest total WA.
        assert!(get(gecko, 5) < get(mu, 5));
        assert!(get(gecko, 5) < get(dftl, 5));
    }
}
