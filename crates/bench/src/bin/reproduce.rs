//! Reproduce the paper's tables and figures.
//!
//! ```text
//! reproduce all                # every experiment
//! reproduce fig9 fig13         # selected experiments
//! reproduce list               # what exists
//! reproduce all --csv out/     # also write CSV files
//! reproduce merge_latency --smoke   # CI-sized run, no JSON rewrite
//! reproduce merge_latency --smoke --shards 4   # per-channel sharded store
//! reproduce merge_latency --trace trace.json   # Chrome Trace timeline
//! reproduce check-trace trace.json  # validate a trace file (CI)
//! ```

use gecko_bench::experiments::{find, ALL};
use gecko_bench::report::{format_table, write_csv};
use std::path::PathBuf;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut slugs: Vec<&str> = Vec::new();
    let mut csv_dir: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => {
                i += 1;
                csv_dir = Some(PathBuf::from(
                    args.get(i).map(String::as_str).unwrap_or("results"),
                ));
            }
            "--smoke" => gecko_bench::smoke::set(true),
            "--shards" => {
                i += 1;
                let n = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--shards needs a positive integer");
                    std::process::exit(2);
                });
                gecko_bench::shards::set(n);
            }
            "--trace" => {
                i += 1;
                gecko_bench::tracing::set(args.get(i).map(String::as_str).unwrap_or("trace.json"));
            }
            "check-trace" => {
                i += 1;
                let path = args.get(i).map(String::as_str).unwrap_or("trace.json");
                check_trace(path);
                return;
            }
            "list" => {
                println!("available experiments:");
                for e in ALL {
                    println!("  {:10} {}", e.slug, e.what);
                }
                return;
            }
            "all" => slugs = ALL.iter().map(|e| e.slug).collect(),
            s => slugs.push(Box::leak(s.to_string().into_boxed_str())),
        }
        i += 1;
    }
    if slugs.is_empty() {
        eprintln!(
            "usage: reproduce <all|list|check-trace|slug...> \
             [--csv dir] [--trace file] [--shards n]"
        );
        eprintln!("run `reproduce list` to see the experiments");
        std::process::exit(2);
    }

    for slug in slugs {
        let Some(exp) = find(slug) else {
            eprintln!("unknown experiment '{slug}' — try `reproduce list`");
            std::process::exit(2);
        };
        let started = Instant::now();
        eprintln!(">> running {slug}: {}", exp.what);
        let tables = (exp.run)();
        for t in &tables {
            println!("{}", format_table(t));
        }
        if let Some(dir) = &csv_dir {
            write_csv(dir, slug, &tables).expect("write CSV");
        }
        eprintln!(
            "<< {slug} done in {:.1}s\n",
            started.elapsed().as_secs_f64()
        );
    }
}

/// Validate a Chrome Trace Event Format file produced by `--trace`: it must
/// parse as JSON, every event must carry the Trace Event fields (`ph`, and
/// `ts`/`dur`/`pid`/`tid` for complete events), and the trace must be
/// non-empty with at least one flash-channel lane. Exits non-zero on any
/// violation, so CI can gate on it.
fn check_trace(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check-trace: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match flash_sim::telemetry::validate_chrome_trace(&text) {
        Ok(s) => {
            println!(
                "{path}: ok — {} events ({} complete), {} channel lanes, {} span lanes, {} dropped",
                s.total_events, s.complete_events, s.channel_lanes, s.span_lanes, s.dropped_events
            );
        }
        Err(e) => {
            eprintln!("check-trace: {path} is not a valid trace: {e}");
            std::process::exit(1);
        }
    }
}
