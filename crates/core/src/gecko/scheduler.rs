//! Incremental, channel-aware merge scheduling for Logarithmic Gecko.
//!
//! The paper runs merges synchronously inside the update path: an update
//! that trips a level-N merge pays the entire merge's flash IO as latency —
//! exactly the tail-latency cliff the amortized analysis of Table 1 argues
//! against. This module takes the merge off the critical path: when a merge
//! becomes due, [`crate::gecko::LogGecko`] enqueues a [`MergeJob`] here
//! instead of running it inline, and the job is *pumped* in bounded steps
//! (at most [`crate::gecko::GeckoConfig::merge_step_pages`] run-page reads
//! or writes per step) piggybacked on subsequent updates or donated by idle
//! ticks. Within one pump, page IO on distinct flash channels overlaps in
//! simulated time (see [`flash_sim::FlashDevice::begin_overlap`]), and jobs
//! are dispatched round-robin onto one queue per [`flash_sim::Geometry`]
//! channel — the LFTL/FMMU "merge worker per channel" shape, scaffolding
//! for a sharded multi-tree engine where independent trees' merges really
//! do run concurrently. (A single tree's merge cascade is a dependency
//! chain, so its jobs execute one at a time; the channel parallelism a
//! single tree sees today is page-level, inside each step.)
//!
//! # State machine
//!
//! A job moves through two IO-charged phases plus a free in-RAM fold:
//!
//! ```text
//! Read ──(all participant pages read)──▶ fold (RAM, no IO)
//!      ──▶ Write ──(postamble page written = sealed)──▶ install
//! ```
//!
//! * **Read**: participant run pages are read newest-data-first into
//!   per-participant entry streams, up to `budget` pages per step.
//! * **Fold**: the k-way collision-resolving merge of Algorithm 3 runs
//!   entirely in RAM the moment the last page arrives.
//! * **Write**: the output run is written page by page through a
//!   [`RunWriter`], up to `budget` pages per step. The run becomes *real*
//!   only when its final page — carrying the postamble — is programmed.
//!
//! # Invariants (what keeps queries and crashes correct)
//!
//! 1. **Participants stay installed.** The input runs remain in
//!    `LogGecko::levels` (and therefore queryable, in correct data-age
//!    order) for the whole life of the job; they are only removed — and
//!    their pages only retired — at *install time*, after the output run is
//!    sealed. A GC query never observes both the inputs and the output.
//! 2. **Atomic install.** Sealing + install happen inside one pump call
//!    with no intervening flash state change, so the switch from "query the
//!    inputs" to "query the output" is atomic with respect to queries.
//! 3. **Crash = forget the job.** A partially written output run has no
//!    complete postamble, so GeckoRec's run recovery (Appendix C.1)
//!    discards it; the participants are still complete and live on flash.
//!    A crash after sealing recovers the output and treats the inputs as
//!    merged-away via the `supersedes_since` window. Either way no
//!    scheduler state needs to be persisted — with one preamble field as
//!    the price of deferral: because an output run is written *after* the
//!    flush that scheduled it (new erases/invalidations may have entered
//!    the RAM buffer in between), every run persists the buffer-flush
//!    watermark current at its write ([`RunMeta::flush_seq`]), and
//!    recovery derives "time of last flush" from that watermark rather
//!    than from `created_seq`. Deriving it from the output's creation time
//!    — correct when merges were synchronous — would make recovery's
//!    step-4a/4b/6 windows skip reports that lived only in the lost
//!    buffer and silently revive stale validity bits.
//! 4. **Reserved identities + span-contiguous plans.** Several jobs may be
//!    in flight per tree at once: flushes no longer drain pending work, and
//!    sharded trees pump their queues concurrently. Two rules keep that
//!    sound without persisting any scheduler state:
//!
//!    * A job's output identity (`RunId` / `created_seq`) is **reserved
//!      from the device sequence at plan time**
//!      ([`flash_sim::FlashDevice::reserve_seq`]), not minted when the
//!      write phase starts — so concurrent write phases can never collide,
//!      and the identity is unique across power failures because the
//!      reservation advances the sequence.
//!    * A plan may only fold a **data-age-contiguous** set of runs: the
//!      candidate set's combined span `[min supersedes_since, max
//!      supersedes_upto]` must not intersect the span of any live run
//!      outside the set. Live spans therefore stay pairwise disjoint and
//!      merging stays laminar, which is exactly what makes
//!      newest-span-first query order and recovery's span-containment
//!      liveness rule ([`crate::gecko::run::RunMeta::supersedes_upto`])
//!      correct with concurrent jobs in flight.

use crate::gecko::config::GeckoConfig;
use crate::gecko::entry::{GeckoEntry, GeckoKey};
use crate::gecko::filter::RunFilter;
use crate::gecko::run::{GeckoPagePayload, Postamble, Run, RunDirEntry, RunId, RunMeta};
use crate::validity::MetaSink;
use flash_sim::{FlashDevice, Geometry, IoPurpose, MetaKind, PageData};
use std::collections::VecDeque;

/// A participant run's slim description: everything the job needs to read,
/// order and later retire the run — without cloning its Bloom filter.
#[derive(Clone, Debug)]
pub struct JobInput {
    /// The run's preamble metadata (identity, level, age, lineage).
    pub meta: RunMeta,
    /// Its run directory (page locations to read and later retire).
    pub pages: Vec<RunDirEntry>,
    /// Entry count, used to pre-size the read stream.
    pub entry_count: u64,
}

impl JobInput {
    /// Describe an installed run.
    pub fn of(run: &Run) -> Self {
        JobInput {
            meta: run.meta.clone(),
            pages: run.pages.clone(),
            entry_count: run.entry_count,
        }
    }
}

/// A completed merge, ready for [`crate::gecko::LogGecko`] to install:
/// retire the inputs' pages, remove them from the levels, and (unless every
/// entry folded away) push the sealed output run.
#[derive(Debug)]
pub struct FinishedMerge {
    /// The participants to retire.
    pub inputs: Vec<JobInput>,
    /// The sealed output run; `None` when all entries were obsolete.
    pub output: Option<Run>,
}

/// Incremental writer of one run: emits the pages of a sorted entry
/// sequence one flash write at a time, carrying the preamble on the first
/// page and the postamble (the persistent run directory) on the last. Both
/// the merge state machine and the synchronous flush path write runs
/// through this, so the on-flash layout has a single source of truth.
#[derive(Debug)]
pub(crate) struct RunWriter {
    meta: RunMeta,
    entries: Vec<GeckoEntry>,
    /// Entry cursor: `entries[..next]` have been written out.
    next: usize,
    /// `V`: entries per page.
    v: usize,
    n_pages: usize,
    /// Key range of every page, precomputed for the postamble.
    ranges: Vec<(GeckoKey, GeckoKey)>,
    dir: Vec<RunDirEntry>,
    filter: Option<RunFilter>,
    purpose: IoPurpose,
}

impl RunWriter {
    /// Start writing `entries` (sorted, non-empty) as a run.
    ///
    /// `identity` is the run's `(id, created_seq)`: merge jobs pass the
    /// pair **reserved at plan time** (see
    /// [`flash_sim::FlashDevice::reserve_seq`]); `None` — buffer flushes,
    /// which write their single page immediately — mints both from the
    /// current device sequence number. Either way the identity is
    /// persistent and strictly monotonic, so ids stay unique across power
    /// failures and across concurrent write phases.
    /// `min_level` clamps placement so merge output never lands above a
    /// participant's level (which would break the data-age ordering queries
    /// rely on when collisions shrink the output).
    /// `flush_seq` is the buffer-flush watermark to persist in the
    /// preamble: `None` stamps the run's own creation time (a buffer
    /// flush's **final** chunk); non-final chunks and merge outputs pass
    /// the watermark in effect before them (see [`RunMeta::flush_seq`]).
    /// `supersedes_since`/`supersedes_upto` give the run's data-age span:
    /// the union of the direct inputs' spans for merge outputs, or `None`
    /// (buffer flushes) for the point span at the run's own creation time.
    #[allow(clippy::too_many_arguments)] // two call sites (flush, merge); a params struct would obscure the layout inputs
    pub(crate) fn new(
        cfg: &GeckoConfig,
        geo: &Geometry,
        dev: &FlashDevice,
        identity: Option<(RunId, u64)>,
        entries: Vec<GeckoEntry>,
        merged_from: Vec<RunId>,
        supersedes_since: Option<u64>,
        supersedes_upto: Option<u64>,
        flush_seq: Option<u64>,
        min_level: u32,
        purpose: IoPurpose,
    ) -> Self {
        debug_assert!(!entries.is_empty());
        debug_assert!(
            entries.windows(2).all(|w| w[0].key < w[1].key),
            "run entries must be sorted"
        );
        let v = cfg.entries_per_page(geo) as usize;
        let (id, created_seq) = identity.unwrap_or((RunId(dev.now_seq()), dev.now_seq()));
        let n_pages = entries.len().div_ceil(v);
        let level = cfg.level_for(n_pages as u64).max(min_level);
        let meta = RunMeta {
            id,
            level,
            created_seq,
            flush_seq: flush_seq.unwrap_or(created_seq),
            merged_from,
            supersedes_since: supersedes_since.unwrap_or(created_seq),
            supersedes_upto: supersedes_upto.unwrap_or(created_seq),
        };
        // Build the run's Bloom filter while the keys are in RAM anyway.
        let filter = (cfg.bloom_bits_per_key > 0).then(|| {
            let mut f = RunFilter::new(entries.len(), cfg.bloom_bits_per_key);
            for e in &entries {
                f.insert(e.key);
            }
            f
        });
        let ranges = entries
            .chunks(v)
            .map(|c| (c.first().unwrap().key, c.last().unwrap().key))
            .collect();
        RunWriter {
            meta,
            entries,
            next: 0,
            v,
            n_pages,
            ranges,
            dir: Vec::with_capacity(n_pages),
            filter,
            purpose,
        }
    }

    /// Whether every page (including the postamble page) has been written.
    pub(crate) fn sealed(&self) -> bool {
        self.dir.len() == self.n_pages
    }

    /// Program the next page of the run. Returns `true` once sealed.
    pub(crate) fn write_next_page(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
    ) -> bool {
        debug_assert!(!self.sealed());
        let i = self.dir.len();
        let end = (self.next + self.v).min(self.entries.len());
        let chunk: Vec<GeckoEntry> = self.entries[self.next..end].to_vec();
        self.next = end;
        let postamble = (i == self.n_pages - 1).then(|| Postamble {
            total_pages: self.n_pages as u32,
            ranges: std::mem::take(&mut self.ranges),
            ppns: self.dir.iter().map(|d| d.ppn).collect(),
        });
        let (first, last) = (chunk.first().unwrap().key, chunk.last().unwrap().key);
        let payload = GeckoPagePayload {
            run_id: self.meta.id,
            page_index: i as u32,
            entries: chunk,
            preamble: (i == 0).then(|| self.meta.clone()),
            postamble,
        };
        let ppn = sink.append_meta(
            dev,
            MetaKind::GeckoRun,
            self.meta.id.0,
            PageData::blob_of(payload),
            self.purpose,
        );
        self.dir.push(RunDirEntry { ppn, first, last });
        self.sealed()
    }

    /// Consume the sealed writer into its run directory, handing the (now
    /// drained) entry buffer back for reuse.
    pub(crate) fn into_run(mut self) -> (Run, Vec<GeckoEntry>) {
        debug_assert!(self.sealed());
        let entry_count = self.entries.len() as u64;
        self.entries.clear();
        (
            Run {
                meta: self.meta,
                pages: self.dir,
                entry_count,
                filter: self.filter,
            },
            self.entries,
        )
    }

    /// RAM currently held by the writer (Appendix-B style accounting).
    fn ram_bytes(&self, entry_bytes: u64) -> u64 {
        self.entries.len() as u64 * entry_bytes
            + (self.dir.capacity() + self.ranges.len()) as u64
                * std::mem::size_of::<RunDirEntry>() as u64
            + self.filter.as_ref().map_or(0, RunFilter::ram_bytes)
    }
}

/// The resumable state of one merge: which runs it folds, and how far the
/// Read → fold → Write pipeline has progressed.
#[derive(Debug)]
pub struct MergeJob {
    /// The owning tree's tuning and geometry, captured at plan time (both
    /// are `Copy`); the write phase sizes output pages from them.
    cfg: GeckoConfig,
    geo: Geometry,
    /// Participants in data-age order, newest first.
    inputs: Vec<JobInput>,
    /// The output run's `(id, created_seq)`, reserved from the device
    /// sequence at plan time (invariant 4: concurrent write phases must
    /// never mint colliding identities).
    reserved: (RunId, u64),
    /// Level floor for the output (the deepest participant's level).
    min_level: u32,
    /// Whether the output will be the deepest run, allowing pure
    /// tombstones and empty entries to be dropped.
    output_is_largest: bool,
    phase: Phase,
}

#[derive(Debug)]
enum Phase {
    /// Reading participant pages; `next` is a flat cursor over the
    /// concatenation of all participants' page lists.
    Read {
        next: usize,
        streams: Vec<Vec<GeckoEntry>>,
    },
    /// Writing the folded output.
    Write(RunWriter),
}

/// Outcome of stepping a job.
enum StepResult {
    /// Budget spent; more IO remains.
    InProgress,
    /// The job completed within this step.
    Done(FinishedMerge),
}

impl MergeJob {
    /// Plan a merge of `inputs` (newest data first), reserving the output
    /// run's identity from the device sequence now — before any other job's
    /// write phase can run — so concurrent jobs never collide.
    pub fn new(
        cfg: GeckoConfig,
        geo: Geometry,
        dev: &mut FlashDevice,
        inputs: Vec<JobInput>,
        min_level: u32,
        output_is_largest: bool,
    ) -> Self {
        let seq = dev.reserve_seq();
        let streams = inputs
            .iter()
            .map(|i| Vec::with_capacity(i.entry_count as usize))
            .collect();
        MergeJob {
            cfg,
            geo,
            inputs,
            reserved: (RunId(seq), seq),
            min_level,
            output_is_largest,
            phase: Phase::Read { next: 0, streams },
        }
    }

    /// The combined data-age span of the job's inputs — the span its output
    /// will carry.
    pub fn span(&self) -> (u64, u64) {
        let lo = self
            .inputs
            .iter()
            .map(|i| i.meta.supersedes_since)
            .min()
            .unwrap_or(0);
        let hi = self
            .inputs
            .iter()
            .map(|i| i.meta.supersedes_upto)
            .max()
            .unwrap_or(0);
        (lo, hi)
    }

    /// Total flash pages this job still has to read and write. The write
    /// side is unknown until the fold runs; it is bounded by (and typically
    /// close to) the total read side, so the estimate is the remaining
    /// reads plus one write per input page.
    pub fn debt_pages(&self) -> u64 {
        match &self.phase {
            Phase::Read { next, .. } => {
                let total: usize = self.inputs.iter().map(|i| i.pages.len()).sum();
                (total - next) as u64 + total as u64
            }
            Phase::Write(w) => (w.n_pages - w.dir.len()) as u64,
        }
    }

    /// Output pages already programmed by a not-yet-sealed write phase
    /// (orphans on flash if a crash hits now — recovery must discard them).
    pub fn unsealed_output_pages(&self) -> u64 {
        match &self.phase {
            Phase::Read { .. } => 0,
            Phase::Write(w) => w.dir.len() as u64,
        }
    }

    /// Run up to `budget` page-IOs of this job. `entries_dropped` counts
    /// entries the fold discards as obsolete (Algorithm 3's collision
    /// resolution plus largest-run tombstone dropping); `flush_watermark`
    /// is the owning tree's current `last_flush_seq`, persisted in the
    /// output's preamble (see [`RunMeta::flush_seq`]).
    fn step(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        budget: &mut u64,
        entries_dropped: &mut u64,
        flush_watermark: u64,
    ) -> StepResult {
        if *budget == 0 {
            return StepResult::InProgress;
        }
        match &mut self.phase {
            Phase::Read { next, streams } => {
                let total: usize = self.inputs.iter().map(|i| i.pages.len()).sum();
                while *next < total && *budget > 0 {
                    // Map the flat cursor to (participant, page).
                    let (mut p, mut off) = (0usize, *next);
                    while off >= self.inputs[p].pages.len() {
                        off -= self.inputs[p].pages.len();
                        p += 1;
                    }
                    let ppn = self.inputs[p].pages[off].ppn;
                    let data = dev
                        .read_page(ppn, IoPurpose::ValidityMerge)
                        .expect("run page readable during merge");
                    let payload = data.blob::<GeckoPagePayload>().expect("gecko page payload");
                    streams[p].extend(payload.entries.iter().cloned());
                    *next += 1;
                    *budget -= 1;
                }
                if *next < total {
                    return StepResult::InProgress;
                }
                // All pages in RAM: fold now (no IO, free in simulated
                // time) and move to the write phase.
                let merged = fold_streams(
                    std::mem::take(streams),
                    self.output_is_largest,
                    entries_dropped,
                );
                if merged.is_empty() {
                    return StepResult::Done(FinishedMerge {
                        inputs: std::mem::take(&mut self.inputs),
                        output: None,
                    });
                }
                let (span_lo, span_hi) = self.span();
                self.phase = Phase::Write(RunWriter::new(
                    &self.cfg,
                    &self.geo,
                    dev,
                    Some(self.reserved),
                    merged,
                    self.inputs.iter().map(|i| i.meta.id).collect(),
                    Some(span_lo),
                    Some(span_hi),
                    Some(flush_watermark),
                    self.min_level,
                    IoPurpose::ValidityMerge,
                ));
                // End the step at the phase boundary: output writes
                // causally depend on every input read, so they must not
                // share this step's channel-overlap window with the
                // reads they wait on (the clock would hide the writes
                // behind the reads).
                StepResult::InProgress
            }
            Phase::Write(writer) => {
                while *budget > 0 {
                    *budget -= 1;
                    if writer.write_next_page(dev, sink) {
                        let Phase::Write(writer) = std::mem::replace(
                            &mut self.phase,
                            Phase::Read {
                                next: 0,
                                streams: Vec::new(),
                            },
                        ) else {
                            unreachable!("phase checked above")
                        };
                        let (run, _) = writer.into_run();
                        return StepResult::Done(FinishedMerge {
                            inputs: std::mem::take(&mut self.inputs),
                            output: Some(run),
                        });
                    }
                }
                StepResult::InProgress
            }
        }
    }

    /// RAM held by this job's buffers (streams or merged output + dir).
    fn ram_bytes(&self, entry_bytes: u64) -> u64 {
        let dir_bytes: u64 = self
            .inputs
            .iter()
            .map(|i| i.pages.len() as u64 * std::mem::size_of::<RunDirEntry>() as u64)
            .sum();
        dir_bytes
            + match &self.phase {
                Phase::Read { streams, .. } => streams
                    .iter()
                    .map(|s| s.len() as u64 * entry_bytes)
                    .sum::<u64>(),
                Phase::Write(w) => w.ram_bytes(entry_bytes),
            }
    }
}

/// K-way sorted merge with collision folding (Algorithm 3). Streams are
/// ordered newest-first, so on key ties the lowest stream index is newest.
fn fold_streams(
    streams: Vec<Vec<GeckoEntry>>,
    output_is_largest: bool,
    entries_dropped: &mut u64,
) -> Vec<GeckoEntry> {
    let mut cursors = vec![0usize; streams.len()];
    let mut merged = Vec::new();
    loop {
        let mut min_key: Option<GeckoKey> = None;
        for (s, stream) in streams.iter().enumerate() {
            if let Some(e) = stream.get(cursors[s]) {
                if min_key.is_none_or(|m| e.key < m) {
                    min_key = Some(e.key);
                }
            }
        }
        let Some(key) = min_key else { break };
        let mut folded: Option<GeckoEntry> = None;
        for (s, stream) in streams.iter().enumerate() {
            if let Some(e) = stream.get(cursors[s]) {
                if e.key == key {
                    cursors[s] += 1;
                    folded = Some(match folded {
                        None => e.clone(),
                        Some(newer) => {
                            *entries_dropped += 1;
                            GeckoEntry::merge_collision(&newer, e)
                        }
                    });
                }
            }
        }
        let entry = folded.expect("at least one stream supplied the key");
        let keep = if entry.erase_flag {
            // Erase markers with no newer bits are pure tombstones; they
            // can be dropped once nothing older can exist below them.
            !(output_is_largest && entry.bitmap.is_empty())
        } else {
            !entry.bitmap.is_empty()
        };
        if keep {
            merged.push(entry);
        } else {
            *entries_dropped += 1;
        }
    }
    merged
}

/// Per-channel merge queues plus dispatch bookkeeping.
#[derive(Debug)]
pub struct MergeScheduler {
    /// One FIFO of jobs per flash channel (the per-channel merge workers).
    queues: Vec<VecDeque<MergeJob>>,
    /// Round-robin dispatch cursor.
    next_channel: usize,
}

impl MergeScheduler {
    /// An idle scheduler for a device with `channels` logical units.
    pub fn new(channels: u32) -> Self {
        MergeScheduler {
            queues: (0..channels.max(1)).map(|_| VecDeque::new()).collect(),
            next_channel: 0,
        }
    }

    /// Whether no job is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Number of queued + in-flight jobs.
    pub fn pending_jobs(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Total flash page-IO debt of all pending jobs.
    pub fn debt_pages(&self) -> u64 {
        self.queues
            .iter()
            .flat_map(|q| q.iter().map(MergeJob::debt_pages))
            .sum()
    }

    /// Output pages programmed by unsealed write phases across all jobs.
    pub fn unsealed_output_pages(&self) -> u64 {
        self.queues
            .iter()
            .flat_map(|q| q.iter().map(MergeJob::unsealed_output_pages))
            .sum()
    }

    /// Dispatch a job onto the next channel's queue, round-robin. Several
    /// jobs may be queued and in flight at once: output identities are
    /// reserved at plan time ([`MergeJob::new`]), so concurrent write
    /// phases cannot mint colliding run ids, and the planner's
    /// span-contiguity rule keeps queries and recovery correct while the
    /// jobs drain (invariant 4).
    pub fn enqueue(&mut self, job: MergeJob) {
        let ch = self.next_channel;
        self.next_channel = (self.next_channel + 1) % self.queues.len();
        self.queues[ch].push_back(job);
    }

    /// Pump every channel's head job by up to `budget` page-IOs, inside one
    /// channel-overlap window so distinct channels' IO coincides in
    /// simulated time. Returns the jobs that completed; the caller installs
    /// their outputs (and may enqueue follow-on cascade jobs).
    #[allow(clippy::too_many_arguments)] // single call site in LogGecko::pump_merges
    pub fn step_channels(
        &mut self,
        dev: &mut FlashDevice,
        sink: &mut dyn MetaSink,
        budget: u64,
        entries_dropped: &mut u64,
        pages_stepped: &mut u64,
        flush_watermark: u64,
    ) -> Vec<FinishedMerge> {
        let mut finished = Vec::new();
        if self.is_idle() {
            return finished;
        }
        dev.begin_overlap();
        for queue in &mut self.queues {
            let Some(job) = queue.front_mut() else {
                continue;
            };
            let mut remaining = budget;
            let result = job.step(dev, sink, &mut remaining, entries_dropped, flush_watermark);
            *pages_stepped += budget - remaining;
            if let StepResult::Done(done) = result {
                queue.pop_front();
                finished.push(done);
            }
        }
        dev.end_overlap();
        finished
    }

    /// RAM held by queued and in-flight jobs: entry streams, folded output
    /// buffers and cloned run directories. Charged to the validity store's
    /// footprint so the RAM-utilization experiment stays honest about what
    /// incremental merging buffers.
    pub fn ram_bytes(&self, entry_bytes: u64) -> u64 {
        self.queues
            .iter()
            .flat_map(|q| q.iter().map(|j| j.ram_bytes(entry_bytes)))
            .sum()
    }
}
