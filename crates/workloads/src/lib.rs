//! # ftl-workloads
//!
//! Workload generators for FTL experiments. The paper's evaluation uses
//! uniformly random page updates as its adversarial workload (§5.1: it
//! minimizes the coalescing Gecko's buffer can do and is fair to the
//! workload-insensitive PVB); this crate also provides sequential, zipfian
//! and hot/cold generators plus mixed read/write streams and trace
//! record/replay for broader experiments and ablations.

pub mod generators;
pub mod shapes;
pub mod trace;

pub use generators::{HotCold, Mixed, Sequential, Uniform, WorkloadOp, Zipfian};
pub use shapes::{BurstyDiurnal, OverwriteStorm, Scan, TenantMix, TrimWave};
pub use trace::{TenantId, Trace};
