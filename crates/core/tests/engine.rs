//! End-to-end tests of the FTL engine running GeckoFTL on a simulated
//! device: data integrity under garbage-collection pressure, crash recovery
//! with GeckoRec, and the §4.3 recovery-cost bounds.

use flash_sim::{Geometry, IoPurpose, Lpn};
use geckoftl_core::ftl::{FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend};
use geckoftl_core::gecko::{GeckoConfig, LogGecko};
use geckoftl_core::recovery::gecko_recover;
use std::collections::HashMap;

/// Deterministic LCG so tests don't need a rand dependency here.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn small_engine(seed_cache: usize) -> FtlEngine {
    let geo = Geometry::tiny(); // 64 blocks × 16 pages, 716 logical pages
    let cfg = FtlConfig {
        cache_entries: seed_cache,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko = LogGecko::new(
        geo,
        GeckoConfig {
            // Small pages so Gecko actually flushes/merges at this scale.
            page_header_bytes: geo.page_bytes - 64,
            ..GeckoConfig::paper_default(&geo)
        },
    );
    FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko))
}

fn run_workload(engine: &mut FtlEngine, oracle: &mut HashMap<u32, u64>, rng: &mut Lcg, n: u64) {
    let logical = engine.geometry().logical_pages() as u32;
    for i in 0..n {
        let lpn = (rng.next() % logical as u64) as u32;
        let version = oracle.len() as u64 * 1_000_000 + i;
        engine.write(Lpn(lpn), version);
        oracle.insert(lpn, version);
        if rng.next().is_multiple_of(4) {
            let read_lpn = (rng.next() % logical as u64) as u32;
            let got = engine.read(Lpn(read_lpn));
            assert_eq!(
                got,
                oracle.get(&read_lpn).copied(),
                "read-your-writes for L{read_lpn}"
            );
        }
    }
}

fn verify_all(engine: &mut FtlEngine, oracle: &HashMap<u32, u64>) {
    let logical = engine.geometry().logical_pages() as u32;
    for lpn in 0..logical {
        assert_eq!(
            engine.read(Lpn(lpn)),
            oracle.get(&lpn).copied(),
            "post-check for L{lpn}"
        );
    }
}

#[test]
fn read_your_writes_under_gc_pressure() {
    let mut engine = small_engine(64);
    let mut oracle = HashMap::new();
    let mut rng = Lcg(0xDEADBEEF);
    run_workload(&mut engine, &mut oracle, &mut rng, 6000);
    assert!(
        engine.counters.gc_operations > 20,
        "workload must trigger GC"
    );
    assert!(engine.counters.checkpoints > 0, "workload must checkpoint");
    verify_all(&mut engine, &oracle);
}

#[test]
fn sequential_overwrites_and_sparse_space() {
    let mut engine = small_engine(64);
    let mut oracle = HashMap::new();
    // Hammer a small hot set so the same translation page syncs repeatedly.
    for round in 0..400u64 {
        for lpn in 0..8u32 {
            engine.write(Lpn(lpn), round * 10 + lpn as u64);
            oracle.insert(lpn, round * 10 + lpn as u64);
        }
    }
    verify_all(&mut engine, &oracle);
    // Unwritten pages read as None.
    assert_eq!(engine.read(Lpn(700)), None);
}

#[test]
fn crash_and_recover_preserves_all_data() {
    let mut engine = small_engine(64);
    let mut oracle = HashMap::new();
    let mut rng = Lcg(42);
    run_workload(&mut engine, &mut oracle, &mut rng, 5000);
    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko().expect("gecko backend").config();

    // Power failure: all RAM state is dropped.
    let dev = engine.crash();
    let (mut recovered, report) = gecko_recover(dev, cfg, gecko_cfg);

    assert!(
        report.recovered_entries > 0,
        "recent writes must be rediscovered"
    );
    verify_all(&mut recovered, &oracle);

    // The device keeps operating correctly after recovery, including the
    // App. C.3 flag-correction paths and further GC.
    run_workload(&mut recovered, &mut oracle, &mut rng, 5000);
    verify_all(&mut recovered, &oracle);
}

#[test]
fn repeated_crashes_do_not_lose_data() {
    let mut engine = small_engine(48);
    let mut oracle = HashMap::new();
    let mut rng = Lcg(7);
    for round in 0..4 {
        run_workload(&mut engine, &mut oracle, &mut rng, 1500 + 700 * round);
        let cfg = engine.config();
        let gecko_cfg = engine.backend().gecko().expect("gecko").config();
        let dev = engine.crash();
        let (rec, _) = gecko_recover(dev, cfg, gecko_cfg);
        engine = rec;
        verify_all(&mut engine, &oracle);
    }
}

#[test]
fn recovery_scan_is_bounded_by_checkpoints() {
    let mut engine = small_engine(32);
    let mut oracle = HashMap::new();
    let mut rng = Lcg(99);
    run_workload(&mut engine, &mut oracle, &mut rng, 8000);
    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko().expect("gecko").config();
    let c = cfg.cache_entries as u64;
    let dev = engine.crash();
    let (_, report) = gecko_recover(dev, cfg, gecko_cfg);
    let dirty_step = report
        .steps
        .iter()
        .find(|(s, _)| *s == geckoftl_core::recovery::RecoveryStep::DirtyEntries)
        .map(|(_, c)| *c)
        .expect("dirty-entry step present");
    // ≈2·C scanned pages (plus a GC-burst cushion), each costing up to two
    // spare reads (the page itself + its before-image check), plus one
    // recency probe per user block. Still O(C) and tiny next to the paper's
    // alternative of scanning the whole device.
    let scan_pages = 2 * c + 4 * 16;
    let user_blocks = 64;
    assert!(
        dirty_step.spare_reads <= 2 * scan_pages + user_blocks,
        "backwards scan read {} spare areas (bound {})",
        dirty_step.spare_reads,
        2 * scan_pages + user_blocks
    );
}

#[test]
fn clean_shutdown_leaves_no_dirty_state() {
    let mut engine = small_engine(64);
    let mut oracle = HashMap::new();
    let mut rng = Lcg(5);
    run_workload(&mut engine, &mut oracle, &mut rng, 3000);
    engine.shutdown_clean();
    assert_eq!(engine.cache().dirty_count(), 0);
    assert_eq!(
        engine.backend().gecko().expect("gecko").buffer_len(),
        0,
        "gecko buffer persisted on shutdown"
    );
    verify_all(&mut engine, &oracle);
}

#[test]
fn recovery_after_clean_shutdown_is_cheap_on_corrections() {
    let mut engine = small_engine(64);
    let mut oracle = HashMap::new();
    let mut rng = Lcg(11);
    run_workload(&mut engine, &mut oracle, &mut rng, 3000);
    engine.shutdown_clean();
    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko().expect("gecko").config();
    let dev = engine.crash();
    let (mut recovered, _) = gecko_recover(dev, cfg, gecko_cfg);
    verify_all(&mut recovered, &oracle);
    // Everything recovered as "uncertain" should resolve to clean: syncing
    // all dirty entries must abort most synchronization operations.
    recovered.sync_all_dirty();
    assert!(
        recovered.counters.syncs_aborted > 0,
        "clean-shutdown recovery should produce C.3.1 false alarms"
    );
    verify_all(&mut recovered, &oracle);
}

#[test]
fn greedy_policy_also_preserves_data() {
    let geo = Geometry::tiny();
    let cfg = FtlConfig {
        cache_entries: 64,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::GreedyAll,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko = LogGecko::new(
        geo,
        GeckoConfig {
            page_header_bytes: geo.page_bytes - 64,
            ..GeckoConfig::paper_default(&geo)
        },
    );
    let mut engine = FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko));
    let mut oracle = HashMap::new();
    let mut rng = Lcg(1234);
    run_workload(&mut engine, &mut oracle, &mut rng, 6000);
    verify_all(&mut engine, &oracle);
}

#[test]
fn wa_accounting_covers_the_write_path() {
    let mut engine = small_engine(64);
    let mut oracle = HashMap::new();
    let mut rng = Lcg(3);
    // Precondition, then measure an interval.
    run_workload(&mut engine, &mut oracle, &mut rng, 4000);
    let snap = engine.device().stats().snapshot();
    run_workload(&mut engine, &mut oracle, &mut rng, 2000);
    let delta = engine.device().stats().since(&snap);
    let wa = delta.wa_breakdown(engine.device().latency().delta());
    // The user category includes the application write itself.
    assert!(wa.user >= 1.0, "user WA = {}", wa.user);
    assert!(wa.total() < 10.0, "absurd WA = {}", wa.total());
    assert!(wa.validity > 0.0, "gecko IO must be attributed");
    assert!(wa.translation > 0.0, "sync IO must be attributed");
    // Recovery/fill purposes are excluded from WA.
    assert_eq!(delta.counts(IoPurpose::Recovery).page_reads, 0);
}

#[test]
fn restricted_dirty_policy_bounds_dirty_entries() {
    let geo = Geometry::tiny();
    let cfg = FtlConfig {
        cache_entries: 64,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::GreedyAll,
        recovery: RecoveryPolicy::RestrictedDirty { fraction: 0.1 },
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko = LogGecko::new(
        geo,
        GeckoConfig {
            page_header_bytes: geo.page_bytes - 64,
            ..GeckoConfig::paper_default(&geo)
        },
    );
    let mut engine = FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko));
    let mut oracle = HashMap::new();
    let mut rng = Lcg(21);
    let logical = geo.logical_pages() as u32;
    for _ in 0..3000 {
        let lpn = (rng.next() % logical as u64) as u32;
        engine.write(Lpn(lpn), rng.next());
        oracle.insert(lpn, 0); // value checked via engine reads below
        assert!(
            engine.cache().dirty_count() <= 7,
            "dirty entries exceed 10% of C: {}",
            engine.cache().dirty_count()
        );
    }
}

#[test]
fn wear_leveling_relocates_cold_blocks() {
    use geckoftl_core::wear::WearLeveler;
    let mut engine = small_engine(64);
    let mut oracle = HashMap::new();
    // Cold data: written once, never updated.
    for lpn in 0..256u32 {
        engine.write(Lpn(lpn), 7_000_000 + lpn as u64);
        oracle.insert(lpn, 7_000_000 + lpn as u64);
    }
    // Hot churn on a different range wears out the rest of the device.
    let mut rng = Lcg(77);
    for i in 0..6000u64 {
        let lpn = 300 + (rng.next() % 400) as u32;
        engine.write(Lpn(lpn), i);
        oracle.insert(lpn, i);
    }
    // Run the gradual scan to build global wear statistics.
    let geo = engine.geometry();
    let mut wl = WearLeveler::new(geo);
    engine.with_raw_parts(|dev, _| {
        for _ in 0..geo.blocks {
            wl.on_flash_write(dev);
        }
    });
    assert!(wl.stats().spread() > 2, "churn must create a wear spread");
    // Relocate a static victim and verify nothing is lost.
    let victim = engine.with_raw_parts(|dev, _| wl.pick_static_victim(dev, |_| true));
    if let Some(victim) = victim {
        let migrated = engine.wear_level_block(victim);
        if let Some(n) = migrated {
            assert!(n > 0, "static block should hold live pages");
            assert_eq!(engine.device().written_pages(victim), 0, "victim erased");
        }
    }
    verify_all(&mut engine, &oracle);
}

#[test]
fn current_mapping_agrees_with_read_path() {
    let mut engine = small_engine(64);
    let mut rng = Lcg(13);
    for i in 0..2000u64 {
        let lpn = (rng.next() % 716) as u32;
        engine.write(Lpn(lpn), i);
        let mapped = engine.current_mapping(Lpn(lpn)).expect("just written");
        let (l, v) = engine
            .device()
            .peek_page(mapped)
            .expect("mapped page written")
            .as_user()
            .expect("user page");
        assert_eq!((l, v), (Lpn(lpn), i));
    }
}

#[test]
fn recovery_of_a_fresh_device_is_trivial() {
    // Crash right after format: nothing to recover, and the device must be
    // fully usable afterwards.
    let engine = small_engine(64);
    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko().expect("gecko").config();
    let dev = engine.crash();
    let (mut recovered, report) = gecko_recover(dev, cfg, gecko_cfg);
    assert_eq!(report.recovered_entries, 0);
    assert_eq!(report.recovered_invalidations, 0);
    assert_eq!(recovered.read(Lpn(0)), None);
    recovered.write(Lpn(0), 1);
    assert_eq!(recovered.read(Lpn(0)), Some(1));
}

#[test]
fn crash_immediately_after_single_write() {
    let mut engine = small_engine(64);
    engine.write(Lpn(5), 42);
    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko().expect("gecko").config();
    let dev = engine.crash();
    let (mut recovered, report) = gecko_recover(dev, cfg, gecko_cfg);
    assert_eq!(
        report.recovered_entries, 1,
        "the lone dirty write must be found"
    );
    assert_eq!(recovered.read(Lpn(5)), Some(42));
    assert_eq!(recovered.read(Lpn(6)), None);
}

/// The GC victim-sequence A/B pin: the query fast path (Bloom filters +
/// batched bitmap prefetch) must not change *which* blocks GC collects,
/// only how their bitmaps are fetched. The burst plan is built for both
/// variants, so from identical workloads both must produce the identical
/// victim sequence — and therefore identical GC operation counts. (The
/// regression this pins: planning only on the fast path let the clustered
/// tie-break diverge from plain greedy, e.g. 495 vs 494 GC operations in
/// BENCH_gecko_query from the same seed.)
#[test]
fn fast_path_and_naive_gc_collect_identical_victim_sequences() {
    let build = |fast_path: bool| {
        let geo = Geometry::tiny();
        let cfg = FtlConfig {
            cache_entries: 64,
            gc_free_threshold: 8,
            gc_policy: GcPolicy::MetadataAware,
            recovery: RecoveryPolicy::CheckpointDeferred,
            checkpoint_period: None,
            qos_headroom_blocks: 0,
        };
        let gecko = LogGecko::new(
            geo,
            GeckoConfig {
                page_header_bytes: geo.page_bytes - 64,
                fast_path,
                ..GeckoConfig::paper_default(&geo)
            },
        );
        FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko))
    };
    let mut fast = build(true);
    let mut naive = build(false);
    let mut fast_oracle = HashMap::new();
    let mut naive_oracle = HashMap::new();
    let mut rng_f = Lcg(0x6C);
    let mut rng_n = Lcg(0x6C);
    run_workload(&mut fast, &mut fast_oracle, &mut rng_f, 8000);
    run_workload(&mut naive, &mut naive_oracle, &mut rng_n, 8000);
    assert!(
        fast.counters.gc_operations > 50,
        "GC must run enough to expose ordering divergence"
    );
    assert_eq!(
        fast.gc_victim_log, naive.gc_victim_log,
        "fast path and linear-scan baseline must collect the same victims"
    );
    assert_eq!(fast.counters.gc_operations, naive.counters.gc_operations);
    assert_eq!(fast.counters.gc_migrations, naive.counters.gc_migrations);
    verify_all(&mut fast, &fast_oracle);
    verify_all(&mut naive, &naive_oracle);
}

// ---------------------------------------------------------------------------
// TRIM
// ---------------------------------------------------------------------------

#[test]
fn trim_unmaps_and_allows_rewrite() {
    let mut engine = small_engine(64);
    engine.write(Lpn(7), 70);
    engine.write(Lpn(8), 80);
    assert!(engine.trim(Lpn(7)), "trim of a live mapping reports true");
    assert_eq!(engine.read(Lpn(7)), None, "trimmed page reads as unmapped");
    assert_eq!(engine.read(Lpn(8)), Some(80), "neighbours are untouched");
    assert!(
        !engine.trim(Lpn(7)),
        "re-trim of an unmapped page is a no-op"
    );
    assert!(
        !engine.trim(Lpn(9)),
        "trim of a never-written page is a no-op"
    );
    engine.write(Lpn(7), 700);
    assert_eq!(engine.read(Lpn(7)), Some(700), "write-after-trim works");
    assert_eq!(engine.counters.trims, 3, "every trim attempt is counted");
}

#[test]
fn trim_heavy_workload_stays_consistent_under_gc() {
    let mut engine = small_engine(48);
    let mut oracle: HashMap<u32, u64> = HashMap::new();
    let mut rng = Lcg(0xF00D);
    let logical = engine.geometry().logical_pages() as u32;
    for i in 0..6_000u64 {
        let lpn = (rng.next() % logical as u64) as u32;
        match rng.next() % 5 {
            0 => {
                let had = engine.trim(Lpn(lpn));
                assert_eq!(had, oracle.remove(&lpn).is_some(), "trim L{lpn}");
            }
            _ => {
                engine.write(Lpn(lpn), i + 1);
                oracle.insert(lpn, i + 1);
            }
        }
        if rng.next().is_multiple_of(7) {
            let probe = (rng.next() % logical as u64) as u32;
            assert_eq!(engine.read(Lpn(probe)), oracle.get(&probe).copied());
        }
    }
    verify_all(&mut engine, &oracle);
}

#[test]
fn trim_survives_crash_and_recovery() {
    // Write a batch, trim part of it, keep writing (so the trims are mixed
    // into normal traffic), crash, recover: trimmed-and-not-rewritten pages
    // must NOT be resurrected by the backwards scan (§C.3 + the recovery
    // step-6 invalid_maps guard), while everything else survives.
    let mut engine = small_engine(48);
    let mut oracle: HashMap<u32, u64> = HashMap::new();
    let mut rng = Lcg(0xBEEF);
    run_workload(&mut engine, &mut oracle, &mut rng, 3_000);

    let logical = engine.geometry().logical_pages() as u32;
    let mut trimmed = Vec::new();
    for k in 0..40u32 {
        let lpn = (rng.next() % logical as u64) as u32;
        if engine.trim(Lpn(lpn)) {
            oracle.remove(&lpn);
            trimmed.push(lpn);
        }
        // Interleave writes so trims sit inside live traffic, not at the
        // tail where nothing would scan past them.
        let w = (rng.next() % logical as u64) as u32;
        if !trimmed.contains(&w) {
            engine.write(Lpn(w), 7_000_000 + k as u64);
            oracle.insert(w, 7_000_000 + k as u64);
        }
    }
    assert!(!trimmed.is_empty(), "workload must actually trim something");

    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko().expect("gecko").config();
    let dev = engine.crash();
    let (mut recovered, _report) = gecko_recover(dev, cfg, gecko_cfg);
    for &lpn in &trimmed {
        assert_eq!(
            recovered.read(Lpn(lpn)),
            None,
            "L{lpn} was trimmed before the crash and must stay unmapped"
        );
    }
    verify_all(&mut recovered, &oracle);
}

#[test]
fn trim_survives_clean_restart() {
    let mut engine = small_engine(64);
    let mut oracle: HashMap<u32, u64> = HashMap::new();
    let mut rng = Lcg(0xCAFE);
    run_workload(&mut engine, &mut oracle, &mut rng, 2_000);
    let victims: Vec<u32> = oracle.keys().copied().take(10).collect();
    for &lpn in &victims {
        assert!(engine.trim(Lpn(lpn)));
        oracle.remove(&lpn);
    }
    let cfg = engine.config();
    let gecko_cfg = engine.backend().gecko().expect("gecko").config();
    engine.shutdown_clean();
    let dev = engine.crash();
    let (mut restarted, _) = gecko_recover(dev, cfg, gecko_cfg);
    for &lpn in &victims {
        assert_eq!(restarted.read(Lpn(lpn)), None, "L{lpn} stays trimmed");
    }
    verify_all(&mut restarted, &oracle);
}

#[test]
fn tenant_accounting_tracks_ops_and_gc_debt() {
    let mut engine = small_engine(64);
    let logical = engine.geometry().logical_pages() as u32;
    // Tenant 1: light. Tenant 2: overwrite storm (drives all the GC).
    for i in 0..200u64 {
        engine.write_for(1, Lpn((i % 50) as u32), i + 1);
    }
    for i in 0..8_000u64 {
        engine.write_for(2, Lpn((i % (logical as u64 / 4)) as u32 + 100), i + 1);
    }
    engine.read_for(1, Lpn(3));
    engine.trim_for(1, Lpn(3));
    let t = engine.tenant_stats();
    let t1 = &t[&1];
    let t2 = &t[&2];
    assert_eq!(t1.writes, 200);
    assert_eq!(t1.reads, 1);
    assert_eq!(t1.trims, 1);
    assert_eq!(t2.writes, 8_000);
    assert_eq!(
        t1.writes + t2.writes,
        engine.counters.writes,
        "tenant writes partition the engine total"
    );
    assert!(t2.gc_operations > 0, "the storm must trigger GC");
    assert!(
        t2.gc_debt_us > t1.gc_debt_us,
        "GC debt lands on the tenant whose writes triggered it"
    );
    assert!(t2.write_lat.count() == 8_000 && t1.write_lat.count() == 200);
    let m = engine.metrics();
    assert_eq!(m.counter("tenant.2.writes"), 8_000);
    assert!(m.gauge("tenant.2.gc_debt_us") > 0.0);
    assert_eq!(m.counter("engine.trims"), 1);
}

#[test]
fn qos_headroom_is_byte_identical_when_disabled_and_prepays_when_on() {
    // qos_headroom_blocks = 0 must not change behaviour at all (same device
    // IO counts for the same op sequence); with headroom on, a heavy tenant
    // is made to prepay GC so its debt share rises.
    let run = |headroom: usize| {
        let geo = Geometry::tiny();
        let cfg = FtlConfig {
            cache_entries: 64,
            gc_free_threshold: 8,
            gc_policy: GcPolicy::MetadataAware,
            recovery: RecoveryPolicy::CheckpointDeferred,
            checkpoint_period: None,
            qos_headroom_blocks: headroom,
        };
        let gecko = LogGecko::new(
            geo,
            GeckoConfig {
                page_header_bytes: geo.page_bytes - 64,
                ..GeckoConfig::paper_default(&geo)
            },
        );
        let mut e = FtlEngine::format(geo, cfg, ValidityBackend::Gecko(gecko));
        let logical = geo.logical_pages() as u32;
        for i in 0..9_000u64 {
            let heavy = i % 4 != 0;
            let tenant = if heavy { 2 } else { 1 };
            let lpn = if heavy {
                (i % (logical as u64 / 8)) as u32
            } else {
                (logical / 2) + (i % 64) as u32
            };
            e.write_for(tenant, Lpn(lpn), i + 1);
        }
        e
    };
    let a = run(0);
    let b = run(0);
    for p in IoPurpose::ALL {
        assert_eq!(
            a.device().stats().counts(p),
            b.device().stats().counts(p),
            "headroom=0 runs are deterministic ({})",
            p.label()
        );
    }
    let q = run(4);
    let qa = q.tenant_stats();
    let base = a.tenant_stats();
    assert!(
        qa[&2].gc_debt_us >= base[&2].gc_debt_us * 0.5,
        "heavy tenant still carries its debt under QoS"
    );
    // The light tenant's worst-case write latency must not get worse under
    // QoS: prepaid GC runs on the heavy tenant's clock.
    assert!(qa[&1].write_lat.max() <= base[&1].write_lat.max() * 1.5 + 1.0);
}
