//! Thread-stress tests of [`ConcurrentFtl`]: multiple writer threads over
//! disjoint LPN ranges, read-your-writes through the published tables, and
//! the background maintenance worker draining merge debt off the host path.
//! Each test repeats across seeds (the CI thread-stress mode re-runs the
//! whole file several times) so scheduler interleavings actually vary.

use flash_sim::{Geometry, Lpn};
use geckoftl_core::ftl::{
    ConcurrentFtl, FtlConfig, FtlEngine, GcPolicy, RecoveryPolicy, ValidityBackend,
};
use geckoftl_core::gecko::GeckoConfig;
use std::collections::HashMap;
use std::sync::Arc;

struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn engine(shards: u32) -> FtlEngine {
    let geo = Geometry::tiny().with_channels(shards.max(1));
    let cfg = FtlConfig {
        cache_entries: 64,
        gc_free_threshold: 8,
        gc_policy: GcPolicy::MetadataAware,
        recovery: RecoveryPolicy::CheckpointDeferred,
        checkpoint_period: None,
        qos_headroom_blocks: 0,
    };
    let gecko_cfg = GeckoConfig {
        page_header_bytes: geo.page_bytes - 64,
        sync_merge: false,
        merge_step_pages: 2,
        shards,
        ..GeckoConfig::paper_default(&geo)
    };
    FtlEngine::format(geo, cfg, ValidityBackend::gecko_for(geo, gecko_cfg))
}

/// N writer threads over disjoint LPN ranges, each interleaving writes with
/// `read_published` read-your-writes checks; a full oracle verification
/// after joining. Repeated across seeds so lock interleavings vary.
#[test]
fn concurrent_writers_disjoint_ranges_read_their_writes() {
    for seed in [1u64, 2, 3] {
        let ftl = Arc::new(ConcurrentFtl::new(engine(4), 8, true));
        let logical = ftl.with_engine(|e| e.geometry().logical_pages()) as u32;
        let threads = 4u32;
        let span = logical / threads;
        let mut handles = Vec::new();
        for t in 0..threads {
            let ftl = Arc::clone(&ftl);
            handles.push(std::thread::spawn(move || {
                let lo = t * span;
                let mut rng = Lcg(seed ^ u64::from(t) << 32);
                let mut mine: HashMap<u32, u64> = HashMap::new();
                for i in 0..600u64 {
                    let lpn = lo + (rng.next() % u64::from(span)) as u32;
                    let version = (u64::from(t) << 40) | i;
                    ftl.write(Lpn(lpn), version);
                    mine.insert(lpn, version);
                    // Read-your-writes through the publish tables: this
                    // thread owns the range, so its last write must be
                    // visible — no engine lock involved.
                    let seen = ftl.read_published(Lpn(lpn));
                    assert_eq!(seen, Some(version), "t{t}: lost own write to L{lpn}");
                    if i.is_multiple_of(97) {
                        // Occasional authoritative read must agree too.
                        let lpn = lo + (rng.next() % u64::from(span)) as u32;
                        if let Some(&v) = mine.get(&lpn) {
                            assert_eq!(ftl.read(Lpn(lpn)), Some(v), "t{t}: stale L{lpn}");
                        }
                    }
                }
                mine
            }));
        }
        let mut oracle: HashMap<u32, u64> = HashMap::new();
        for h in handles {
            oracle.extend(h.join().expect("writer thread panicked"));
        }
        // Take the engine back out and verify the full oracle through the
        // ordinary single-threaded path.
        let ftl = Arc::try_unwrap(ftl)
            .ok()
            .expect("writers dropped their handles");
        let mut engine = ftl.into_engine();
        engine.shutdown_clean();
        for (lpn, version) in oracle {
            assert_eq!(engine.read(Lpn(lpn)), Some(version), "post-join L{lpn}");
        }
        assert_eq!(engine.backend().merge_jobs_pending(), 0);
    }
}

/// Published versions are monotonic under concurrent observation: a reader
/// thread polling one LPN while a writer bumps its version must never see
/// the version go backwards.
#[test]
fn published_versions_never_regress() {
    let ftl = Arc::new(ConcurrentFtl::new(engine(4), 4, false));
    let target = Lpn(7);
    let writer = {
        let ftl = Arc::clone(&ftl);
        std::thread::spawn(move || {
            for v in 1..=400u64 {
                ftl.write(target, v);
            }
        })
    };
    let reader = {
        let ftl = Arc::clone(&ftl);
        std::thread::spawn(move || {
            let mut last = 0u64;
            while last < 400 {
                if let Some(v) = ftl.read_published(target) {
                    assert!(v >= last, "published version regressed: {v} < {last}");
                    last = v;
                }
            }
            last
        })
    };
    writer.join().expect("writer panicked");
    let final_seen = reader.join().expect("reader panicked");
    assert_eq!(final_seen, 400, "reader must converge on the final version");
    let ftl = Arc::try_unwrap(ftl)
        .ok()
        .expect("threads dropped their handles");
    let mut engine = ftl.into_engine();
    assert_eq!(engine.read(target), Some(400));
}

/// The background worker actually drains merge debt: build backlog with the
/// worker disabled, then attach a worker and poll until the backlog hits
/// zero without the host issuing a single further operation.
#[test]
fn worker_drains_merge_backlog_off_the_host_path() {
    let mut e = engine(4);
    let logical = e.geometry().logical_pages() as u32;
    let mut rng = Lcg(0x57A7E);
    for i in 0..3000u64 {
        let lpn = (rng.next() % u64::from(logical)) as u32;
        e.write(Lpn(lpn), i);
    }
    // The per-write piggyback slices may have settled the tree already;
    // keep writing until the handoff actually carries debt.
    let mut i = 3000u64;
    while e.backend().merge_backlog_pages() == 0 {
        assert!(i < 60_000, "could not provoke a merge backlog");
        let lpn = (rng.next() % u64::from(logical)) as u32;
        e.write(Lpn(lpn), i);
        i += 1;
    }
    let ftl = ConcurrentFtl::new(e, 4, true);
    let mut drained = false;
    for _ in 0..2000 {
        let backlog = ftl.with_engine(|e| e.backend().merge_backlog_pages());
        if backlog == 0 {
            drained = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(drained, "worker failed to drain the merge backlog");
    // The worker counts a quantum per loop pass; give it a beat to run.
    let mut quanta = 0;
    for _ in 0..2000 {
        quanta = ftl.worker_quanta();
        if quanta > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert!(quanta > 0, "worker must have donated quanta");
    let mut engine = ftl.into_engine();
    engine.shutdown_clean();
    assert_eq!(engine.backend().merge_jobs_pending(), 0);
}
