//! Error type for device operations.

use crate::geometry::{BlockId, Ppn};
use std::fmt;

/// Convenience alias for device results.
pub type Result<T> = std::result::Result<T, FlashError>;

/// Ways a device operation can fail. These model *firmware bugs*: a correct
/// FTL never triggers them, and the simulator surfaces them loudly instead of
/// silently corrupting state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlashError {
    /// Write issued to a block whose write pointer has reached the end.
    BlockFull(BlockId),
    /// Read of a page that has not been programmed since the last erase.
    PageNotWritten(Ppn),
    /// Address outside the device geometry.
    OutOfRange(Ppn),
    /// Block id outside the device geometry.
    BlockOutOfRange(BlockId),
    /// The device has worn out this block past its configured erase budget
    /// (only reported when an erase budget is configured).
    BlockWornOut(BlockId),
}

impl fmt::Display for FlashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlashError::BlockFull(b) => write!(f, "write to full block {b:?}"),
            FlashError::PageNotWritten(p) => write!(f, "read of unwritten page {p:?}"),
            FlashError::OutOfRange(p) => write!(f, "page address {p:?} out of range"),
            FlashError::BlockOutOfRange(b) => write!(f, "block address {b:?} out of range"),
            FlashError::BlockWornOut(b) => write!(f, "block {b:?} exceeded its erase budget"),
        }
    }
}

impl std::error::Error for FlashError {}
